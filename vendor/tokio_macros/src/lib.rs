//! `#[tokio::main]` and `#[tokio::test]` for the vendored tokio shim:
//! rewrite `async fn name() { body }` into a sync fn that drives the body
//! with the shim's `block_on`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Split an `async fn` item into (tokens before `async`, signature tokens
/// between `fn` and the body, body group). Attributes and visibility pass
/// through untouched.
fn rewrite(item: TokenStream, extra_attr: &str) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let async_pos = tokens.iter().position(
        |t| matches!(t, TokenTree::Ident(i) if i.to_string() == "async"),
    );
    let body_pos = tokens.iter().rposition(
        |t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace),
    );
    let (Some(async_pos), Some(body_pos)) = (async_pos, body_pos) else {
        return "compile_error!(\"expected an async fn\");".parse().expect("tokens");
    };
    let head: String = tokens[..async_pos].iter().map(|t| t.to_string() + " ").collect();
    let sig: String = tokens[async_pos + 1..body_pos]
        .iter()
        .map(|t| t.to_string() + " ")
        .collect();
    let body = tokens[body_pos].to_string();
    format!(
        "{extra_attr}\n{head}{sig}{{\n    ::tokio::runtime::block_on_entry(async move {body})\n}}"
    )
    .parse()
    .expect("rewritten fn parses")
}

/// `#[tokio::test]`: async test entry point.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, "#[test]")
}

/// `#[tokio::main]`: async main entry point.
#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, "")
}
