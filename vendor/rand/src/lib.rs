//! Workspace-local stand-in for the `rand` crate (offline build; no
//! registry access). Implements the API subset the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen,
//! gen_range}` over integer/float/bool types.
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — statistically
//! strong for simulation workloads and fully deterministic per seed. It is
//! NOT the upstream StdRng (ChaCha12), so absolute streams differ from real
//! `rand`, but every consumer in this workspace only relies on seed
//! determinism, not on a specific stream.

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniform value of a type (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`]. `T` is driven by the call-site
/// context (like real rand), so integer literals adapt to the target type.
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let offset = (u128::sample_standard(rng)) % span;
                (self.start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let offset = (u128::sample_standard(rng)) % span;
                (lo as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// The user-facing RNG trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = r.gen_range(-50..50);
            assert!((-50..50).contains(&x));
            let y: u64 = r.gen_range(10..=12);
            assert!((10..=12).contains(&y));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformish_mean() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
