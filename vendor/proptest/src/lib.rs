//! Workspace-local stand-in for `proptest` (offline build; no registry
//! access). Covers the API surface this workspace's property tests use:
//!
//! - `proptest! { #[test] fn name(x in strategy, ..) { .. } }`
//! - range strategies (`0i64..100`, `1u8..=5`), `any::<T>()`,
//!   `proptest::collection::vec(strategy, len_range)`, tuple strategies,
//!   and char-class regex string strategies (`"[a-z1-5]{1,12}"`)
//! - `prop_assert!` / `prop_assert_eq!` / `TestCaseError::fail`
//!
//! Cases are generated from a deterministic seed (`PROPTEST_SEED` env
//! override); failures report the generated inputs. No shrinking — the
//! deterministic seed makes failures directly reproducible instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases per property (env `PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic base seed (env `PROPTEST_SEED` overrides).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x7073_7431)
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Construct the per-property RNG (used by the `proptest!` expansion, which
/// cannot assume the consuming crate depends on `rand`).
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> Self {
        TestCaseError(s.to_owned())
    }
}

/// A value generator.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- ranges -----------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty i128 range");
        let span = (self.end - self.start) as u128;
        self.start + (rng.gen::<u128>() % span) as i128
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// ---- any --------------------------------------------------------------------

/// Uniform full-domain strategy for a primitive.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any_impl<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64);

// ---- strings ----------------------------------------------------------------

/// `&str` strategies are char-class regexes of the shape `[class]{lo,hi}`
/// (optionally a bare `[class]` for exactly one char), the only string
/// strategy shape this workspace uses.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_char_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported string strategy regex: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_char_class_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let tail = &rest[close + 1..];
    let (lo, hi) = if tail.is_empty() {
        (1, 1)
    } else {
        let inner = tail.strip_prefix('{')?.strip_suffix('}')?;
        match inner.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = inner.trim().parse().ok()?;
                (n, n)
            }
        }
    };
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

// ---- tuples -----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- collections ------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Length bounds accepted by [`vec`].
    pub trait IntoLenRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros -----------------------------------------------------------------

/// The property harness: each declared fn becomes a `#[test]` running
/// [`cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng =
                $crate::new_rng($crate::base_seed() ^ $crate::fnv(stringify!($name)));
            for case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {case}: {e}\n  inputs: {inputs}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// FNV-1a over a str — stable per-property seed discriminator.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError, TestRng};

    /// `any::<T>()` — uniform strategy over T's domain.
    pub fn any<T>() -> crate::Any<T>
    where
        crate::Any<T>: crate::Strategy,
    {
        crate::any_impl()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10i64..20, y in 1u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn tuples_and_any(t in (0u64..4, 1i128..9), b in any::<bool>()) {
            prop_assert!(t.0 < 4 && (1..9).contains(&t.1));
            prop_assert_eq!(b, b);
        }

        #[test]
        fn regex_strings(s in "[a-z1-5]{1,12}") {
            prop_assert!((1..=12).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || ('1'..='5').contains(&c)));
        }

        #[test]
        fn early_return_ok_is_allowed(x in 0u8..10) {
            if x > 200 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn char_class_parser() {
        let (alpha, lo, hi) = super::parse_char_class_regex("[a-c1.]{2,4}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c', '1', '.']);
        assert_eq!((lo, hi), (2, 4));
        assert!(super::parse_char_class_regex("plain text").is_none());
    }
}
