//! Workspace-local stand-in for `criterion` (offline build; no registry
//! access). Provides the group/`bench_function`/`iter` API the workspace's
//! benches use, with a straightforward timing loop:
//!
//! - warm-up, then `sample_size` samples of adaptively-batched iterations;
//! - reports min/median/mean per iteration on stdout;
//! - appends one JSON line per benchmark to `$TXSTAT_BENCH_JSON` (if set),
//!   which the repo uses to record baselines (BENCH_figures.json);
//! - `$TXSTAT_BENCH_SAMPLES` / `$TXSTAT_BENCH_WARMUP_MS` shrink runs for CI
//!   smoke tests;
//! - mirrors criterion's CLI contract for the flags CI leans on:
//!   `cargo bench … -- --test` runs every matched bench exactly once (a
//!   bit-rot smoke with no statistics, and no baseline JSON written), and
//!   positional arguments filter benches by substring of their full
//!   `group/name`.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Parsed bench-binary CLI: `--test` single-shot mode plus positional
/// substring filters. Flags cargo itself appends (`--bench`) are ignored.
struct Cli {
    test_mode: bool,
    filters: Vec<String>,
}

fn cli() -> &'static Cli {
    static CLI: std::sync::OnceLock<Cli> = std::sync::OnceLock::new();
    CLI.get_or_init(|| {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
        }
        Cli { test_mode, filters }
    })
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    #[doc(hidden)]
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_name = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let cli = cli();
        if !cli.filters.is_empty() && !cli.filters.iter().any(|p| full_name.contains(p)) {
            return self;
        }
        let mut b = Bencher {
            sample_size: env_usize("TXSTAT_BENCH_SAMPLES").unwrap_or(self.sample_size),
            warmup: Duration::from_millis(env_usize("TXSTAT_BENCH_WARMUP_MS").unwrap_or(300) as u64),
            samples_ns: Vec::new(),
            test_mode: cli.test_mode,
        };
        f(&mut b);
        if cli.test_mode {
            println!("test bench {full_name}: ok (single shot)");
        } else {
            report(&full_name, &b.samples_ns, self.throughput);
        }
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    samples_ns: Vec<f64>,
    test_mode: bool,
}

impl Bencher {
    /// Time the closure: warm-up, estimate batch size, then collect
    /// `sample_size` samples of `batch` iterations each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            // `--test`: execute once so panics and fixture rot surface,
            // collect no statistics.
            black_box(f());
            return;
        }
        // Warm-up + per-iteration estimate.
        let warmup_started = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_started.elapsed() < self.warmup {
            black_box(f());
            warmup_iters += 1;
        }
        let est_ns = warmup_started.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        // Aim for ~5ms per sample so cheap closures are not timer-noise.
        let batch = ((5_000_000.0 / est_ns.max(1.0)).ceil() as u64).clamp(1, 1_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let started = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = started.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / batch as f64);
        }
    }

    /// `iter_batched`-style interface used by some criterion consumers.
    pub fn iter_with_setup<S, O, Setup, F>(&mut self, mut setup: Setup, mut f: F)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        if self.test_mode {
            black_box(f(setup()));
            return;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let started = Instant::now();
            black_box(f(input));
            self.samples_ns.push(started.elapsed().as_nanos() as f64);
        }
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.parse().ok()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, samples_ns: &[f64], throughput: Option<Throughput>) {
    if samples_ns.is_empty() {
        println!("bench {name}: no samples collected");
        return;
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let mut line = format!(
        "bench {name}: median {} (min {}, mean {}, {} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean),
        sorted.len()
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Bytes(n) => format!("{:.1} MiB/s", n as f64 / (median / 1e9) / (1 << 20) as f64),
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (median / 1e9)),
        };
        line.push_str(&format!(" — {per_sec}"));
    }
    println!("{line}");
    if let Ok(path) = std::env::var("TXSTAT_BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"mean_ns\":{mean:.1},\"samples\":{}}}",
                sorted.len()
            );
        }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_samples() {
        std::env::set_var("TXSTAT_BENCH_SAMPLES", "5");
        std::env::set_var("TXSTAT_BENCH_WARMUP_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        std::env::remove_var("TXSTAT_BENCH_SAMPLES");
        std::env::remove_var("TXSTAT_BENCH_WARMUP_MS");
    }
}
