//! Workspace-local stand-in for the `parking_lot` crate (the offline build
//! environment has no registry access). Wraps `std::sync` primitives and
//! recovers from poisoning, matching parking_lot's non-poisoning semantics.

use std::sync::PoisonError;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<'a, T>(&self, guard: &mut MutexGuard<'a, T>) {
        // std's API consumes and returns the guard; emulate parking_lot's
        // in-place wait with a take/replace dance through Option.
        replace_with(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

fn replace_with<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `guard` is written back before the function returns, and the
    // closure either returns a valid guard or unwinds (in which case the
    // process aborts before the duplicated guard could be observed).
    unsafe {
        let taken = std::ptr::read(guard);
        let abort_on_unwind = AbortOnUnwind;
        let new_guard = f(taken);
        std::mem::forget(abort_on_unwind);
        std::ptr::write(guard, new_guard);
    }
}

struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, std::time::Duration::from_secs(5));
            assert!(!r.timed_out(), "worker must signal promptly");
        }
        t.join().unwrap();
    }
}
