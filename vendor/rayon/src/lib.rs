//! Workspace-local stand-in for the `rayon` crate (offline build; no
//! registry access). Implements the data-parallel subset the fused
//! analytics engine uses — `par_chunks(..).map(..).reduce(..)`,
//! `par_iter().map(..).collect()` — over `std::thread::scope`.
//!
//! Semantics preserved from real rayon:
//! - the reduction is **order-preserving**: chunk results are combined in
//!   slice order, so any associative (not necessarily commutative)
//!   reduction yields the same value as the sequential fold;
//! - work runs on the calling thread when only one worker is warranted;
//! - `ThreadPool::install` scopes the worker count, enabling 1/2/N-thread
//!   scaling measurements.

use std::cell::Cell;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    THREADS_OVERRIDE.with(|o| o.get()).unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for scoped worker counts.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A worker-count scope. Parallel operations invoked inside `install` use
/// at most the configured number of threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }

    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        THREADS_OVERRIDE.with(|o| {
            let prev = o.replace(self.num_threads);
            let out = op();
            o.set(prev);
            out
        })
    }
}

/// Run `f` over contiguous index partitions of `0..n` on up to
/// [`current_num_threads`] workers and return the per-partition outputs in
/// partition order. The backbone of every adapter below.
fn run_partitioned<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let workers = current_num_threads().max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(workers);
    let ranges: Vec<std::ops::Range<usize>> = (0..workers)
        .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    let mut out: Vec<Option<T>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let (first_slot, mut rest) = out.split_first_mut().expect("at least one range");
        for range in &ranges[1..] {
            let (slot, tail) = rest.split_first_mut().expect("one slot per range");
            rest = tail;
            let f = &f;
            let range = range.clone();
            handles.push(scope.spawn(move || {
                *slot = Some(f(range));
            }));
        }
        // The calling thread is one of the workers (as in real rayon): it
        // takes the first partition instead of idling at the join.
        *first_slot = Some(f(ranges[0].clone()));
        for h in handles {
            h.join().expect("rayon-shim worker panicked");
        }
    });
    out.into_iter().map(|v| v.expect("worker filled slot")).collect()
}

/// Parallel iterator over `&[T]` items.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

/// Parallel iterator over fixed-size chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

/// A mapped parallel chunk iterator.
pub struct ParChunksMap<'a, T, F> {
    slice: &'a [T],
    chunk_size: usize,
    map: F,
}

/// A mapped parallel item iterator.
pub struct ParIterMap<'a, T, F> {
    slice: &'a [T],
    map: F,
}

/// Slice entry points, mirroring `rayon::prelude::ParallelSlice` /
/// `IntoParallelRefIterator`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk_size }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<U, F>(self, map: F) -> ParChunksMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
    {
        ParChunksMap { slice: self.slice, chunk_size: self.chunk_size, map }
    }

    pub fn len(&self) -> usize {
        self.slice.chunks(self.chunk_size).len()
    }

    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }
}

impl<'a, T: Sync, U: Send, F> ParChunksMap<'a, T, F>
where
    F: Fn(&'a [T]) -> U + Sync,
{
    /// Reduce mapped chunk values in slice order (associative `op`).
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> U
    where
        Id: Fn() -> U + Sync,
        Op: Fn(U, U) -> U + Sync,
    {
        let chunks: Vec<&'a [T]> = self.slice.chunks(self.chunk_size).collect();
        let map = &self.map;
        let op_ref = &op;
        let partials = run_partitioned(chunks.len(), move |range| {
            let mut acc: Option<U> = None;
            for &chunk in &chunks[range] {
                let v = map(chunk);
                acc = Some(match acc {
                    None => v,
                    Some(a) => op_ref(a, v),
                });
            }
            acc
        });
        partials
            .into_iter()
            .flatten()
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(a) => op(a, v),
                })
            })
            .unwrap_or_else(identity)
    }

    /// Collect mapped chunk values in slice order.
    pub fn collect_vec(self) -> Vec<U> {
        let chunks: Vec<&'a [T]> = self.slice.chunks(self.chunk_size).collect();
        let map = &self.map;
        run_partitioned(chunks.len(), move |range| {
            chunks[range].iter().map(|c| map(c)).collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, map: F) -> ParIterMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParIterMap { slice: self.slice, map }
    }
}

impl<'a, T: Sync, U: Send, F> ParIterMap<'a, T, F>
where
    F: Fn(&'a T) -> U + Sync,
{
    /// Collect mapped values in slice order.
    pub fn collect_vec(self) -> Vec<U> {
        let map = &self.map;
        let slice = self.slice;
        run_partitioned(slice.len(), move |range| {
            slice[range].iter().map(map).collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Reduce mapped values in slice order.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> U
    where
        Id: Fn() -> U + Sync,
        Op: Fn(U, U) -> U + Sync,
    {
        let map = &self.map;
        let slice = self.slice;
        let op_ref = &op;
        let partials = run_partitioned(slice.len(), move |range| {
            let mut acc: Option<U> = None;
            for item in &slice[range] {
                let v = map(item);
                acc = Some(match acc {
                    None => v,
                    Some(a) => op_ref(a, v),
                });
            }
            acc
        });
        partials
            .into_iter()
            .flatten()
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(a) => op(a, v),
                })
            })
            .unwrap_or_else(identity)
    }
}

pub mod prelude {
    pub use crate::ParallelSlice;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_reduce_matches_sequential() {
        let data: Vec<u64> = (0..10_000).collect();
        let seq: u64 = data.iter().sum();
        let par = data
            .par_chunks(97)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(par, seq);
    }

    #[test]
    fn reduce_preserves_order() {
        // String concatenation is associative but not commutative; the
        // parallel reduce must equal the sequential left fold.
        let data: Vec<String> = (0..500).map(|i| format!("{i},")).collect();
        let seq: String = data.concat();
        let par = data
            .par_chunks(13)
            .map(|c| c.concat())
            .reduce(String::new, |a, b| a + &b);
        assert_eq!(par, seq);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 2);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 1);
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn par_iter_collect_in_order() {
        let data: Vec<u32> = (0..1000).collect();
        let doubled = data.par_iter().map(|x| x * 2).collect_vec();
        assert_eq!(doubled, data.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = vec![];
        let sum = empty
            .par_chunks(8)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 0);
        let one = [41u64];
        let sum = one
            .par_chunks(8)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 1, |a, b| a + b);
        assert_eq!(sum, 41);
    }
}
