//! Workspace-local stand-in for the `tokio` API subset this workspace uses
//! (offline build; no registry access).
//!
//! Execution model: **thread-per-task over blocking I/O**. Every
//! `tokio::spawn` runs its future on a dedicated OS thread via a small
//! park/unpark executor; the "async" I/O primitives complete their work with
//! blocking `std::net` calls inside a single poll. This preserves tokio's
//! observable semantics for this workspace's loopback RPC substrate —
//! concurrency across tasks, `JoinHandle::await`, keep-alive connections —
//! at the cost of one thread per in-flight task, which is bounded here by
//! crawler concurrency (≤ a few dozen).
//!
//! Known simplifications (acceptable for the loopback simulator):
//! - `time::timeout` detects deadline overruns after the inner future
//!   completes rather than cancelling it mid-flight; sockets carry a
//!   defensive read timeout so a hung peer cannot block forever.
//! - `JoinHandle::abort` marks the task detached instead of killing the
//!   thread; accept-loop tasks end when their process does (daemon-style).

pub mod runtime {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Wake, Waker};

    struct ThreadWaker {
        unparked: Mutex<bool>,
        thread: std::thread::Thread,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            *self.unparked.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
            self.thread.unpark();
        }
    }

    /// Drive a future to completion on the current thread.
    pub fn block_on<F: Future>(future: F) -> F::Output {
        let waker_state = Arc::new(ThreadWaker {
            unparked: Mutex::new(false),
            thread: std::thread::current(),
        });
        let waker = Waker::from(waker_state.clone());
        let mut cx = Context::from_waker(&waker);
        let mut future = pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(out) => return out,
                Poll::Pending => loop {
                    let mut unparked = waker_state
                        .unparked
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if *unparked {
                        *unparked = false;
                        break;
                    }
                    drop(unparked);
                    std::thread::park();
                },
            }
        }
    }

    /// Mirror of `tokio::runtime::Runtime` for `Runtime::new()?.block_on(..)`.
    pub struct Runtime {
        _private: (),
    }

    impl Runtime {
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime { _private: () })
        }

        pub fn block_on<F: Future>(&self, future: F) -> F::Output {
            block_on(future)
        }

        pub fn spawn<F>(&self, future: F) -> super::task::JoinHandle<F::Output>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            super::spawn(future)
        }
    }

    /// Used by the `#[tokio::main]`/`#[tokio::test]` attribute expansions.
    #[doc(hidden)]
    pub fn block_on_entry<F: Future>(future: F) -> F::Output {
        block_on(future)
    }
}

pub mod task {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::task::{Context, Poll, Waker};

    struct Inner<T> {
        state: Mutex<State<T>>,
    }

    enum State<T> {
        Running(Option<Waker>),
        Done(Option<Result<T, JoinError>>),
    }

    /// Handle to a spawned task.
    pub struct JoinHandle<T> {
        inner: Arc<Inner<T>>,
    }

    /// Task failure (panic).
    #[derive(Debug)]
    pub struct JoinError(pub(crate) String);

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "task failed: {}", self.0)
        }
    }

    impl std::error::Error for JoinError {}

    impl<T> JoinHandle<T> {
        /// Detach interest in the task. The backing thread is not killed;
        /// server accept loops terminate with the process.
        pub fn abort(&self) {}

        pub fn is_finished(&self) -> bool {
            matches!(
                &*self.inner.state.lock().unwrap_or_else(PoisonError::into_inner),
                State::Done(_)
            )
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            match &mut *state {
                State::Running(waker) => {
                    *waker = Some(cx.waker().clone());
                    Poll::Pending
                }
                State::Done(result) => {
                    Poll::Ready(result.take().expect("JoinHandle polled after completion"))
                }
            }
        }
    }

    pub(crate) fn spawn_task<F>(future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let inner = Arc::new(Inner { state: Mutex::new(State::Running(None)) });
        let inner2 = inner.clone();
        std::thread::Builder::new()
            .name("tokio-shim-task".into())
            .spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::runtime::block_on(future)
                }))
                .map_err(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "panic".into());
                    JoinError(msg)
                });
                let waker = {
                    let mut state =
                        inner2.state.lock().unwrap_or_else(PoisonError::into_inner);
                    let waker = match &mut *state {
                        State::Running(w) => w.take(),
                        State::Done(_) => None,
                    };
                    *state = State::Done(Some(result));
                    waker
                };
                if let Some(w) = waker {
                    w.wake();
                }
            })
            .expect("spawn task thread");
        JoinHandle { inner }
    }
}

/// Spawn a task on its own thread.
pub fn spawn<F>(future: F) -> task::JoinHandle<F::Output>
where
    F: std::future::Future + Send + 'static,
    F::Output: Send + 'static,
{
    task::spawn_task(future)
}

pub mod time {
    use std::time::{Duration, Instant};

    /// Asynchronous sleep (blocks this task's dedicated thread).
    pub async fn sleep(duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Deadline-overrun marker returned by [`timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Elapsed;

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    /// Run `future`, reporting `Err(Elapsed)` if it finished after the
    /// deadline. Under the blocking-I/O shim the inner future cannot be
    /// cancelled mid-poll; socket-level read timeouts bound the worst case.
    pub async fn timeout<F: std::future::Future>(
        duration: Duration,
        future: F,
    ) -> Result<F::Output, Elapsed> {
        let started = Instant::now();
        let out = future.await;
        if started.elapsed() > duration {
            Err(Elapsed)
        } else {
            Ok(out)
        }
    }
}

pub mod net {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, ToSocketAddrs};

    /// Defensive ceiling so a hung peer cannot block a task thread forever
    /// (the shim's `timeout` cannot cancel an in-flight blocking read).
    const SOCKET_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

    /// Blocking-backed TCP stream with tokio's async surface.
    #[derive(Debug)]
    pub struct TcpStream {
        pub(crate) inner: std::net::TcpStream,
    }

    impl TcpStream {
        pub async fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<TcpStream> {
            let inner = std::net::TcpStream::connect(addr)?;
            inner.set_nodelay(true)?;
            inner.set_read_timeout(Some(SOCKET_READ_TIMEOUT))?;
            Ok(TcpStream { inner })
        }

        pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        pub(crate) fn from_std(inner: std::net::TcpStream) -> std::io::Result<TcpStream> {
            inner.set_nodelay(true)?;
            inner.set_read_timeout(Some(SOCKET_READ_TIMEOUT))?;
            Ok(TcpStream { inner })
        }
    }

    impl crate::io::AsyncRead for TcpStream {
        fn blocking_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl crate::io::AsyncWrite for TcpStream {
        fn blocking_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }

        fn blocking_flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    /// Blocking-backed TCP listener with tokio's async surface.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<TcpListener> {
            Ok(TcpListener { inner: std::net::TcpListener::bind(addr)? })
        }

        pub async fn accept(&self) -> std::io::Result<(TcpStream, SocketAddr)> {
            let (sock, addr) = self.inner.accept()?;
            Ok((TcpStream::from_std(sock)?, addr))
        }

        pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }
}

pub mod io {
    /// Blocking-backed read half of the async surface.
    pub trait AsyncRead {
        fn blocking_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
    }

    /// Blocking-backed write half of the async surface.
    pub trait AsyncWrite {
        fn blocking_write(&mut self, buf: &[u8]) -> std::io::Result<usize>;
        fn blocking_flush(&mut self) -> std::io::Result<()>;
    }

    impl<T: AsyncRead + ?Sized> AsyncRead for &mut T {
        fn blocking_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            (**self).blocking_read(buf)
        }
    }

    impl<T: AsyncWrite + ?Sized> AsyncWrite for &mut T {
        fn blocking_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            (**self).blocking_write(buf)
        }

        fn blocking_flush(&mut self) -> std::io::Result<()> {
            (**self).blocking_flush()
        }
    }

    /// Read extension methods (`read_exact`, `read_to_end`).
    pub trait AsyncReadExt: AsyncRead {
        fn read_exact(
            &mut self,
            buf: &mut [u8],
        ) -> impl std::future::Future<Output = std::io::Result<usize>>
        where
            Self: Unpin,
        {
            async move {
                let mut filled = 0;
                while filled < buf.len() {
                    let n = self.blocking_read(&mut buf[filled..])?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "early eof",
                        ));
                    }
                    filled += n;
                }
                Ok(filled)
            }
        }

        fn read(
            &mut self,
            buf: &mut [u8],
        ) -> impl std::future::Future<Output = std::io::Result<usize>>
        where
            Self: Unpin,
        {
            async move { self.blocking_read(buf) }
        }
    }

    impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

    /// Write extension methods (`write_all`, `flush`).
    pub trait AsyncWriteExt: AsyncWrite {
        fn write_all(
            &mut self,
            buf: &[u8],
        ) -> impl std::future::Future<Output = std::io::Result<()>>
        where
            Self: Unpin,
        {
            async move {
                let mut rest = buf;
                while !rest.is_empty() {
                    let n = self.blocking_write(rest)?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WriteZero,
                            "write returned 0",
                        ));
                    }
                    rest = &rest[n..];
                }
                Ok(())
            }
        }

        fn flush(&mut self) -> impl std::future::Future<Output = std::io::Result<()>>
        where
            Self: Unpin,
        {
            async move { self.blocking_flush() }
        }
    }

    impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}

    /// Buffered-line reading (`read_line`).
    pub trait AsyncBufReadExt: AsyncRead {
        fn read_line(
            &mut self,
            out: &mut String,
        ) -> impl std::future::Future<Output = std::io::Result<usize>>;
    }

    /// A buffered reader + writer around a stream, mirroring
    /// `tokio::io::BufStream`.
    #[derive(Debug)]
    pub struct BufStream<S> {
        inner: S,
        read_buf: Vec<u8>,
        read_pos: usize,
        write_buf: Vec<u8>,
    }

    impl<S> BufStream<S> {
        pub fn new(inner: S) -> Self {
            BufStream {
                inner,
                read_buf: Vec::with_capacity(16 * 1024),
                read_pos: 0,
                write_buf: Vec::with_capacity(16 * 1024),
            }
        }

        pub fn get_ref(&self) -> &S {
            &self.inner
        }

        pub fn get_mut(&mut self) -> &mut S {
            &mut self.inner
        }

        pub fn into_inner(self) -> S {
            self.inner
        }
    }

    impl<S: AsyncRead> BufStream<S> {
        fn fill(&mut self) -> std::io::Result<usize> {
            if self.read_pos >= self.read_buf.len() {
                self.read_buf.resize(16 * 1024, 0);
                let n = self.inner.blocking_read(&mut self.read_buf)?;
                self.read_buf.truncate(n);
                self.read_pos = 0;
            }
            Ok(self.read_buf.len() - self.read_pos)
        }
    }

    impl<S: AsyncRead + AsyncWrite> AsyncRead for BufStream<S> {
        fn blocking_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            // Write-through before reading: request/response protocols
            // expect buffered writes to be visible before a read blocks.
            self.blocking_flush()?;
            let available = self.fill()?;
            let n = available.min(buf.len());
            buf[..n].copy_from_slice(&self.read_buf[self.read_pos..self.read_pos + n]);
            self.read_pos += n;
            Ok(n)
        }
    }

    impl<S: AsyncWrite> AsyncWrite for BufStream<S> {
        fn blocking_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.write_buf.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn blocking_flush(&mut self) -> std::io::Result<()> {
            if !self.write_buf.is_empty() {
                let mut rest: &[u8] = &self.write_buf;
                while !rest.is_empty() {
                    let n = self.inner.blocking_write(rest)?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WriteZero,
                            "write returned 0",
                        ));
                    }
                    rest = &rest[n..];
                }
                self.write_buf.clear();
            }
            self.inner.blocking_flush()
        }
    }

    impl<S: AsyncRead + AsyncWrite + Unpin> AsyncBufReadExt for BufStream<S> {
        // Trait methods return `impl Future` explicitly (not `async fn`) so
        // the trait stays object-safe-shaped like real tokio's extension
        // traits; clippy's suggestion would change the trait surface.
        #[allow(clippy::manual_async_fn)]
        fn read_line(
            &mut self,
            out: &mut String,
        ) -> impl std::future::Future<Output = std::io::Result<usize>> {
            async move {
                self.blocking_flush()?;
                let mut bytes = Vec::new();
                loop {
                    if self.fill()? == 0 {
                        break; // EOF
                    }
                    let chunk = &self.read_buf[self.read_pos..];
                    match chunk.iter().position(|b| *b == b'\n') {
                        Some(i) => {
                            bytes.extend_from_slice(&chunk[..=i]);
                            self.read_pos += i + 1;
                            break;
                        }
                        None => {
                            bytes.extend_from_slice(chunk);
                            self.read_pos = self.read_buf.len();
                        }
                    }
                }
                let text = String::from_utf8(bytes).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "stream not utf-8")
                })?;
                out.push_str(&text);
                Ok(text.len())
            }
        }
    }
}

/// Attribute macros: `#[tokio::main]`, `#[tokio::test]`.
pub use tokio_macros::{main, test};

#[cfg(test)]
mod tests {
    use super::io::{AsyncBufReadExt, AsyncWriteExt, BufStream};
    use super::net::{TcpListener, TcpStream};

    #[test]
    fn spawn_join_and_block_on() {
        let out = crate::runtime::block_on(async {
            let h = crate::spawn(async { 40 + 2 });
            h.await.expect("task succeeds")
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn join_handle_reports_panics() {
        let out = crate::runtime::block_on(async {
            let h = crate::spawn(async { panic!("boom") });
            h.await
        });
        assert!(out.is_err());
        assert!(out.unwrap_err().to_string().contains("boom"));
    }

    #[test]
    fn tcp_echo_line() {
        crate::runtime::block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (sock, _) = listener.accept().await.unwrap();
                let mut stream = BufStream::new(sock);
                let mut line = String::new();
                stream.read_line(&mut line).await.unwrap();
                stream.write_all(line.to_uppercase().as_bytes()).await.unwrap();
                stream.flush().await.unwrap();
            });
            let sock = TcpStream::connect(addr).await.unwrap();
            let mut stream = BufStream::new(sock);
            stream.write_all(b"hello\n").await.unwrap();
            let mut reply = String::new();
            stream.read_line(&mut reply).await.unwrap();
            assert_eq!(reply, "HELLO\n");
            server.await.unwrap();
        });
    }

    #[test]
    fn timeout_detects_overrun() {
        use std::time::Duration;
        crate::runtime::block_on(async {
            let quick = crate::time::timeout(Duration::from_secs(5), async { 1 }).await;
            assert_eq!(quick, Ok(1));
            let slow = crate::time::timeout(Duration::from_millis(5), async {
                crate::time::sleep(Duration::from_millis(30)).await;
                1
            })
            .await;
            assert!(slow.is_err());
        });
    }
}
