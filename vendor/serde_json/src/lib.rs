//! Workspace-local stand-in for `serde_json` (offline build; no registry
//! access): a compact-output JSON serializer and a recursive-descent parser
//! over the vendored serde shim's [`Value`] tree, plus the `json!` macro.

pub use serde::{Error, Map, Value};

use serde::{Deserialize, Serialize};

// ---- serialization ----------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Match serde_json: integral floats keep a ".0".
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize())
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

// ---- parsing ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            if (0xD800..=0xDBFF).contains(&cp) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo_hex = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .ok_or_else(|| self.err("truncated surrogate"))?;
                                let lo_hex = std::str::from_utf8(lo_hex)
                                    .map_err(|_| self.err("invalid surrogate"))?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| self.err("invalid surrogate"))?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                                self.pos += 6;
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut p = Parser::new(input);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::deserialize(&v)
}

pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(input).map_err(|_| Error::custom("invalid utf-8"))?;
    from_str(s)
}

// ---- the json! macro --------------------------------------------------------

/// Build a [`Value`] from JSON-ish syntax. Supports `null`, scalars, nested
/// `{...}` objects with string-literal keys, `[...]` arrays, and arbitrary
/// Rust expressions as values (via `Into<Value>`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_array!([ $($tt)* ]) };
    ({ $($tt:tt)* }) => { $crate::json_object!({} () { $($tt)* }) };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: array builder. A tt-muncher (not `$elem:expr`) so nested
/// `{...}` object literals inside arrays route back through `json!` instead
/// of parsing as Rust block expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)* ]) => { $crate::json_array_munch!([] () $($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_munch {
    // End of input with a pending element.
    ([$($out:tt)*] ($($val:tt)+)) => {
        $crate::Value::Array(vec![ $($out)* $crate::json!($($val)+) ])
    };
    // End of input after a trailing comma.
    ([$($out:tt)*] ()) => {
        $crate::Value::Array(vec![ $($out)* ])
    };
    // Top-level comma terminates the current element.
    ([$($out:tt)*] ($($val:tt)+) , $($rest:tt)*) => {
        $crate::json_array_munch!([$($out)* $crate::json!($($val)+),] () $($rest)*)
    };
    // Consume one token of the current element.
    ([$($out:tt)*] ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array_munch!([$($out)*] ($($val)* $next) $($rest)*)
    };
}

/// Internal TT muncher: accumulates `key => value-tokens` pairs, splitting
/// on top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Entry/next-pair: take `"key":` then munch value tokens.
    ({$($out:tt)*} () { $key:literal : $($rest:tt)* }) => {
        $crate::json_object!({$($out)*} ($key) () { $($rest)* })
    };
    // Done.
    ({$($out:tt)*} () {}) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $crate::json_insert!(m $($out)*);
        $crate::Value::Object(m)
    }};
    // Trailing comma before close.
    ({$($out:tt)*} () { , }) => { $crate::json_object!({$($out)*} () {}) };
    // Value munching: comma at top level ends the pair.
    ({$($out:tt)*} ($key:literal) ($($val:tt)*) { , $($rest:tt)* }) => {
        $crate::json_object!({$($out)* [$key => $($val)*]} () { $($rest)* })
    };
    // Value munching: end of input ends the pair.
    ({$($out:tt)*} ($key:literal) ($($val:tt)*) {}) => {
        $crate::json_object!({$($out)* [$key => $($val)*]} () {})
    };
    // Value munching: consume one token.
    ({$($out:tt)*} ($key:literal) ($($val:tt)*) { $next:tt $($rest:tt)* }) => {
        $crate::json_object!({$($out)*} ($key) ($($val)* $next) { $($rest)* })
    };
}

/// Internal: insert accumulated pairs into the map.
#[doc(hidden)]
#[macro_export]
macro_rules! json_insert {
    ($m:ident) => {};
    ($m:ident [$key:literal => $($val:tt)*] $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::json!($($val)*));
        $crate::json_insert!($m $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}}"#).unwrap();
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][0], true);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2], "x\n");
        assert_eq!(v.pointer("/c/d").and_then(Value::as_f64), Some(-2.5));
        let text = to_string(&v).unwrap();
        let v2: Value = from_str(&text).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn compact_output_is_stable() {
        let v: Value = from_str(r#"{"b":1,"a":2}"#).unwrap();
        // Insertion order is preserved through parse → serialize.
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&Value::Float(5.0)).unwrap(), "5.0");
        assert_eq!(to_string(&Value::Float(2.25)).unwrap(), "2.25");
        assert_eq!(to_string(&Value::Int(5)).unwrap(), "5");
    }

    #[test]
    fn json_macro_shapes() {
        let id = 7u32;
        let v = json!({
            "id": id,
            "command": "ledger",
            "nested": {"deep": [1, 2, 3]},
            "expr": format!("x{}", 1),
            "opt": Option::<u32>::None,
        });
        assert_eq!(v["id"], 7);
        assert_eq!(v["command"], "ledger");
        assert_eq!(v.pointer("/nested/deep/2"), Some(&Value::Int(3)));
        assert_eq!(v["expr"], "x1");
        assert!(v["opt"].is_null());
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3.5), Value::Float(3.5));
        let arr = json!([1, "two"]);
        assert_eq!(arr[1], "two");
    }

    #[test]
    fn method_call_values_in_json_macro() {
        let v: Value = from_str(r#"{"id": 9}"#).unwrap();
        let echoed = json!({"id": v.get("id").cloned().unwrap_or(Value::Null), "ok": true});
        assert_eq!(echoed["id"], 9);
        assert_eq!(echoed["ok"], true);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("this is not json").is_err());
        assert!(from_str::<Value>(r#"{"a": }"#).is_err());
        assert!(from_str::<Value>(r#"{"a": 1} trailing"#).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }
}
