//! Workspace-local `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim. Parses the item's token stream directly (no syn) and
//! emits impls of `serde::Serialize` / `serde::Deserialize` over the shim's
//! JSON `Value` data model.
//!
//! Supported shapes — exactly what this workspace declares:
//! - named-field structs (with `#[serde(skip_serializing_if = "Option::is_none")]`)
//! - enums with unit, one-field tuple (newtype) and struct variants,
//!   externally tagged like real serde
//! - containers with `#[serde(into = "String", try_from = "String")]`
//!
//! Anything else produces a compile error naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model -------------------------------------------------------------

struct Field {
    name: String,
    skip_serializing_if: Option<String>,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    /// Tuple struct with the given arity: newtypes serialize transparently
    /// (like real serde), wider tuples as arrays.
    Tuple(usize),
    /// Unit struct: only valid together with into/try_from.
    Opaque,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
    /// `#[serde(into = "...", try_from = "...")]` on the container.
    string_conv: bool,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error tokens")
}

// ---- token-stream parsing ---------------------------------------------------

/// Collect the `#[...]` attributes at the head of `iter`; returns the raw
/// text of every `#[serde(...)]` payload seen.
fn take_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> Vec<String> {
    let mut serde_attrs = Vec::new();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let mut inner = g.stream().into_iter();
                        if let Some(TokenTree::Ident(name)) = inner.next() {
                            if name.to_string() == "serde" {
                                if let Some(TokenTree::Group(payload)) = inner.next() {
                                    serde_attrs.push(payload.stream().to_string());
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => return serde_attrs,
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Parse the named fields inside a brace group: `[attrs] [pub] name: Type,`*
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let serde_attrs = take_attrs(&mut iter);
        skip_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        let skip_serializing_if = serde_attrs
            .iter()
            .find_map(|a| attr_value(a, "skip_serializing_if"));
        fields.push(Field { name, skip_serializing_if });
    }
    Ok(fields)
}

/// Parse enum variants: `[attrs] Name [(Type) | {fields}],`*
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _attrs = take_attrs(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("unexpected token in variants: {other}")),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let payload = g.stream();
                iter.next();
                // Single-type (newtype) payloads only: reject a top-level
                // comma that is not inside nested groups or angle brackets.
                let mut angle = 0i32;
                for t in payload.into_iter() {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            return Err(format!(
                                "variant `{name}`: multi-field tuple variants are unsupported"
                            ))
                        }
                        _ => {}
                    }
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Optional trailing comma.
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        } else if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!("variant `{name}`: discriminants are unsupported"));
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Extract `key = "value"` from a serde attribute payload string.
fn attr_value(payload: &str, key: &str) -> Option<String> {
    let idx = payload.find(key)?;
    let rest = &payload[idx + key.len()..];
    let rest = rest.trim_start().strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

/// Count the top-level comma-separated fields of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    fields + usize::from(pending)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    let container_attrs = take_attrs(&mut iter);
    let string_conv = container_attrs.iter().any(|a| {
        attr_value(a, "try_from").as_deref() == Some("String")
            || attr_value(a, "into").as_deref() == Some("String")
    });
    skip_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("`{name}`: generic types are unsupported by the vendored derive"));
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if kind == "struct" {
                    Body::Struct(parse_named_fields(g.stream())?)
                } else {
                    Body::Enum(parse_variants(g.stream())?)
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                break Body::Tuple(count_tuple_fields(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Body::Opaque,
            Some(TokenTree::Ident(_)) | Some(TokenTree::Punct(_)) => continue, // `where`, etc.
            other => return Err(format!("`{name}`: unexpected item shape at {other:?}")),
        }
    };
    Ok(Item { name, body, string_conv })
}

// ---- code generation --------------------------------------------------------

fn gen_serialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    if item.string_conv {
        return Ok(format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> serde::Value {{\n\
                     serde::Value::String(<String as ::std::convert::From<{name}>>::from(self.clone()))\n\
                 }}\n\
             }}\n"
        ));
    }
    match &item.body {
        Body::Opaque => Err(format!(
            "`{name}`: unit structs need #[serde(into/try_from = \"String\")]"
        )),
        Body::Tuple(1) => Ok(format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> serde::Value {{\n\
                     serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}\n"
        )),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            Ok(format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}\n",
                elems.join(", ")
            ))
        }
        Body::Struct(fields) => {
            let mut body = String::from("let mut m = serde::Map::new();\n");
            for f in fields {
                let fname = &f.name;
                let insert = format!(
                    "m.insert({fname:?}.to_string(), serde::Serialize::serialize(&self.{fname}));\n"
                );
                match &f.skip_serializing_if {
                    Some(pred) => body.push_str(&format!(
                        "if !{pred}(&self.{fname}) {{ {insert} }}\n"
                    )),
                    None => body.push_str(&insert),
                }
            }
            body.push_str("serde::Value::Object(m)\n");
            Ok(format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n{body}}}\n\
                 }}\n"
            ))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(inner) => {{\n\
                             let mut m = serde::Map::new();\n\
                             m.insert({vname:?}.to_string(), serde::Serialize::serialize(inner));\n\
                             serde::Value::Object(m)\n\
                         }}\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let pats: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pat = pats.join(", ");
                        let mut inner = String::from("let mut fields = serde::Map::new();\n");
                        for f in fields {
                            let fname = &f.name;
                            inner.push_str(&format!(
                                "fields.insert({fname:?}.to_string(), serde::Serialize::serialize({fname}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => {{\n\
                                 {inner}\
                                 let mut m = serde::Map::new();\n\
                                 m.insert({vname:?}.to_string(), serde::Value::Object(fields));\n\
                                 serde::Value::Object(m)\n\
                             }}\n"
                        ));
                    }
                }
            }
            Ok(format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            ))
        }
    }
}

fn gen_deserialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    if item.string_conv {
        return Ok(format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                     let s = v.as_str().ok_or_else(|| serde::Error::custom(\"expected string for {name}\"))?;\n\
                     <{name} as ::std::convert::TryFrom<String>>::try_from(s.to_string())\n\
                         .map_err(|e| serde::Error::custom(format!(\"invalid {name}: {{e}}\")))\n\
                 }}\n\
             }}\n"
        ));
    }
    match &item.body {
        Body::Opaque => Err(format!(
            "`{name}`: unit structs need #[serde(into/try_from = \"String\")]"
        )),
        Body::Tuple(1) => Ok(format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                     Ok({name}(serde::Deserialize::deserialize(v)?))\n\
                 }}\n\
             }}\n"
        )),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&a[{i}])?"))
                .collect();
            Ok(format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         let a = v.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if a.len() != {n} {{\n\
                             return Err(serde::Error::custom(\"wrong arity for {name}\"));\n\
                         }}\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}\n",
                elems.join(", ")
            ))
        }
        Body::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                inits.push_str(&format!(
                    "{fname}: serde::__private::field(obj, {fname:?})?,\n"
                ));
            }
            Ok(format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         let obj = serde::__private::expect_object(v, {name:?})?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            ))
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                        // Unit variants may also arrive externally tagged.
                        tagged_arms.push_str(&format!(
                            "{vname:?} => Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}(serde::Deserialize::deserialize(payload)?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let fname = &f.name;
                            inits.push_str(&format!(
                                "{fname}: serde::__private::field(fields, {fname:?})?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let fields = serde::__private::expect_object(payload, {vname:?})?;\n\
                                 Ok({name}::{vname} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            Ok(format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             serde::Value::Object(m) => {{\n\
                                 let (tag, payload) = m.iter().next()\n\
                                     .ok_or_else(|| serde::Error::custom(\"empty {name} variant object\"))?;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => Err(serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(serde::Error::custom(\"expected string or object for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            ))
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    match gen_serialize(&item) {
        Ok(code) => code
            .replace("serde::", "::serde::")
            .parse()
            .expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    match gen_deserialize(&item) {
        Ok(code) => code
            .replace("serde::", "::serde::")
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}
