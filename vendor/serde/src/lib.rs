//! Workspace-local stand-in for `serde` (offline build; no registry
//! access). Instead of serde's visitor-based data model, this shim defines
//! a single JSON [`Value`] tree and two traits over it:
//!
//! - [`Serialize`]: `fn serialize(&self) -> Value`
//! - [`Deserialize`]: `fn deserialize(&Value) -> Result<Self, Error>`
//!
//! The companion `serde_derive` proc-macro derives both for the struct and
//! enum shapes the workspace uses (named structs, unit/newtype/struct-variant
//! enums), honouring the `#[serde(into/try_from = "String")]` and
//! `#[serde(skip_serializing_if = "Option::is_none")]` attributes that appear
//! in the sources. `serde_json` (also vendored) supplies the text format over
//! the same [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// An insertion-ordered JSON object.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    /// Key-order-independent equality (matching serde_json's `Map`).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .entries
                .iter()
                .all(|(k, v)| other.get(k).map(|ov| ov == v).unwrap_or(false))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        fn split(e: &(String, Value)) -> (&String, &Value) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split)
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value. Numbers keep their integer/float identity from parse time.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key lookup (None on non-objects, like serde_json).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// JSON-pointer lookup (`/a/b/0`).
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut current = self;
        for token in pointer[1..].split('/') {
            let token = token.replace("~1", "/").replace("~0", "~");
            current = match current {
                Value::Object(m) => m.get(&token)?,
                Value::Array(a) => a.get(token.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(current)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(i) if *i == *other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64().map(|f| f == *other).unwrap_or(false)
    }
}

// ---- conversions into Value (the `json!` interpolation surface) -------------

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i128)
            }
        }
    )*};
}

value_from_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! value_from_int_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::Int(*v as i128)
            }
        }
    )*};
}

value_from_int_ref!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Self {
        v.clone()
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

// ---- the serialization traits ----------------------------------------------

/// Serialize into the JSON [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Deserialize from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields; `Option<T>` overrides this to `None`.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

serde_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        Value::Int(i128::try_from(*self).expect("u128 value fits JSON integer model"))
    }
}

impl Deserialize for u128 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => {
                u128::try_from(*i).map_err(|_| Error::custom("negative integer for u128"))
            }
            _ => Err(Error::custom("expected integer for u128")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! serde_tuple {
    ($n:literal => $($t:ident : $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$i.serialize()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                if a.len() != $n {
                    return Err(Error::custom(concat!("expected ", $n, "-tuple array")));
                }
                Ok(($($t::deserialize(&a[$i])?,)+))
            }
        }
    };
}

serde_tuple!(2 => A: 0, B: 1);
serde_tuple!(3 => A: 0, B: 1, C: 2);
serde_tuple!(4 => A: 0, B: 1, C: 2, D: 3);

/// `&'static str` fields (curated metadata tables): deserialization leaks the
/// string, which is fine for the workspace's static descriptions.
impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected string"))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Deterministic key order for stable wire output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].serialize());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

/// Support machinery used by the `serde_derive` expansion. Not public API.
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    /// Look a field up in an object, falling back to the type's
    /// missing-field behaviour (errors for most types, `None` for Option).
    pub fn field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
        match m.get(key) {
            Some(v) => T::deserialize(v)
                .map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
            None => T::missing_field(key),
        }
    }

    pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a Map, Error> {
        v.as_object().ok_or_else(|| Error::custom(format!("expected object for {ty}")))
    }
}
