//! The §4.1 EIDOS case study, reproduced end to end: boomerang
//! transactions flood the chain from Nov 1, CPU prices spike, and the
//! network flips into congestion mode — squeezing out thinly-staked users.
//!
//! ```sh
//! cargo run --release --example eos_eidos_airdrop
//! ```

use txstat::core::eos_analysis;
use txstat::types::time::{ChainTime, Period};
use txstat::workload::{eidos_launch, eos::build_eos, Scenario};

fn main() {
    let mut scenario = Scenario::small(7);
    scenario.period = Period::new(
        ChainTime::from_ymd(2019, 10, 28),
        ChainTime::from_ymd(2019, 11, 6),
    );
    println!("Simulating the EIDOS launch window ({} blocks of {}s)…",
        scenario.block_count(scenario.eos_block_secs), scenario.eos_block_secs);
    let chain = build_eos(&scenario);

    // Daily throughput around the launch.
    let launch = eidos_launch();
    println!("\nTransactions per block (daily means):");
    let mut day_counts: Vec<(String, u64, u64)> = Vec::new();
    for block in chain.blocks() {
        let day = block.time.date_string();
        match day_counts.last_mut() {
            Some((d, txs, blocks)) if *d == day => {
                *txs += block.transactions.len() as u64;
                *blocks += 1;
            }
            _ => day_counts.push((day, block.transactions.len() as u64, 1)),
        }
    }
    for (day, txs, blocks) in &day_counts {
        let marker = if ChainTime::parse_iso(&format!("{day}T00:00:00")).expect("valid") >= launch {
            " ← EIDOS live"
        } else {
            ""
        };
        println!("  {day}: {:>6.1} tx/block{marker}", *txs as f64 / *blocks as f64);
    }

    // The boomerang detector (measurement side).
    let report = eos_analysis::boomerang_report(chain.blocks(), scenario.period);
    println!(
        "\nBoomerang detector: {} mining transactions, {} boomerangs, hub = {}",
        report.boomerang_txs,
        report.boomerangs,
        report.hub.map(|h| h.to_string_repr()).unwrap_or_default()
    );
    println!(
        "  {:.0}% of all transfer actions are airdrop legs (paper: 95%)",
        report.transfer_share * 100.0
    );

    // The congestion flip: CPU price index before/after.
    let pre_peak = chain
        .cpu_price_history
        .iter()
        .zip(chain.blocks())
        .filter(|(_, b)| b.time < launch)
        .map(|((_, p), _)| *p)
        .fold(0.0f64, f64::max);
    let post_peak = chain
        .cpu_price_history
        .iter()
        .map(|(_, p)| *p)
        .fold(0.0f64, f64::max);
    println!(
        "\nCPU price index: {:.1}× before launch → {:.0}× at peak (paper: ~10,000% spike)",
        pre_peak.max(1.0),
        post_peak
    );
    println!(
        "Congestion mode now: {}; transactions dropped by resource limits: {}",
        chain.state.resources.congested(),
        chain.dropped_txs
    );
}
