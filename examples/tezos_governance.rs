//! The §4.2 / Figure 9 Tezos governance case study: replaying the Babylon
//! amendment through all four voting periods and rebuilding the paper's
//! vote curves from on-chain operations.
//!
//! ```sh
//! cargo run --release --example tezos_governance
//! ```

use std::collections::HashMap;
use txstat::core::tezos_analysis;
use txstat::types::time::{ChainTime, Period};
use txstat::workload::{tezos::build_tezos, Scenario};

fn main() {
    let mut scenario = Scenario::small(5);
    // Cover the whole governance saga (Jul 17 – Oct 17) plus the window.
    scenario.period = Period::new(
        ChainTime::from_ymd(2019, 10, 1),
        ChainTime::from_ymd(2019, 10, 20),
    );
    println!("Replaying the Babylon amendment (proposal opened Jul 17, 2019)…");
    let chain = build_tezos(&scenario);

    let rolls: HashMap<_, _> = chain
        .bakers()
        .iter()
        .map(|b| (b.address, b.staked_mutez / chain.config.roll_size_mutez))
        .collect();
    // Period windows from the chain's governance history.
    let plen = chain.config.governance.period_blocks as i64 * chain.config.block_interval_secs;
    let mut start = chain.config.genesis_time;
    let mut periods = Vec::new();
    for result in &chain.governance.history {
        periods.push((result.kind, Period::new(start, start + plen)));
        start += plen;
    }

    let curves = tezos_analysis::governance_curves(chain.blocks(), &periods, &rolls);
    for pc in &curves {
        if pc.curves.is_empty() {
            continue;
        }
        println!(
            "\n{} period ({} .. {}), participation {:.1}% of rolls:",
            pc.kind.label(),
            pc.window.start.date_string(),
            pc.window.end.date_string(),
            pc.participation_pct
        );
        for curve in &pc.curves {
            println!("  {:<14} {:>8} rolls", curve.label, curve.total());
        }
    }

    println!("\nProtocols activated: {:?}", chain.governance.activated);
    println!(
        "Governance operations are {:.2}% of all operations — rare, but they\n\
         steer the whole protocol (the paper: 245 ops in three months).",
        100.0 * chain
            .blocks()
            .iter()
            .flat_map(|b| &b.operations)
            .filter(|o| matches!(
                o.kind(),
                txstat::tezos::OperationKind::Ballot | txstat::tezos::OperationKind::Proposals
            ))
            .count() as f64
            / chain.op_count().max(1) as f64
    );
}
