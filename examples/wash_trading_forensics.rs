//! The §4.1 WhaleEx forensics, step by step: find the DEX's trade-report
//! actions, measure account concentration, expose the buyer==seller
//! pattern, and confirm that the "trades" never move tokens.
//!
//! ```sh
//! cargo run --release --example wash_trading_forensics
//! ```

use std::collections::HashMap;
use txstat::core::eos_analysis;
use txstat::eos::{ActionData, Name};
use txstat::types::time::{ChainTime, Period};
use txstat::workload::Scenario;

fn main() {
    let mut scenario = Scenario::small(21);
    scenario.period = Period::new(
        ChainTime::from_ymd(2019, 10, 10),
        ChainTime::from_ymd(2019, 10, 24),
    );
    scenario.eos_divisor = 2_000.0;
    println!("Generating two weeks of EOS traffic (WhaleEx active)…");
    let chain = txstat::workload::eos::build_eos(&scenario);

    // Step 1: the detector's aggregate view.
    let report = eos_analysis::wash_trading_report(chain.blocks(), scenario.period);
    println!(
        "\n{} verifytrade2-style trades; {} ({:.0}%) have buyer == seller",
        report.total_trades,
        report.self_trades,
        report.self_trades as f64 * 100.0 / report.total_trades.max(1) as f64
    );
    println!(
        "Top-5 accounts participate in {:.0}% of all trades (paper: >70%):",
        report.top5_participation * 100.0
    );
    for (account, trades, self_share) in &report.top_accounts {
        println!(
            "  {:<12} {:>6} trades  {:>3.0}% self-trades",
            account.to_string_repr(),
            trades,
            self_share * 100.0
        );
    }

    // Step 2: the paper's balance-change check — wash trades move nothing.
    // Net EOS transferred by the top trader vs its reported trade volume.
    let top = report.top_accounts.first().expect("trades exist").0;
    let mut traded_quote: i64 = 0;
    let mut net_transferred: i64 = 0;
    for block in chain.blocks() {
        for tx in &block.transactions {
            for action in &tx.actions {
                match &action.data {
                    ActionData::Trade { buyer, seller, quote_amount, .. }
                        if *buyer == top || *seller == top =>
                    {
                        traded_quote += quote_amount;
                    }
                    ActionData::Transfer { from, to, amount, .. } => {
                        if *from == top {
                            net_transferred -= amount;
                        }
                        if *to == top {
                            net_transferred += amount;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    println!(
        "\nBalance-change check for {}:",
        top.to_string_repr()
    );
    println!("  reported trade volume : {:.4} EOS", traded_quote as f64 / 10_000.0);
    println!("  net tokens transferred: {:.4} EOS", net_transferred as f64 / 10_000.0);
    println!(
        "  → the 'trades' are bookkeeping signals: no assets move (the paper:\n\
         \x20   \"such a transaction is achieving absolutely nothing else than\n\
         \x20   artificially increasing the service statistics, i.e. wash-trading\")"
    );

    // Step 3: the exchange's action mix (Figure 4's whaleextrust row).
    let mut mix: HashMap<Name, u64> = HashMap::new();
    for block in chain.blocks() {
        for tx in &block.transactions {
            for action in &tx.actions {
                if action.contract == Name::new("whaleextrust") {
                    *mix.entry(action.name).or_insert(0) += 1;
                }
            }
        }
    }
    let total: u64 = mix.values().sum();
    let mut rows: Vec<(Name, u64)> = mix.into_iter().collect();
    rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\nwhaleextrust action mix (paper Figure 4):");
    for (name, count) in rows.iter().take(5) {
        println!(
            "  {:<14} {:>5.1}%",
            name.to_string_repr(),
            *count as f64 * 100.0 / total as f64
        );
    }
}
