//! The §4.3 / Figure 7+12 XRP value analysis: how much of the ledger's
//! throughput actually moves value, who moves it, and how IOU rates can be
//! manufactured (the Myrone pump).
//!
//! ```sh
//! cargo run --release --example xrp_value_flow
//! ```

use txstat::core::xrp_analysis;
use txstat::types::time::{ChainTime, Period};
use txstat::workload::Scenario;

fn main() {
    // December window: covers the second spam wave and the Myrone trades.
    let mut scenario = Scenario::small(11);
    scenario.period = Period::new(
        ChainTime::from_ymd(2019, 11, 20),
        ChainTime::from_ymd(2019, 12, 31),
    );
    scenario.xrp_divisor = 4_000.0;
    println!(
        "Generating XRP ledger traffic {} .. {} …",
        scenario.period.start.date_string(),
        scenario.period.end.date_string()
    );
    let data = txstat::reports::generate(&scenario);

    // Figure 7: the value funnel.
    let funnel = xrp_analysis::funnel(&data.xrp_blocks, scenario.period, &data.oracle);
    println!("\nValue funnel over {} transactions:", funnel.total);
    println!("  failed:             {:>5.1}%", funnel.pct(funnel.failed));
    println!("  payments w/ value:  {:>5.1}%", funnel.pct(funnel.payments_with_value));
    println!("  payments no value:  {:>5.1}%", funnel.pct(funnel.payments_no_value));
    println!("  offers exchanged:   {:>5.2}%", funnel.pct(funnel.offers_exchanged));
    println!("  economic share:     {:>5.1}%  (paper: 2.3%)", funnel.economic_share_pct());

    // Figure 12: who moves the value.
    let flow = xrp_analysis::value_flow(&data.xrp_blocks, scenario.period, &data.oracle, &data.cluster);
    println!("\nTop value senders (XRP-denominated):");
    for (entity, volume) in flow.top_senders.iter().take(6) {
        println!("  {entity:<28} {volume:>14.0} XRP");
    }

    // Figure 11b: the Myrone BTC IOU rate collapse.
    let myrone = txstat::xrp::IssuedCurrency::new("BTC", txstat::workload::xrp::MYRONE_ISSUER);
    let events = xrp_analysis::trade_events(&data.trades, myrone);
    println!("\nSelf-dealt BTC IOU exchanges (one issuer, §4.3):");
    for (time, seller, rate) in &events {
        println!("  {}  seller {}  rate {:>9.1} XRP", time.date_string(), seller, rate);
    }
    println!(
        "\nA token's 'value' is whatever its owner trades it at with himself —\n\
         which is why the paper only counts tokens with real on-ledger rates."
    );
}
