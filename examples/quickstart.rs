//! Quickstart: generate a small scenario, run the paper's headline
//! analytics, and print the key findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use txstat::core::{eos_analysis, tezos_analysis, xrp_analysis};
use txstat::reports::{generate, PipelineData};
use txstat::workload::Scenario;

fn main() {
    // A 12-day window straddling the EIDOS launch, heavily scaled down.
    let scenario = Scenario::small(42);
    println!(
        "Generating EOS, Tezos and XRP traffic for {} .. {} …",
        scenario.period.start.date_string(),
        scenario.period.end.date_string()
    );
    let data: PipelineData = generate(&scenario);

    // Headline 1: most EOS throughput is EIDOS boomerang mining.
    let boomerang = eos_analysis::boomerang_report(&data.eos_blocks, scenario.period);
    println!(
        "EOS: {} boomerang mining transactions; {:.0}% of transfer actions are airdrop legs (paper: 95%)",
        boomerang.boomerang_txs,
        boomerang.transfer_share * 100.0
    );

    // Headline 2: most Tezos throughput is consensus upkeep.
    let (rows, total) = tezos_analysis::op_distribution(&data.tezos_blocks, scenario.period);
    let endorsements = rows
        .iter()
        .find(|r| r.kind == txstat::tezos::OperationKind::Endorsement)
        .map(|r| r.count)
        .unwrap_or(0);
    println!(
        "Tezos: {:.0}% of operations are endorsements (paper: 82%)",
        endorsements as f64 * 100.0 / total.max(1) as f64
    );

    // Headline 3: almost no XRP throughput carries value.
    let funnel = xrp_analysis::funnel(&data.xrp_blocks, scenario.period, &data.oracle);
    println!(
        "XRP: {:.1}% of throughput carries economic value (paper: 2.3%); {:.1}% of transactions failed (paper: 10.7%)",
        funnel.economic_share_pct(),
        funnel.pct(funnel.failed)
    );
}
