//! The §3.1 data-collection pipeline, end to end: spin up a population of
//! EOS block-producer endpoints of mixed quality, benchmark them, shortlist
//! the generous ones (the paper's 6-of-32 selection), crawl the chain in
//! reverse chronological order, and report the Figure 2 storage accounting.
//!
//! ```sh
//! cargo run --release --example crawl_pipeline
//! ```

use std::sync::Arc;
use txstat::crawler::{
    benchmark_endpoints, crawl_eos, eos_head, shortlist, Advertised, ClientConfig, HttpConn,
    RotatingPool,
};
use txstat::netsim::handlers::EosRpcHandler;
use txstat::netsim::server::spawn_http;
use txstat::netsim::{EndpointProfile, HttpRequest};
use txstat::types::time::{ChainTime, Period};
use txstat::workload::Scenario;

#[tokio::main]
async fn main() {
    let mut scenario = Scenario::small(3);
    scenario.period = Period::new(
        ChainTime::from_ymd(2019, 10, 29),
        ChainTime::from_ymd(2019, 11, 3),
    );
    println!("Generating a 5-day EOS chain…");
    let chain = Arc::new(txstat::workload::eos::build_eos(&scenario));
    let handler = Arc::new(EosRpcHandler::new(chain.clone()));

    // 8 advertised endpoints: half generous, half stingy.
    println!("Advertising 8 block-producer endpoints (half of them stingy)…");
    let mut handles = Vec::new();
    for i in 0..8u64 {
        let profile = if i % 2 == 0 {
            EndpointProfile::generous(&format!("bp-{i}"), i)
        } else {
            EndpointProfile::stingy(&format!("bp-{i}"), i)
        };
        handles.push(spawn_http(handler.clone(), profile).await.expect("endpoint"));
    }
    let advertised: Vec<Advertised> = handles
        .iter()
        .map(|h| Advertised { name: h.name.clone(), addr: h.addr })
        .collect();

    // Benchmark with a cheap get_info probe, then shortlist.
    let reports = benchmark_endpoints(&advertised, 4, |addr| async move {
        let started = std::time::Instant::now();
        let mut conn = HttpConn::new(addr);
        match conn
            .call(
                &HttpRequest::post("/v1/chain/get_info", b"{}".to_vec()),
                std::time::Duration::from_millis(400),
            )
            .await
        {
            Ok(r) if r.is_ok() => Ok(started.elapsed()),
            _ => Err(()),
        }
    })
    .await;
    println!("\nEndpoint benchmark (success rate, mean latency):");
    for r in &reports {
        println!(
            "  {:<6} {:>5.0}%  {:>8.1?}",
            r.name,
            r.success_rate() * 100.0,
            r.mean_latency
        );
    }
    let keep = shortlist(&reports, 3);
    println!(
        "Shortlisted: {:?} (paper: 6 of 32)",
        keep.iter().map(|e| e.name.clone()).collect::<Vec<_>>()
    );

    // Reverse-chronological crawl with 6 workers.
    let pool = Arc::new(RotatingPool::new(keep));
    let cfg = ClientConfig::default();
    let head = eos_head(&pool, &cfg).await.expect("head");
    let started = std::time::Instant::now();
    let crawl = crawl_eos(pool, cfg, chain.config.start_block_num, head, 6)
        .await
        .expect("crawl");
    println!(
        "\nCrawled {} blocks / {} transactions in {:?} ({:.0} blocks/s)",
        crawl.stats.blocks,
        crawl.stats.transactions,
        started.elapsed(),
        crawl.stats.blocks as f64 / started.elapsed().as_secs_f64()
    );
    println!(
        "Wire bytes: {}  |  LZSS-compressed estimate: {}  (ratio {:.1}×) — the Figure 2 accounting",
        crawl.stats.wire_bytes,
        crawl.stats.compressed_bytes_estimate(),
        crawl.stats.compression_ratio()
    );
    assert_eq!(crawl.blocks.len(), chain.blocks().len(), "complete crawl");
    println!("Every block decoded identically to the source chain.");
}
