//! # txstat — facade crate
//!
//! Re-exports the full reproduction toolkit for *"Revisiting Transactional
//! Statistics of High-scalability Blockchains"* (IMC 2020).
//!
//! See the individual crates for details:
//! - [`types`] — shared primitives (time, amounts, stats, LZSS, tables)
//! - [`eos`], [`tezos`], [`xrp`] — the three ledger simulators
//! - [`workload`] — the agent-based scenario engine (paper preset)
//! - [`telemetry`] — lock-free metrics registry, stage tracer, and
//!   Prometheus/JSON exposition
//! - [`netsim`], [`crawler`] — RPC substrate and measurement crawler
//! - [`ingest`] — streaming crawl-to-accumulator ingestion and the
//!   distributed [`ingest::ReduceSession`]
//! - [`wire`] — the versioned shard-frame codec (`ShardFrame`)
//! - [`archive`] — the persistent segmented block archive cold-started
//!   from (`--archive DIR`)
//! - [`core`] — the paper's analytics pipeline
//! - [`reports`] — per-figure/table renderers

pub use txstat_archive as archive;
pub use txstat_core as core;
pub use txstat_crawler as crawler;
pub use txstat_ingest as ingest;
pub use txstat_eos as eos;
pub use txstat_netsim as netsim;
pub use txstat_reports as reports;
pub use txstat_telemetry as telemetry;
pub use txstat_tezos as tezos;
pub use txstat_types as types;
pub use txstat_wire as wire;
pub use txstat_workload as workload;
pub use txstat_xrp as xrp;
