//! The multi-process acceptance proof: N separate `reproduce shard` OS
//! processes over disjoint block ranges, reduced centrally by a
//! `reproduce reduce` process, render a report **byte-identical** to one
//! `reproduce report` process over the same scenario/seed — and the
//! legacy pre-subcommand flag spelling still works via the compat shim.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn reproduce(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn reproduce")
}

/// A long-running `reproduce` child (socket worker or chaos proxy) whose
/// first stdout line announces its bound address. Killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(dir: &Path, args: &[&str], banner: &str) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .current_dir(dir)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn reproduce server");
    let stdout = child.stdout.take().expect("server stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read server banner");
    assert!(line.contains(banner), "expected banner {banner:?}, got: {line:?}");
    // "shard worker on ADDR" / "chaos proxy on ADDR -> UP": token 3.
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("no address in banner {line:?}"))
        .to_string();
    Server { child, addr }
}

fn spawn_worker(dir: &Path, extra: &[&str]) -> Server {
    let mut args =
        vec!["shard", "--small", "--seed", "7", "--listen", "127.0.0.1:0", "--timeout-ms", "2000"];
    args.extend_from_slice(extra);
    spawn_server(dir, &args, "shard worker on")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("txstat-distributed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

#[test]
fn three_shard_processes_reduce_to_the_identical_report() {
    let dir = tempdir("reduce");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    // Three disjoint block-position ranges; the last one over-shoots every
    // chain head and clamps. Different in-process shard counts per worker
    // must not matter.
    for (range, shards, out) in
        [("0..250", "1", "a.frames"), ("250..400", "3", "b.frames"), ("400..99999999", "2", "c.frames")]
    {
        let shard = reproduce(
            &dir,
            &["shard", "--range", range, "--small", "--seed", "7", "--shards", shards, "--out", out],
        );
        assert!(
            shard.status.success(),
            "shard {range} failed: {}",
            String::from_utf8_lossy(&shard.stderr)
        );
    }

    let reduce = reproduce(
        &dir,
        &["reduce", "a.frames", "b.frames", "c.frames", "--out", "reduced.txt"],
    );
    assert!(reduce.status.success(), "reduce failed: {}", String::from_utf8_lossy(&reduce.stderr));

    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "reduced.txt"),
        "reduced report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mixed fleet: one shard still emitting v1 JSON frames (`--payload
/// json`) between two v2 binary shards reduces to the byte-identical
/// report — payload schema rollouts don't partition the fleet.
#[test]
fn mixed_json_and_bin_shards_reduce_to_the_identical_report() {
    let dir = tempdir("mixed");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    for (range, payload, out) in [
        ("0..250", "bin", "a.frames"),
        ("250..400", "json", "b.frames"),
        ("400..99999999", "bin", "c.frames"),
    ] {
        let shard = reproduce(
            &dir,
            &[
                "shard", "--range", range, "--small", "--seed", "7", "--payload", payload,
                "--out", out,
            ],
        );
        assert!(
            shard.status.success(),
            "shard {range} ({payload}) failed: {}",
            String::from_utf8_lossy(&shard.stderr)
        );
        let stderr = String::from_utf8_lossy(&shard.stderr);
        let expect = if payload == "json" { "schema v1, json payload" } else { "schema v2, bin payload" };
        assert!(stderr.contains(expect), "shard {range} stderr: {stderr}");
    }

    let reduce = reproduce(
        &dir,
        &["reduce", "a.frames", "b.frames", "c.frames", "--out", "reduced.txt"],
    );
    assert!(reduce.status.success(), "reduce failed: {}", String::from_utf8_lossy(&reduce.stderr));
    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "reduced.txt"),
        "mixed-payload reduced report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The incremental path agrees too: `follow` re-observes the chains in
/// checkpointed batches and its head-of-chain report must be
/// byte-identical to the one-shot `report`.
#[test]
fn follow_reaches_the_identical_report_at_head() {
    let dir = tempdir("follow");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    let follow = reproduce(
        &dir,
        &["follow", "--small", "--seed", "7", "--batch", "400", "--out", "followed.txt"],
    );
    assert!(follow.status.success(), "follow failed: {}", String::from_utf8_lossy(&follow.stderr));
    let stderr = String::from_utf8_lossy(&follow.stderr);
    assert!(stderr.contains("batch    2"), "expected multiple batches, stderr: {stderr}");

    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "followed.txt"),
        "follow's head report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The socket fleet: three real worker processes, one rigged to die after
/// its first assignment (`--max-requests 1`). The reducer's retry budget
/// burns out against the corpse, re-dispatches its ranges to the
/// survivors, and the report is still byte-identical to the one-shot run.
#[test]
fn socket_fleet_survives_a_worker_killed_mid_reduction() {
    let dir = tempdir("fleet");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    let w1 = spawn_worker(&dir, &[]);
    let w2 = spawn_worker(&dir, &[]);
    let w3 = spawn_worker(&dir, &["--max-requests", "1"]);
    let connect = format!("{},{},{}", w1.addr, w2.addr, w3.addr);
    let reduce = reproduce(
        &dir,
        &[
            "reduce", "--small", "--seed", "7", "--connect", &connect, "--chunks", "6",
            "--timeout-ms", "4000", "--retries", "2", "--backoff-ms", "5",
            "--metrics-out", "fleet-metrics.txt", "--out", "fleet.txt",
        ],
    );
    assert!(
        reduce.status.success(),
        "fleet reduce failed: {}",
        String::from_utf8_lossy(&reduce.stderr)
    );
    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "fleet.txt"),
        "fleet report differs from the single-process report"
    );
    let metrics = String::from_utf8(read(&dir, "fleet-metrics.txt")).expect("metrics utf8");
    for family in ["txstat_fleet_requests_total", "txstat_fleet_redispatch_total"] {
        assert!(metrics.contains(family), "{family} missing from metrics dump");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same fleet driven through a `reproduce chaos` proxy process that
/// resets/truncates/bit-flips 9% of connections: damaged exchanges are
/// retried (bit-flips are caught by the wire content hashes) and the
/// report stays byte-identical.
#[test]
fn fleet_reduce_through_a_chaos_proxy_is_byte_identical() {
    let dir = tempdir("chaosfleet");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    let w1 = spawn_worker(&dir, &[]);
    let w2 = spawn_worker(&dir, &[]);
    let proxy = spawn_server(
        &dir,
        &[
            "chaos", "--upstream", &w1.addr, "--fault-rate", "0.05", "--truncate-rate", "0.02",
            "--flip-rate", "0.02", "--seed", "11",
        ],
        "chaos proxy on",
    );
    let connect = format!("{},{}", proxy.addr, w2.addr);
    let reduce = reproduce(
        &dir,
        &[
            "reduce", "--small", "--seed", "7", "--connect", &connect, "--chunks", "6",
            "--timeout-ms", "4000", "--retries", "4", "--backoff-ms", "5", "--out", "chaos.txt",
        ],
    );
    assert!(
        reduce.status.success(),
        "chaos-fleet reduce failed: {}",
        String::from_utf8_lossy(&reduce.stderr)
    );
    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "chaos.txt"),
        "chaos-fleet report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fleet whose only worker never answers exhausts its budgets and fails
/// with provenance: the error names the dead worker's address.
#[test]
fn fleet_exhaustion_names_the_dead_worker() {
    let dir = tempdir("deadfleet");
    // Bind and immediately drop a listener: the port is now (almost
    // certainly) refusing connections.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let out = reproduce(
        &dir,
        &[
            "reduce", "--small", "--seed", "7", "--connect", &dead, "--timeout-ms", "500",
            "--retries", "1", "--backoff-ms", "1",
        ],
    );
    assert!(!out.status.success(), "a dead fleet must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fleet exhausted"), "stderr: {stderr}");
    assert!(stderr.contains(&dead), "error does not name the dead worker: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end reorg recovery: `follow --reorg-at-batch` rewrites a chain
/// suffix mid-follow; the binary itself verifies the recovered report is
/// byte-identical to a from-scratch sweep and fails otherwise, so success
/// plus the verification line is the acceptance.
#[test]
fn follow_recovers_from_an_injected_reorg() {
    let dir = tempdir("reorg");
    let out = reproduce(
        &dir,
        &[
            "follow", "--small", "--seed", "7", "--batch", "400", "--reorg-at-batch", "3",
            "--reorg-depth", "500", "--reorg-seed", "11", "--metrics-out", "reorg-metrics.txt",
            "--out", "reorged.txt",
        ],
    );
    assert!(out.status.success(), "follow failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("reorg recovery verified"), "stderr: {stderr}");
    let metrics = String::from_utf8(read(&dir, "reorg-metrics.txt")).expect("metrics utf8");
    assert!(
        metrics.contains("txstat_follow_rollbacks_total"),
        "follow metrics missing rollback family"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unknown payload encoding is a usage error (exit 2), like every other
/// bad argument.
#[test]
fn unknown_payload_value_exits_with_usage() {
    let dir = tempdir("payload");
    let out = reproduce(
        &dir,
        &["shard", "--range", "0..5", "--payload", "msgpack", "--out", "x.frames"],
    );
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--payload wants json or bin"), "stderr: {stderr}");
    assert!(stderr.contains("usage: reproduce"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reduce_refuses_incomplete_coverage() {
    let dir = tempdir("gap");
    let shard = reproduce(
        &dir,
        &["shard", "--range", "10..40", "--small", "--seed", "7", "--out", "mid.frames"],
    );
    assert!(shard.status.success());
    let reduce = reproduce(&dir, &["reduce", "mid.frames", "--out", "never.txt"]);
    assert!(!reduce.status.success(), "a head-less reduction must fail");
    let stderr = String::from_utf8_lossy(&reduce.stderr);
    assert!(stderr.contains("uncovered block ranges"), "stderr: {stderr}");
    assert!(!dir.join("never.txt").exists(), "no report may be written on gap");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The archive cold-start acceptance: seal the corpus once, then a socket
/// fleet whose workers decode only their assignments' segments (zero
/// chain-generation passes, pinned by the worker's own metrics dump)
/// reduces to the byte-identical one-shot report.
#[test]
fn archived_cold_start_fleet_matches_the_one_shot_report() {
    let dir = tempdir("archfleet");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));
    let sealed = reproduce(
        &dir,
        &["archive", "--small", "--seed", "7", "--out", "corpus", "--segment-blocks", "100"],
    );
    assert!(sealed.status.success(), "archive failed: {}", String::from_utf8_lossy(&sealed.stderr));

    // Two cold-started workers serve a fleet reduction straight from the
    // mapped segments; the reducer's own dataset also comes from the
    // corpus (no scenario flags anywhere).
    let w1 = spawn_server(
        &dir,
        &["shard", "--listen", "127.0.0.1:0", "--timeout-ms", "2000", "--archive", "corpus"],
        "shard worker on",
    );
    let w2 = spawn_server(
        &dir,
        &["shard", "--listen", "127.0.0.1:0", "--timeout-ms", "2000", "--archive", "corpus"],
        "shard worker on",
    );
    let connect = format!("{},{}", w1.addr, w2.addr);
    let reduce = reproduce(
        &dir,
        &[
            "reduce", "--connect", &connect, "--archive", "corpus", "--chunks", "4",
            "--timeout-ms", "4000", "--retries", "2", "--backoff-ms", "5", "--out", "fleet.txt",
        ],
    );
    assert!(
        reduce.status.success(),
        "cold-start fleet reduce failed: {}",
        String::from_utf8_lossy(&reduce.stderr)
    );
    let stderr = String::from_utf8_lossy(&reduce.stderr);
    assert!(stderr.contains("cold-started reducer dataset"), "stderr: {stderr}");
    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "fleet.txt"),
        "cold-started fleet report differs from the single-process report"
    );

    // A worker whose request budget equals the chunk count exits cleanly
    // and dumps its metrics: zero generation passes, >0 segments replayed.
    let mut w3 = spawn_server(
        &dir,
        &[
            "shard", "--listen", "127.0.0.1:0", "--timeout-ms", "2000", "--archive", "corpus",
            "--max-requests", "2", "--metrics-out", "worker-metrics.txt",
        ],
        "shard worker on",
    );
    let reduce2 = reproduce(
        &dir,
        &[
            "reduce", "--connect", &w3.addr, "--archive", "corpus", "--chunks", "2",
            "--timeout-ms", "4000", "--retries", "2", "--backoff-ms", "5", "--out", "fleet2.txt",
        ],
    );
    assert!(
        reduce2.status.success(),
        "single-worker cold-start reduce failed: {}",
        String::from_utf8_lossy(&reduce2.stderr)
    );
    assert_eq!(read(&dir, "direct.txt"), read(&dir, "fleet2.txt"));
    let status = w3.child.wait().expect("worker exit");
    assert!(status.success(), "budgeted worker should exit cleanly");
    let metrics = String::from_utf8(read(&dir, "worker-metrics.txt")).expect("metrics utf8");
    assert!(
        metrics.contains("txstat_pipeline_generate_total 0"),
        "cold-started worker generated a chain:\n{metrics}"
    );
    let replayed: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("txstat_archive_segments_replayed_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("replay counter in metrics dump");
    assert!(replayed > 0, "worker replayed no archive segments:\n{metrics}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// File-mode shards cold-started from the corpus produce frames that
/// reduce to the byte-identical report, still with zero generation.
#[test]
fn archived_file_shards_reduce_to_the_identical_report() {
    let dir = tempdir("archshard");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));
    let sealed = reproduce(
        &dir,
        &["archive", "--small", "--seed", "7", "--out", "corpus", "--segment-blocks", "128"],
    );
    assert!(sealed.status.success(), "archive failed: {}", String::from_utf8_lossy(&sealed.stderr));

    for (range, out, metrics) in [
        ("0..300", "a.frames", "a-metrics.txt"),
        ("300..99999999", "b.frames", "b-metrics.txt"),
    ] {
        let shard = reproduce(
            &dir,
            &[
                "shard", "--range", range, "--archive", "corpus", "--out", out,
                "--metrics-out", metrics,
            ],
        );
        assert!(
            shard.status.success(),
            "shard {range} failed: {}",
            String::from_utf8_lossy(&shard.stderr)
        );
        let m = String::from_utf8(read(&dir, metrics)).expect("metrics utf8");
        assert!(m.contains("txstat_pipeline_generate_total 0"), "shard {range} generated:\n{m}");
    }
    let reduce = reproduce(&dir, &["reduce", "a.frames", "b.frames", "--out", "reduced.txt"]);
    assert!(reduce.status.success(), "reduce failed: {}", String::from_utf8_lossy(&reduce.stderr));
    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "reduced.txt"),
        "archived-shard report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `follow --archive` persists the corpus as it follows (one segment per
/// batch), cold-starts from it on the next run, and a reorg on top of the
/// persisted corpus truncates + re-seals only the disagreeing suffix —
/// every run self-verifies that the re-opened archive replays
/// byte-identical to the followed chains.
#[test]
fn follow_persists_and_cold_starts_from_the_archive() {
    let dir = tempdir("archfollow");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    // First run creates the corpus while following.
    let first = reproduce(
        &dir,
        &[
            "follow", "--small", "--seed", "7", "--batch", "400", "--archive", "corpus",
            "--out", "followed.txt",
        ],
    );
    assert!(first.status.success(), "follow failed: {}", String::from_utf8_lossy(&first.stderr));
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("creating archive"), "stderr: {stderr}");
    assert!(stderr.contains("archive verified"), "stderr: {stderr}");
    assert_eq!(read(&dir, "direct.txt"), read(&dir, "followed.txt"));

    // Second run cold-starts from it — no scenario flags, no generation.
    let second = reproduce(
        &dir,
        &[
            "follow", "--batch", "400", "--archive", "corpus", "--out", "followed2.txt",
            "--metrics-out", "follow2-metrics.txt",
        ],
    );
    assert!(second.status.success(), "follow failed: {}", String::from_utf8_lossy(&second.stderr));
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("cold-started"), "stderr: {stderr}");
    assert_eq!(read(&dir, "direct.txt"), read(&dir, "followed2.txt"));
    let metrics = String::from_utf8(read(&dir, "follow2-metrics.txt")).expect("metrics utf8");
    assert!(
        metrics.contains("txstat_pipeline_generate_total 0"),
        "cold-started follow generated a chain:\n{metrics}"
    );

    // A reorg over the persisted corpus invalidates only the disagreeing
    // segment suffix, and the re-sealed archive still verifies.
    let reorg = reproduce(
        &dir,
        &[
            "follow", "--batch", "400", "--archive", "corpus", "--reorg-at-batch", "2",
            "--reorg-depth", "500", "--reorg-seed", "11", "--out", "reorged.txt",
        ],
    );
    assert!(reorg.status.success(), "reorg follow failed: {}", String::from_utf8_lossy(&reorg.stderr));
    let stderr = String::from_utf8_lossy(&reorg.stderr);
    assert!(stderr.contains("reorg invalidated"), "stderr: {stderr}");
    assert!(stderr.contains("archive verified"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every `--archive` misuse is a usage error (exit 2): a directory with no
/// corpus, a zero segment size, a missing --out, scenario flags that
/// contradict the manifest, and file-mode reduce with --archive.
#[test]
fn archive_flag_misuse_exits_with_usage() {
    let dir = tempdir("archusage");
    std::fs::create_dir_all(dir.join("emptydir")).expect("mkdir");
    let sealed = reproduce(
        &dir,
        &["archive", "--small", "--seed", "7", "--out", "corpus", "--segment-blocks", "512"],
    );
    assert!(sealed.status.success(), "archive failed: {}", String::from_utf8_lossy(&sealed.stderr));

    for (args, needle) in [
        (&["report", "--archive", "missing"][..], "no archive at"),
        (&["shard", "--range", "0..5", "--out", "x.frames", "--archive", "emptydir"][..], "no archive at"),
        (&["follow", "--archive", "corpus", "--seed", "9"][..], "does not hold the requested"),
        (&["archive", "--small", "--out", "x", "--segment-blocks", "0"][..], "--segment-blocks must be at least 1"),
        (&["archive", "--small"][..], "archive needs --out DIR"),
        (&["report", "--archive", "corpus", "--seed", "9"][..], "does not hold the requested"),
        (&["report", "--archive", "corpus", "--crawl"][..], "not both"),
        (&["reduce", "--archive", "corpus", "x.frames"][..], "needs --connect"),
    ] {
        let out = reproduce(&dir, args);
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
        assert!(stderr.contains("usage: reproduce"), "{args:?} printed no usage: {stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_flag_spelling_still_reports() {
    let dir = tempdir("compat");
    let legacy = reproduce(&dir, &["--small", "--seed", "9", "--out", "legacy.txt"]);
    assert!(legacy.status.success(), "{}", String::from_utf8_lossy(&legacy.stderr));
    let modern = reproduce(&dir, &["report", "--small", "--seed", "9", "--out", "modern.txt"]);
    assert!(modern.status.success());
    assert_eq!(read(&dir, "legacy.txt"), read(&dir, "modern.txt"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flags_and_subcommands_exit_nonzero_with_usage() {
    let dir = tempdir("usage");
    for args in [
        &["report", "--frobnicate"][..],
        &["--frobnicate"][..],
        &["shard", "--range", "0..5"][..], // missing --out
        &["warble"][..],
    ] {
        let out = reproduce(&dir, args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: reproduce"), "{args:?} printed no usage: {stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
