//! The multi-process acceptance proof: N separate `reproduce shard` OS
//! processes over disjoint block ranges, reduced centrally by a
//! `reproduce reduce` process, render a report **byte-identical** to one
//! `reproduce report` process over the same scenario/seed — and the
//! legacy pre-subcommand flag spelling still works via the compat shim.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn reproduce(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn reproduce")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("txstat-distributed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

#[test]
fn three_shard_processes_reduce_to_the_identical_report() {
    let dir = tempdir("reduce");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    // Three disjoint block-position ranges; the last one over-shoots every
    // chain head and clamps. Different in-process shard counts per worker
    // must not matter.
    for (range, shards, out) in
        [("0..250", "1", "a.frames"), ("250..400", "3", "b.frames"), ("400..99999999", "2", "c.frames")]
    {
        let shard = reproduce(
            &dir,
            &["shard", "--range", range, "--small", "--seed", "7", "--shards", shards, "--out", out],
        );
        assert!(
            shard.status.success(),
            "shard {range} failed: {}",
            String::from_utf8_lossy(&shard.stderr)
        );
    }

    let reduce = reproduce(
        &dir,
        &["reduce", "a.frames", "b.frames", "c.frames", "--out", "reduced.txt"],
    );
    assert!(reduce.status.success(), "reduce failed: {}", String::from_utf8_lossy(&reduce.stderr));

    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "reduced.txt"),
        "reduced report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mixed fleet: one shard still emitting v1 JSON frames (`--payload
/// json`) between two v2 binary shards reduces to the byte-identical
/// report — payload schema rollouts don't partition the fleet.
#[test]
fn mixed_json_and_bin_shards_reduce_to_the_identical_report() {
    let dir = tempdir("mixed");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    for (range, payload, out) in [
        ("0..250", "bin", "a.frames"),
        ("250..400", "json", "b.frames"),
        ("400..99999999", "bin", "c.frames"),
    ] {
        let shard = reproduce(
            &dir,
            &[
                "shard", "--range", range, "--small", "--seed", "7", "--payload", payload,
                "--out", out,
            ],
        );
        assert!(
            shard.status.success(),
            "shard {range} ({payload}) failed: {}",
            String::from_utf8_lossy(&shard.stderr)
        );
        let stderr = String::from_utf8_lossy(&shard.stderr);
        let expect = if payload == "json" { "schema v1, json payload" } else { "schema v2, bin payload" };
        assert!(stderr.contains(expect), "shard {range} stderr: {stderr}");
    }

    let reduce = reproduce(
        &dir,
        &["reduce", "a.frames", "b.frames", "c.frames", "--out", "reduced.txt"],
    );
    assert!(reduce.status.success(), "reduce failed: {}", String::from_utf8_lossy(&reduce.stderr));
    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "reduced.txt"),
        "mixed-payload reduced report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The incremental path agrees too: `follow` re-observes the chains in
/// checkpointed batches and its head-of-chain report must be
/// byte-identical to the one-shot `report`.
#[test]
fn follow_reaches_the_identical_report_at_head() {
    let dir = tempdir("follow");

    let direct = reproduce(&dir, &["report", "--small", "--seed", "7", "--out", "direct.txt"]);
    assert!(direct.status.success(), "report failed: {}", String::from_utf8_lossy(&direct.stderr));

    let follow = reproduce(
        &dir,
        &["follow", "--small", "--seed", "7", "--batch", "400", "--out", "followed.txt"],
    );
    assert!(follow.status.success(), "follow failed: {}", String::from_utf8_lossy(&follow.stderr));
    let stderr = String::from_utf8_lossy(&follow.stderr);
    assert!(stderr.contains("batch    2"), "expected multiple batches, stderr: {stderr}");

    assert_eq!(
        read(&dir, "direct.txt"),
        read(&dir, "followed.txt"),
        "follow's head report differs from the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unknown payload encoding is a usage error (exit 2), like every other
/// bad argument.
#[test]
fn unknown_payload_value_exits_with_usage() {
    let dir = tempdir("payload");
    let out = reproduce(
        &dir,
        &["shard", "--range", "0..5", "--payload", "msgpack", "--out", "x.frames"],
    );
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--payload wants json or bin"), "stderr: {stderr}");
    assert!(stderr.contains("usage: reproduce"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reduce_refuses_incomplete_coverage() {
    let dir = tempdir("gap");
    let shard = reproduce(
        &dir,
        &["shard", "--range", "10..40", "--small", "--seed", "7", "--out", "mid.frames"],
    );
    assert!(shard.status.success());
    let reduce = reproduce(&dir, &["reduce", "mid.frames", "--out", "never.txt"]);
    assert!(!reduce.status.success(), "a head-less reduction must fail");
    let stderr = String::from_utf8_lossy(&reduce.stderr);
    assert!(stderr.contains("uncovered block ranges"), "stderr: {stderr}");
    assert!(!dir.join("never.txt").exists(), "no report may be written on gap");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_flag_spelling_still_reports() {
    let dir = tempdir("compat");
    let legacy = reproduce(&dir, &["--small", "--seed", "9", "--out", "legacy.txt"]);
    assert!(legacy.status.success(), "{}", String::from_utf8_lossy(&legacy.stderr));
    let modern = reproduce(&dir, &["report", "--small", "--seed", "9", "--out", "modern.txt"]);
    assert!(modern.status.success());
    assert_eq!(read(&dir, "legacy.txt"), read(&dir, "modern.txt"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flags_and_subcommands_exit_nonzero_with_usage() {
    let dir = tempdir("usage");
    for args in [
        &["report", "--frobnicate"][..],
        &["--frobnicate"][..],
        &["shard", "--range", "0..5"][..], // missing --out
        &["warble"][..],
    ] {
        let out = reproduce(&dir, args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: reproduce"), "{args:?} printed no usage: {stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
