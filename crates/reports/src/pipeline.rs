//! Pipeline orchestration: scenario → chains → (optional RPC crawl) →
//! the dataset every exhibit renders from.
//!
//! Two paths produce identical [`PipelineData`]:
//! - [`generate`] reads the simulated chains directly (fast; used by tests
//!   and benches);
//! - [`generate_with_crawl`] serves the chains over loopback RPC endpoints,
//!   benchmarks and shortlists them, and runs the real crawler — the full
//!   §3.1 measurement path (used by the `reproduce` binary).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};
use txstat_core::{ClusterInfo, EosSweep, TezosSweep, XrpSweep};
use txstat_crawler::{
    benchmark_endpoints, crawl_eos, crawl_tezos, crawl_xrp, eos_head, fetch_account_meta,
    fetch_exchange_rate, fetch_exchanges, shortlist, tezos_head, xrp_head, Advertised,
    ClientConfig, CrawlError, CrawlStats, RotatingPool,
};
use txstat_netsim::handlers::{EosRpcHandler, TezosRpcHandler, XrpRpcHandler};
use txstat_netsim::server::{spawn_http, spawn_ndjson, EndpointHandle};
use txstat_netsim::EndpointProfile;
use txstat_netsim::http::HttpRequest;
use txstat_tezos::address::Address;
use txstat_tezos::governance::PeriodKind;
use txstat_types::time::Period;
use txstat_workload::{eos::build_eos, tezos::build_tezos, xrp::build_xrp, Scenario};
use txstat_xrp::amount::{Asset, IssuedCurrency};
use txstat_xrp::rates::{RateOracle, TradeRecord};
use txstat_xrp::tx::TxPayload;

/// Everything the exhibits need.
pub struct PipelineData {
    pub scenario: Scenario,
    pub eos_blocks: Vec<txstat_eos::Block>,
    pub tezos_blocks: Vec<txstat_tezos::TezosBlock>,
    pub xrp_blocks: Vec<txstat_xrp::LedgerBlock>,
    /// Exchange-rate oracle over the window (Data API substitute).
    pub oracle: RateOracle,
    /// Individual IOU↔XRP exchange events (Figure 11b).
    pub trades: Vec<TradeRecord>,
    pub cluster: ClusterInfo,
    /// (block number, CPU price index) per EOS block (§4.1).
    pub eos_cpu_price: Vec<(u64, f64)>,
    /// EOS transactions rejected during production (congestion drops).
    pub eos_dropped_txs: u64,
    pub tezos_rolls: HashMap<Address, u64>,
    /// The governance period windows of the Tezos chain, in order.
    pub governance_periods: Vec<(PeriodKind, Period)>,
    /// Crawl accounting when the RPC path was used.
    pub crawl: Option<CrawlSummary>,
    /// Lazily-computed fused accumulators (one parallel sweep per chain);
    /// every exhibit renders from these instead of re-scanning the blocks.
    sweeps: OnceLock<ChainSweeps>,
}

/// The three per-chain accumulators behind the full report.
pub struct ChainSweeps {
    pub eos: EosSweep,
    pub tezos: TezosSweep,
    pub xrp: XrpSweep,
}

impl PipelineData {
    /// The fused analytics state: computed on first use with one rayon
    /// map-reduce sweep per chain, then shared by every exhibit.
    pub fn sweeps(&self) -> &ChainSweeps {
        self.sweeps.get_or_init(|| {
            let period = self.scenario.period;
            ChainSweeps {
                eos: EosSweep::compute(&self.eos_blocks, period),
                tezos: TezosSweep::compute(&self.tezos_blocks, period, &self.governance_periods),
                xrp: XrpSweep::compute(&self.xrp_blocks, period, &self.oracle),
            }
        })
    }
}

/// Per-chain crawl accounting for Figure 2.
pub struct CrawlSummary {
    pub eos: CrawlStats,
    pub tezos: CrawlStats,
    pub xrp: CrawlStats,
    pub eos_advertised: usize,
    pub eos_shortlisted: usize,
}

fn governance_periods_of(chain: &txstat_tezos::TezosChain) -> Vec<(PeriodKind, Period)> {
    let p = chain.config.governance.period_blocks as i64 * chain.config.block_interval_secs;
    let mut out = Vec::new();
    let mut start = chain.config.genesis_time;
    for result in &chain.governance.history {
        let window = Period::new(start, start + p);
        out.push((result.kind, window));
        start = window.end;
    }
    out
}

fn cluster_from_ledger(ledger: &txstat_xrp::XrpLedger) -> ClusterInfo {
    let usernames: HashMap<_, _> = txstat_workload::xrp::known_usernames().into_iter().collect();
    let mut cluster = ClusterInfo::new();
    for (id, root) in ledger.accounts() {
        let username = usernames.get(id).map(|s| (*s).to_owned());
        cluster.insert(*id, username, root.activated_by);
    }
    cluster
}

/// Direct path: generate the three chains and read them in-process.
pub fn generate(sc: &Scenario) -> PipelineData {
    let eos = build_eos(sc);
    let tezos = build_tezos(sc);
    let xrp = build_xrp(sc);

    let oracle = RateOracle::from_trades(&xrp.trades, sc.period.end, sc.period.days() as i64 + 1);
    let cluster = cluster_from_ledger(&xrp);
    let governance_periods = governance_periods_of(&tezos);
    let tezos_rolls: HashMap<Address, u64> = tezos
        .bakers()
        .iter()
        .map(|b| (b.address, b.staked_mutez / tezos.config.roll_size_mutez))
        .collect();

    PipelineData {
        scenario: sc.clone(),
        eos_blocks: eos.blocks().to_vec(),
        tezos_blocks: tezos.blocks().to_vec(),
        xrp_blocks: xrp.closed_ledgers().to_vec(),
        oracle,
        trades: xrp.trades.clone(),
        cluster,
        eos_cpu_price: eos.cpu_price_history.clone(),
        eos_dropped_txs: eos.dropped_txs,
        tezos_rolls,
        governance_periods,
        crawl: None,
        sweeps: OnceLock::new(),
    }
}

/// Crawl-path tuning.
#[derive(Debug, Clone)]
pub struct CrawlOptions {
    /// Advertised EOS endpoints (the paper: 32) and how many to shortlist
    /// (the paper: 6).
    pub eos_advertised: usize,
    pub eos_shortlisted: usize,
    /// Worker concurrency per chain crawl.
    pub concurrency: usize,
}

impl Default for CrawlOptions {
    fn default() -> Self {
        CrawlOptions { eos_advertised: 8, eos_shortlisted: 3, concurrency: 8 }
    }
}

impl CrawlOptions {
    /// The paper's endpoint population: 32 advertised, 6 shortlisted.
    pub fn paper() -> Self {
        CrawlOptions { eos_advertised: 32, eos_shortlisted: 6, concurrency: 12 }
    }
}

/// Full path: serve the generated chains over loopback RPC, shortlist
/// endpoints, crawl everything, fetch rates/metadata, and assemble the
/// dataset — exercising exactly the code path the paper's pipeline used.
pub async fn generate_with_crawl(
    sc: &Scenario,
    opts: &CrawlOptions,
) -> Result<PipelineData, CrawlError> {
    let eos = Arc::new(build_eos(sc));
    let tezos = Arc::new(build_tezos(sc));
    let xrp = Arc::new(build_xrp(sc));
    let cfg = ClientConfig::default();

    // --- EOS: a population of block-producer endpoints of mixed quality. --
    let eos_handler = Arc::new(EosRpcHandler::new(eos.clone()));
    let mut eos_handles: Vec<EndpointHandle> = Vec::new();
    for i in 0..opts.eos_advertised {
        // Roughly half the advertised endpoints are stingy (tight limits,
        // high latency), mirroring the paper's 6-of-32 yield.
        let profile = if i % 2 == 0 {
            EndpointProfile::generous(&format!("eos-bp-{i}"), sc.seed ^ (i as u64))
        } else {
            EndpointProfile::stingy(&format!("eos-bp-{i}"), sc.seed ^ (i as u64))
        };
        eos_handles.push(spawn_http(eos_handler.clone(), profile).await.map_err(CrawlError::Io)?);
    }
    let advertised: Vec<Advertised> = eos_handles
        .iter()
        .map(|h| Advertised { name: h.name.clone(), addr: h.addr })
        .collect();
    let reports = benchmark_endpoints(&advertised, 3, |addr| async move {
        let started = std::time::Instant::now();
        let mut conn = txstat_crawler::HttpConn::new(addr);
        match conn
            .call(
                &HttpRequest::post("/v1/chain/get_info", b"{}".to_vec()),
                std::time::Duration::from_millis(500),
            )
            .await
        {
            Ok(r) if r.is_ok() => Ok(started.elapsed()),
            _ => Err(()),
        }
    })
    .await;
    let eos_pool = Arc::new(RotatingPool::new(shortlist(&reports, opts.eos_shortlisted)));
    let head = eos_head(&eos_pool, &cfg).await?;
    let eos_crawl = crawl_eos(
        eos_pool,
        cfg.clone(),
        eos.config.start_block_num,
        head,
        opts.concurrency,
    )
    .await?;

    // --- Tezos: the self-hosted node (one endpoint). -----------------------
    let tezos_handler = Arc::new(TezosRpcHandler::new(tezos.clone()));
    let tz_handle = spawn_http(
        tezos_handler,
        EndpointProfile::generous("tezos-self-node", sc.seed ^ 0x7e20),
    )
    .await
    .map_err(CrawlError::Io)?;
    let tz_pool = Arc::new(RotatingPool::new(vec![Advertised {
        name: tz_handle.name.clone(),
        addr: tz_handle.addr,
    }]));
    let tz_head = tezos_head(&tz_pool, &cfg).await?;
    let tezos_crawl = crawl_tezos(
        tz_pool,
        cfg.clone(),
        tezos.config.start_level,
        tz_head,
        opts.concurrency,
    )
    .await?;

    // --- XRP: the community websocket-equivalent endpoint. -----------------
    let usernames: HashMap<_, _> = txstat_workload::xrp::known_usernames()
        .into_iter()
        .map(|(a, n)| (a, n.to_owned()))
        .collect();
    let xrp_handler = Arc::new(XrpRpcHandler::new(xrp.clone(), usernames));
    let xrp_handle = spawn_ndjson(
        xrp_handler,
        EndpointProfile::generous("xrp-full-history", sc.seed ^ 0x1277),
    )
    .await
    .map_err(CrawlError::Io)?;
    let xrp_pool = Arc::new(RotatingPool::new(vec![Advertised {
        name: xrp_handle.name.clone(),
        addr: xrp_handle.addr,
    }]));
    let x_head = xrp_head(&xrp_pool, &cfg).await?;
    let xrp_crawl = crawl_xrp(
        xrp_pool.clone(),
        cfg.clone(),
        xrp.config.start_index,
        x_head,
        opts.concurrency,
    )
    .await?;

    // Account metadata for every account seen (XRP Scan path).
    let mut seen: HashSet<txstat_xrp::AccountId> = HashSet::new();
    let mut ious: HashSet<IssuedCurrency> = HashSet::new();
    for b in &xrp_crawl.blocks {
        for tx in &b.transactions {
            seen.insert(tx.tx.account);
            match &tx.tx.payload {
                TxPayload::Payment { destination, amount, .. } => {
                    seen.insert(*destination);
                    if let Asset::Iou(ic) = amount.asset {
                        ious.insert(ic);
                    }
                }
                TxPayload::OfferCreate { gets, pays } => {
                    for a in [gets, pays] {
                        if let Asset::Iou(ic) = a.asset {
                            ious.insert(ic);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut accounts: Vec<txstat_xrp::AccountId> = seen.into_iter().collect();
    accounts.sort();
    let metas = fetch_account_meta(&xrp_pool, &cfg, &accounts).await?;
    let mut cluster = ClusterInfo::new();
    for m in metas {
        cluster.insert(m.account, m.username, m.parent);
    }

    // Exchange rates for every observed token (Data API path), and the
    // exchange events of every BTC issuer (Figure 11b).
    let mut rates = Vec::new();
    let mut trades = Vec::new();
    let mut iou_list: Vec<IssuedCurrency> = ious.into_iter().collect();
    iou_list.sort();
    for ic in &iou_list {
        if let Some(rate) =
            fetch_exchange_rate(&xrp_pool, &cfg, ic.currency.as_str(), ic.issuer, sc.period.end)
                .await?
        {
            rates.push((*ic, rate));
        }
        if ic.currency.as_str() == "BTC" {
            trades.extend(fetch_exchanges(&xrp_pool, &cfg, "BTC", ic.issuer).await?);
        }
    }
    let oracle = RateOracle::from_rates(rates);

    let governance_periods = governance_periods_of(&tezos);
    let tezos_rolls: HashMap<Address, u64> = tezos
        .bakers()
        .iter()
        .map(|b| (b.address, b.staked_mutez / tezos.config.roll_size_mutez))
        .collect();

    Ok(PipelineData {
        scenario: sc.clone(),
        eos_blocks: eos_crawl.blocks,
        tezos_blocks: tezos_crawl.blocks,
        xrp_blocks: xrp_crawl.blocks,
        oracle,
        trades,
        cluster,
        eos_cpu_price: eos.cpu_price_history.clone(),
        eos_dropped_txs: eos.dropped_txs,
        tezos_rolls,
        governance_periods,
        crawl: Some(CrawlSummary {
            eos: eos_crawl.stats,
            tezos: tezos_crawl.stats,
            xrp: xrp_crawl.stats,
            eos_advertised: opts.eos_advertised,
            eos_shortlisted: opts.eos_shortlisted,
        }),
        sweeps: OnceLock::new(),
    })
}

/// Local storage accounting when no crawl ran: serialize every block to its
/// wire JSON and sample-compress (same methodology as the crawler's
/// Figure 2 accounting). Serialization and LZSS sampling are the heaviest
/// per-block work in the report, so the sweep is parallel; sampling is keyed
/// by block index, making the result independent of chunking.
pub fn local_storage_stats(data: &PipelineData) -> (CrawlStats, CrawlStats, CrawlStats) {
    fn stats_par<B: Sync>(
        blocks: &[B],
        wire: impl Fn(&B) -> Vec<u8> + Sync,
        txs: impl Fn(&B) -> u64 + Sync,
    ) -> CrawlStats {
        let indices: Vec<u64> = (0..blocks.len() as u64).collect();
        txstat_core::par_sweep(
            &indices,
            CrawlStats::default,
            |s, i| {
                let b = &blocks[*i as usize];
                s.record_payload(*i, &wire(b));
                s.blocks += 1;
                s.transactions += txs(b);
            },
            |a, b| a.merge(&b),
        )
    }
    let eos = stats_par(
        &data.eos_blocks,
        |b| serde_json::to_vec(&txstat_eos::rpc_model::block_to_json(b)).expect("serializable"),
        |b| b.transactions.len() as u64,
    );
    let tezos = stats_par(
        &data.tezos_blocks,
        |b| serde_json::to_vec(&txstat_tezos::rpc_model::block_to_json(b)).expect("serializable"),
        |b| b.operations.len() as u64,
    );
    let xrp = stats_par(
        &data.xrp_blocks,
        |b| serde_json::to_vec(&txstat_xrp::rpc_model::ledger_to_json(b)).expect("serializable"),
        |b| b.transactions.len() as u64,
    );
    (eos, tezos, xrp)
}
