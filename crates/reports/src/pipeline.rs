//! Pipeline orchestration: scenario → chains → (optional RPC crawl) →
//! the dataset every exhibit renders from.
//!
//! Three paths produce the same exhibits:
//! - [`generate`] reads the simulated chains directly (fast; used by tests
//!   and benches);
//! - [`generate_with_crawl`] serves the chains over loopback RPC endpoints,
//!   benchmarks and shortlists them, and runs the real crawler with the
//!   three chain crawls overlapped — the full §3.1 measurement path,
//!   materializing each chain before sweeping it (the equivalence
//!   baseline);
//! - [`generate_with_crawl_streamed`] runs the same crawl but pipes every
//!   block straight from the fetch workers into sharded sweep accumulators
//!   over bounded channels (`txstat_ingest`). No `Vec<Block>` is ever
//!   materialized on the measurement side: peak memory is
//!   O(accumulator × shards + channel capacity), and the report is ready
//!   the moment the crawl finishes.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};
use txstat_core::{
    ClusterInfo, EosColumnar, EosSweep, TezosColumnar, TezosSweep, XrpColumnar, XrpSweep,
};
use txstat_crawler::{
    benchmark_endpoints, crawl_eos, crawl_tezos, crawl_xrp, eos_head, fetch_account_meta,
    fetch_exchange_rate, fetch_exchanges, shortlist, tezos_head, xrp_head, Advertised,
    ClientConfig, CrawlError, CrawlStats, RotatingPool,
};
use txstat_ingest::crawl::ledger_ious;
use txstat_ingest::{
    spawn_sharded, EosCrawlSource, GaugeSnapshot, IngestOptions, IngestOutcome, RateCache,
    ReduceError, ReduceSession, ShardWorker, Sink, TezosCrawlSource, XrpCrawlSource,
};
use txstat_telemetry::{static_counter, Span};
use txstat_ingest::source::BlockSource;
use rayon::prelude::*;
use txstat_archive::{Archive, ArchiveWriter, SegmentCache};

/// Default decoded-segment cache budget for archived shard contexts
/// (`--segment-cache-mb`).
pub const DEFAULT_SEGMENT_CACHE_MB: u64 = 64;
use txstat_wire::{PayloadFormat, ShardFrame};
use txstat_netsim::handlers::{EosRpcHandler, TezosRpcHandler, XrpRpcHandler};
use txstat_netsim::server::{spawn_http, spawn_ndjson, EndpointHandle};
use txstat_netsim::EndpointProfile;
use txstat_netsim::http::HttpRequest;
use txstat_tezos::address::Address;
use txstat_tezos::governance::PeriodKind;
use txstat_types::time::{ChainTime, Period};
use txstat_workload::{eos::build_eos, tezos::build_tezos, xrp::build_xrp, Scenario};
use txstat_xrp::amount::{Asset, IssuedCurrency};
use txstat_xrp::rates::{RateOracle, TradeRecord};
use txstat_xrp::tx::TxPayload;

/// Everything the exhibits need.
///
/// The heavy inputs (block vectors, oracle, cluster, …) sit behind `Arc`
/// so the serve path can fork one cheap dataset per epoch
/// ([`PipelineData::fork_with_sweeps`]): every fork shares the same chain
/// data and differs only in its installed sweeps. Deref coercion keeps the
/// field access sites (`&data.eos_blocks` as `&[Block]`, `&data.oracle` as
/// `&RateOracle`, …) unchanged.
pub struct PipelineData {
    pub scenario: Scenario,
    /// Materialized chains. Empty on the streamed path, which records
    /// [`StreamSummary`] instead; exhibits go through the accessor methods
    /// ([`PipelineData::eos_bounds`] etc.) rather than the vectors.
    pub eos_blocks: Arc<Vec<txstat_eos::Block>>,
    pub tezos_blocks: Arc<Vec<txstat_tezos::TezosBlock>>,
    pub xrp_blocks: Arc<Vec<txstat_xrp::LedgerBlock>>,
    /// Exchange-rate oracle over the window (Data API substitute).
    pub oracle: Arc<RateOracle>,
    /// Individual IOU↔XRP exchange events (Figure 11b).
    pub trades: Arc<Vec<TradeRecord>>,
    pub cluster: Arc<ClusterInfo>,
    /// (block number, CPU price index) per EOS block (§4.1).
    pub eos_cpu_price: Arc<Vec<(u64, f64)>>,
    /// EOS transactions rejected during production (congestion drops).
    pub eos_dropped_txs: u64,
    pub tezos_rolls: Arc<HashMap<Address, u64>>,
    /// The governance period windows of the Tezos chain, in order.
    pub governance_periods: Vec<(PeriodKind, Period)>,
    /// Crawl accounting when the RPC path was used.
    pub crawl: Option<Arc<CrawlSummary>>,
    /// Streaming-ingestion accounting when the streamed path was used.
    pub stream: Option<StreamSummary>,
    /// Lazily-computed fused accumulators (one parallel sweep per chain);
    /// every exhibit renders from these instead of re-scanning the blocks.
    /// The streamed path pre-fills them from the shard reducer.
    sweeps: OnceLock<ChainSweeps>,
    /// Memoized Figure 2 storage accounting (serialize + LZSS-sample every
    /// block — by far the most expensive render, ~30× any other figure).
    /// Shared across every fork of this dataset, so serve pays it at most
    /// once per process, never per request or per epoch swap.
    storage_memo: Arc<OnceLock<(CrawlStats, CrawlStats, CrawlStats)>>,
}

/// First/last block `(number, time)` of one chain's observed range.
pub type ChainBounds = (Option<(u64, ChainTime)>, Option<(u64, ChainTime)>);

pub use txstat_core::ChainSweeps;

impl PipelineData {
    /// The fused analytics state: computed on first use with one columnar
    /// rayon map-reduce sweep per chain (interned ids, batched
    /// classification, remap merges — see `txstat_core::columnar`), then
    /// shared by every exhibit. The columnar engine finalizes into the
    /// scalar sweep structs, so every downstream accessor is unchanged and
    /// the report is bit-identical to a scalar fold. On the streamed path
    /// the shard reducer has already filled this.
    pub fn sweeps(&self) -> &ChainSweeps {
        self.sweeps.get_or_init(|| {
            let period = self.scenario.period;
            ChainSweeps {
                eos: {
                    let _span = Span::enter("sweep", "eos");
                    EosColumnar::compute(&self.eos_blocks, period)
                },
                tezos: {
                    let _span = Span::enter("sweep", "tezos");
                    TezosColumnar::compute(&self.tezos_blocks, period, &self.governance_periods)
                },
                xrp: {
                    let _span = Span::enter("sweep", "xrp");
                    XrpColumnar::compute(&self.xrp_blocks, period, &self.oracle)
                },
            }
        })
    }

    /// Install externally-reduced sweeps (e.g. from a distributed
    /// `txstat_ingest::ReduceSession`) as this dataset's analytics state.
    /// Returns false if the sweeps were already computed.
    pub fn install_sweeps(&self, sweeps: ChainSweeps) -> bool {
        self.sweeps.set(sweeps).is_ok()
    }

    /// Pin the scalar (non-columnar) sweeps as this dataset's analytics
    /// state. The equivalence suites use this to render the full report
    /// through the scalar engine and compare it bit-for-bit against the
    /// columnar default. Returns false if the sweeps were already computed.
    pub fn force_scalar_sweeps(&self) -> bool {
        let period = self.scenario.period;
        self.sweeps
            .set(ChainSweeps {
                eos: EosSweep::compute(&self.eos_blocks, period),
                tezos: TezosSweep::compute(&self.tezos_blocks, period, &self.governance_periods),
                xrp: XrpSweep::compute(&self.xrp_blocks, period, &self.oracle),
            })
            .is_ok()
    }

    /// First/last EOS block `(number, time)` — from the materialized chain
    /// or the stream bounds.
    pub fn eos_bounds(&self) -> ChainBounds {
        if let Some(s) = &self.stream {
            return (s.eos.first, s.eos.last);
        }
        (
            self.eos_blocks.first().map(|b| (b.num, b.time)),
            self.eos_blocks.last().map(|b| (b.num, b.time)),
        )
    }

    /// First/last Tezos block `(level, time)`.
    pub fn tezos_bounds(&self) -> ChainBounds {
        if let Some(s) = &self.stream {
            return (s.tezos.first, s.tezos.last);
        }
        (
            self.tezos_blocks.first().map(|b| (b.level, b.time)),
            self.tezos_blocks.last().map(|b| (b.level, b.time)),
        )
    }

    /// First/last XRP ledger `(index, close time)`.
    pub fn xrp_bounds(&self) -> ChainBounds {
        if let Some(s) = &self.stream {
            return (s.xrp.first, s.xrp.last);
        }
        (
            self.xrp_blocks.first().map(|b| (b.index, b.close_time)),
            self.xrp_blocks.last().map(|b| (b.index, b.close_time)),
        )
    }

    /// Peak EOS CPU price index before/after the EIDOS launch (§4.1).
    pub fn eos_cpu_peaks(&self) -> (f64, f64) {
        if let Some(s) = &self.stream {
            return s.eos_cpu_peaks;
        }
        cpu_peaks_around_launch(
            self.eos_cpu_price.iter().zip(self.eos_blocks.iter()).map(|((_, p), b)| (b.time, *p)),
        )
    }

    /// The Figure 2 storage accounting, computed once per dataset *family*:
    /// forks share the memo, so an epoch swap never re-pays the
    /// serialize + LZSS sweep.
    pub fn storage_stats(&self) -> &(CrawlStats, CrawlStats, CrawlStats) {
        self.storage_memo.get_or_init(|| compute_storage_stats(self))
    }

    /// Fork this dataset with a different set of installed sweeps: all
    /// heavy inputs (blocks, oracle, cluster, CPU-price history, …) are
    /// shared by `Arc`, the Figure 2 storage memo is shared too, and only
    /// the analytics state differs. This is what lets the serve path
    /// publish one immutable snapshot per follow batch without re-deriving
    /// or copying the chains.
    pub fn fork_with_sweeps(&self, sweeps: ChainSweeps) -> PipelineData {
        let fork = PipelineData {
            scenario: self.scenario.clone(),
            eos_blocks: self.eos_blocks.clone(),
            tezos_blocks: self.tezos_blocks.clone(),
            xrp_blocks: self.xrp_blocks.clone(),
            oracle: self.oracle.clone(),
            trades: self.trades.clone(),
            cluster: self.cluster.clone(),
            eos_cpu_price: self.eos_cpu_price.clone(),
            eos_dropped_txs: self.eos_dropped_txs,
            tezos_rolls: self.tezos_rolls.clone(),
            governance_periods: self.governance_periods.clone(),
            crawl: self.crawl.clone(),
            stream: self.stream.clone(),
            sweeps: OnceLock::new(),
            storage_memo: self.storage_memo.clone(),
        };
        let installed = fork.sweeps.set(sweeps).is_ok();
        debug_assert!(installed, "fresh fork cannot have sweeps yet");
        fork
    }
}

/// Per-chain crawl accounting for Figure 2.
#[derive(Debug)]
pub struct CrawlSummary {
    pub eos: CrawlStats,
    pub tezos: CrawlStats,
    pub xrp: CrawlStats,
    pub eos_advertised: usize,
    pub eos_shortlisted: usize,
}

/// Streaming accounting for one chain: the block-range bounds the shards
/// observed plus the backpressure gauges of the shard channels.
#[derive(Debug, Clone)]
pub struct ChainStreamInfo {
    pub first: Option<(u64, ChainTime)>,
    pub last: Option<(u64, ChainTime)>,
    pub shards: usize,
    pub channel_capacity: usize,
    /// Blocks folded across all shards.
    pub streamed_blocks: u64,
    /// Peak blocks buffered in any one shard channel (≤ capacity — the
    /// memory bound that replaces the materialized `Vec<Block>`).
    pub peak_buffered: u64,
    /// Producer sends that parked on a full channel (backpressure hits).
    pub blocked_sends: u64,
    /// Per-shard channel gauges in shard order — previously dropped at the
    /// end of the streamed crawl, now carried so `/statusz` and the
    /// registry can show per-shard backpressure.
    pub gauges: Vec<GaugeSnapshot>,
}

/// What the streamed path records instead of block vectors.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    pub eos: ChainStreamInfo,
    pub tezos: ChainStreamInfo,
    pub xrp: ChainStreamInfo,
    /// Peak CPU price index (before, after) the EIDOS launch, computed on
    /// the serving side where the simulated chain lives anyway.
    pub eos_cpu_peaks: (f64, f64),
}

fn governance_periods_of(chain: &txstat_tezos::TezosChain) -> Vec<(PeriodKind, Period)> {
    let p = chain.config.governance.period_blocks as i64 * chain.config.block_interval_secs;
    let mut out = Vec::new();
    let mut start = chain.config.genesis_time;
    for result in &chain.governance.history {
        let window = Period::new(start, start + p);
        out.push((result.kind, window));
        start = window.end;
    }
    out
}

fn cluster_from_ledger(ledger: &txstat_xrp::XrpLedger) -> ClusterInfo {
    let usernames: HashMap<_, _> = txstat_workload::xrp::known_usernames().into_iter().collect();
    let mut cluster = ClusterInfo::new();
    for (id, root) in ledger.accounts() {
        let username = usernames.get(id).map(|s| (*s).to_owned());
        cluster.insert(*id, username, root.activated_by);
    }
    cluster
}

/// Count every from-scratch chain build (all three chains generated).
/// Workers cold-starting from an archive must leave this at zero — the
/// fleet smoke pins that through `--metrics-out`.
fn count_generation() {
    static_counter!(
        GEN,
        "txstat_pipeline_generate_total",
        "Full chain-generation passes (all three chains built from scratch)"
    )
    .inc();
}

/// Register the pipeline's metric families at zero, so a process that
/// never generates (an archive cold-start) still exposes them.
pub fn register_metrics() {
    txstat_telemetry::registry()
        .counter_with(
            "txstat_pipeline_generate_total",
            "Full chain-generation passes (all three chains built from scratch)",
            &[],
        )
        .add(0);
}

/// Direct path: generate the three chains and read them in-process.
pub fn generate(sc: &Scenario) -> PipelineData {
    count_generation();
    let eos = build_eos(sc);
    let tezos = build_tezos(sc);
    let xrp = build_xrp(sc);

    let oracle = RateOracle::from_trades(&xrp.trades, sc.period.end, sc.period.days() as i64 + 1);
    let cluster = cluster_from_ledger(&xrp);
    let governance_periods = governance_periods_of(&tezos);
    let tezos_rolls: HashMap<Address, u64> = tezos
        .bakers()
        .iter()
        .map(|b| (b.address, b.staked_mutez / tezos.config.roll_size_mutez))
        .collect();

    PipelineData {
        scenario: sc.clone(),
        eos_blocks: Arc::new(eos.blocks().to_vec()),
        tezos_blocks: Arc::new(tezos.blocks().to_vec()),
        xrp_blocks: Arc::new(xrp.closed_ledgers().to_vec()),
        oracle: Arc::new(oracle),
        trades: Arc::new(xrp.trades.clone()),
        cluster: Arc::new(cluster),
        eos_cpu_price: Arc::new(eos.cpu_price_history.clone()),
        eos_dropped_txs: eos.dropped_txs,
        tezos_rolls: Arc::new(tezos_rolls),
        governance_periods,
        crawl: None,
        stream: None,
        sweeps: OnceLock::new(),
        storage_memo: Arc::new(OnceLock::new()),
    }
}

/// Accounting returned by [`write_archive`].
#[derive(Debug, Clone, Copy)]
pub struct ArchiveStats {
    pub segments: usize,
    pub total_positions: u64,
    pub raw_bytes: u64,
    pub compressed_bytes: u64,
}

/// The dataset's non-chain state in the archive sidecar's deterministic
/// export order (maps sorted by key, so two writes of the same dataset
/// are byte-identical).
fn sidecar_from_data(data: &PipelineData) -> crate::Sidecar {
    let mut tezos_rolls: Vec<(Address, u64)> =
        data.tezos_rolls.iter().map(|(a, r)| (*a, *r)).collect();
    tezos_rolls.sort_unstable_by_key(|(a, _)| (a.kind as u8, a.id));
    crate::Sidecar {
        trades: data.trades.as_ref().clone(),
        usernames: data
            .cluster
            .usernames_sorted()
            .into_iter()
            .map(|(a, u)| (a, u.to_owned()))
            .collect(),
        parents: data.cluster.parents_sorted(),
        eos_cpu_price: data.eos_cpu_price.as_ref().clone(),
        eos_dropped_txs: data.eos_dropped_txs,
        tezos_rolls,
        governance_periods: data.governance_periods.clone(),
    }
}

/// Create an empty archive for `data`'s scenario at `dir` — manifest and
/// sidecar sealed, no segments yet. The follow loop uses this to seal one
/// segment per observed batch; [`write_archive`] appends every segment in
/// one go.
pub fn create_archive_writer(
    dir: &std::path::Path,
    data: &PipelineData,
    mode: &str,
    segment_blocks: u64,
) -> Result<ArchiveWriter, String> {
    if segment_blocks == 0 {
        return Err("--segment-blocks must be at least 1".into());
    }
    let manifest = crate::Manifest {
        meta: scenario_meta(&data.scenario, mode),
        segment_blocks,
        lens: [
            data.eos_blocks.len() as u64,
            data.tezos_blocks.len() as u64,
            data.xrp_blocks.len() as u64,
        ],
    };
    let sidecar = sidecar_from_data(data);
    ArchiveWriter::create(dir, &manifest.to_string(), &sidecar.encode())
        .map_err(|e| format!("archive {}: {e}", dir.display()))
}

/// Seal a dataset into an on-disk archive at `dir`: the three chains cut
/// into LZSS-compressed segments of `segment_blocks` positions each —
/// in the given payload schema ([`crate::SegmentFormat::V2`] columnar by
/// default at the CLI) — plus a manifest (scenario provenance) and
/// sidecar (oracle trades, cluster, rolls, governance windows). A later
/// process cold-starts from the directory with [`pipeline_from_archive`]
/// or [`ShardContext::from_archive`] without generating any chain.
pub fn write_archive(
    dir: &std::path::Path,
    data: &PipelineData,
    mode: &str,
    segment_blocks: u64,
    format: crate::SegmentFormat,
) -> Result<ArchiveStats, String> {
    let _span = Span::enter("archive_write", &dir.display().to_string());
    let err = |e: txstat_archive::ArchiveError| format!("archive {}: {e}", dir.display());
    let mut writer = create_archive_writer(dir, data, mode, segment_blocks)?;
    for seg in crate::archive_io::segments_of(
        &data.eos_blocks,
        &data.tezos_blocks,
        &data.xrp_blocks,
        segment_blocks,
        format,
    ) {
        writer.append(&seg).map_err(err)?;
    }
    writer.seal().map_err(err)?;
    let (raw, comp) = writer
        .segments()
        .iter()
        .fold((0u64, 0u64), |(r, c), s| (r + s.raw_len, c + s.comp_len));
    Ok(ArchiveStats {
        segments: writer.segments().len(),
        total_positions: writer.total_positions(),
        raw_bytes: raw,
        compressed_bytes: comp,
    })
}

/// Cold-start path: rebuild the full dataset from an archive directory —
/// replay every segment into the three chain vectors and rehydrate the
/// oracle/cluster/rolls from the sidecar. No chain generation runs
/// (`txstat_pipeline_generate_total` stays at zero); the result renders
/// byte-identically to [`generate`] on the archived scenario. Also
/// returns the opened [`Archive`] so callers can keep appending
/// (`follow`) or replaying ranges.
pub fn pipeline_from_archive(
    dir: &std::path::Path,
) -> Result<(PipelineData, Archive), String> {
    let archive = Archive::open(dir).map_err(|e| format!("archive {}: {e}", dir.display()))?;
    let manifest = crate::Manifest::parse(archive.manifest())?;
    let (sc, _mode) = scenario_from_meta(&manifest.meta)?;
    let sidecar = crate::Sidecar::decode(archive.sidecar())?;
    let segments = archive.replay_all().map_err(|e| format!("archive {}: {e}", dir.display()))?;
    let (eos_blocks, tezos_blocks, xrp_blocks) = crate::archive_io::chains_of(&segments)?;
    let lens = [eos_blocks.len() as u64, tezos_blocks.len() as u64, xrp_blocks.len() as u64];
    if lens != manifest.lens {
        return Err(format!(
            "archive {}: replayed chain lengths {:?} disagree with manifest {:?}",
            dir.display(),
            lens,
            manifest.lens
        ));
    }
    let oracle =
        RateOracle::from_trades(&sidecar.trades, sc.period.end, sc.period.days() as i64 + 1);
    let mut cluster = ClusterInfo::new();
    for (a, u) in &sidecar.usernames {
        cluster.insert(*a, Some(u.clone()), None);
    }
    for (a, p) in &sidecar.parents {
        cluster.insert(*a, None, Some(*p));
    }
    let data = PipelineData {
        scenario: sc,
        eos_blocks: Arc::new(eos_blocks),
        tezos_blocks: Arc::new(tezos_blocks),
        xrp_blocks: Arc::new(xrp_blocks),
        oracle: Arc::new(oracle),
        trades: Arc::new(sidecar.trades),
        cluster: Arc::new(cluster),
        eos_cpu_price: Arc::new(sidecar.eos_cpu_price),
        eos_dropped_txs: sidecar.eos_dropped_txs,
        tezos_rolls: Arc::new(sidecar.tezos_rolls.into_iter().collect()),
        governance_periods: sidecar.governance_periods,
        crawl: None,
        stream: None,
        sweeps: OnceLock::new(),
        storage_memo: Arc::new(OnceLock::new()),
    };
    Ok((data, archive))
}

/// Crawl-path tuning.
#[derive(Debug, Clone)]
pub struct CrawlOptions {
    /// Advertised EOS endpoints (the paper: 32) and how many to shortlist
    /// (the paper: 6).
    pub eos_advertised: usize,
    pub eos_shortlisted: usize,
    /// Worker concurrency per chain crawl.
    pub concurrency: usize,
    /// Streamed path: sweep shards per chain.
    pub shards: usize,
    /// Streamed path: bounded-channel capacity per shard (blocks).
    pub channel_capacity: usize,
}

impl Default for CrawlOptions {
    fn default() -> Self {
        CrawlOptions {
            eos_advertised: 8,
            eos_shortlisted: 3,
            concurrency: 8,
            shards: 4,
            channel_capacity: 64,
        }
    }
}

impl CrawlOptions {
    /// The paper's endpoint population: 32 advertised, 6 shortlisted.
    pub fn paper() -> Self {
        CrawlOptions { eos_advertised: 32, eos_shortlisted: 6, concurrency: 12, ..Self::default() }
    }

    /// Ingest tuning for one chain's shard pool, labeled so folds and
    /// fold spans attribute to that chain in the registry.
    fn ingest_for(&self, chain: &'static str) -> IngestOptions {
        IngestOptions { shards: self.shards, channel_capacity: self.channel_capacity, label: chain }
    }
}

/// The three simulated chains served over loopback RPC, with the EOS
/// population benchmarked and shortlisted (§3.1).
struct ServedChains {
    eos: Arc<txstat_eos::EosChain>,
    tezos: Arc<txstat_tezos::TezosChain>,
    xrp: Arc<txstat_xrp::XrpLedger>,
    eos_pool: Arc<RotatingPool>,
    tz_pool: Arc<RotatingPool>,
    xrp_pool: Arc<RotatingPool>,
    /// Handles keep the endpoint accept loops alive for the crawl's
    /// duration.
    _eos_handles: Vec<EndpointHandle>,
    _tz_handle: EndpointHandle,
    _xrp_handle: EndpointHandle,
}

/// Build the chains, spawn their endpoints, benchmark and shortlist.
async fn serve_scenario(sc: &Scenario, opts: &CrawlOptions) -> Result<ServedChains, CrawlError> {
    let eos = Arc::new(build_eos(sc));
    let tezos = Arc::new(build_tezos(sc));
    let xrp = Arc::new(build_xrp(sc));

    // --- EOS: a population of block-producer endpoints of mixed quality. --
    let eos_handler = Arc::new(EosRpcHandler::new(eos.clone()));
    let mut eos_handles: Vec<EndpointHandle> = Vec::new();
    for i in 0..opts.eos_advertised {
        // Roughly half the advertised endpoints are stingy (tight limits,
        // high latency), mirroring the paper's 6-of-32 yield.
        let profile = if i % 2 == 0 {
            EndpointProfile::generous(&format!("eos-bp-{i}"), sc.seed ^ (i as u64))
        } else {
            EndpointProfile::stingy(&format!("eos-bp-{i}"), sc.seed ^ (i as u64))
        };
        eos_handles.push(spawn_http(eos_handler.clone(), profile).await.map_err(CrawlError::Io)?);
    }
    let advertised: Vec<Advertised> = eos_handles
        .iter()
        .map(|h| Advertised { name: h.name.clone(), addr: h.addr })
        .collect();
    let reports = benchmark_endpoints(&advertised, 3, |addr| async move {
        let started = std::time::Instant::now();
        let mut conn = txstat_crawler::HttpConn::new(addr);
        match conn
            .call(
                &HttpRequest::post("/v1/chain/get_info", b"{}".to_vec()),
                std::time::Duration::from_millis(500),
            )
            .await
        {
            Ok(r) if r.is_ok() => Ok(started.elapsed()),
            _ => Err(()),
        }
    })
    .await;
    let eos_pool = Arc::new(RotatingPool::new(shortlist(&reports, opts.eos_shortlisted)));

    // --- Tezos: the self-hosted node (one endpoint). -----------------------
    let tezos_handler = Arc::new(TezosRpcHandler::new(tezos.clone()));
    let tz_handle = spawn_http(
        tezos_handler,
        EndpointProfile::generous("tezos-self-node", sc.seed ^ 0x7e20),
    )
    .await
    .map_err(CrawlError::Io)?;
    let tz_pool = Arc::new(RotatingPool::new(vec![Advertised {
        name: tz_handle.name.clone(),
        addr: tz_handle.addr,
    }]));

    // --- XRP: the community websocket-equivalent endpoint. -----------------
    let usernames: HashMap<_, _> = txstat_workload::xrp::known_usernames()
        .into_iter()
        .map(|(a, n)| (a, n.to_owned()))
        .collect();
    let xrp_handler = Arc::new(XrpRpcHandler::new(xrp.clone(), usernames));
    let xrp_handle = spawn_ndjson(
        xrp_handler,
        EndpointProfile::generous("xrp-full-history", sc.seed ^ 0x1277),
    )
    .await
    .map_err(CrawlError::Io)?;
    let xrp_pool = Arc::new(RotatingPool::new(vec![Advertised {
        name: xrp_handle.name.clone(),
        addr: xrp_handle.addr,
    }]));

    Ok(ServedChains {
        eos,
        tezos,
        xrp,
        eos_pool,
        tz_pool,
        xrp_pool,
        _eos_handles: eos_handles,
        _tz_handle: tz_handle,
        _xrp_handle: xrp_handle,
    })
}

fn join_err(e: tokio::task::JoinError) -> CrawlError {
    CrawlError::Protocol(format!("crawl task panicked: {e}"))
}

/// Fetch username/parent metadata for every seen account and fold it into
/// the entity clustering (XRP Scan path).
async fn fetch_cluster(
    pool: &Arc<RotatingPool>,
    cfg: &ClientConfig,
    mut accounts: Vec<txstat_xrp::AccountId>,
) -> Result<ClusterInfo, CrawlError> {
    accounts.sort();
    let metas = fetch_account_meta(pool, cfg, &accounts).await?;
    let mut cluster = ClusterInfo::new();
    for m in metas {
        cluster.insert(m.account, m.username, m.parent);
    }
    Ok(cluster)
}

/// Fetch the exchange events of every BTC issuer (Figure 11b's source).
/// `ious` must be sorted so the event order is deterministic.
async fn fetch_btc_trades(
    pool: &Arc<RotatingPool>,
    cfg: &ClientConfig,
    ious: &[IssuedCurrency],
) -> Result<Vec<TradeRecord>, CrawlError> {
    let mut trades = Vec::new();
    for ic in ious {
        if ic.currency.as_str() == "BTC" {
            trades.extend(fetch_exchanges(pool, cfg, "BTC", ic.issuer).await?);
        }
    }
    Ok(trades)
}

fn tezos_rolls_of(tezos: &txstat_tezos::TezosChain) -> HashMap<Address, u64> {
    tezos
        .bakers()
        .iter()
        .map(|b| (b.address, b.staked_mutez / tezos.config.roll_size_mutez))
        .collect()
}

/// Peak CPU price index (before, after) the EIDOS launch over a stream of
/// `(block time, price)` pairs.
fn cpu_peaks_around_launch(pairs: impl Iterator<Item = (ChainTime, f64)> + Clone) -> (f64, f64) {
    let launch = txstat_workload::eidos_launch();
    let peak = |after: bool| {
        pairs
            .clone()
            .filter(|(t, _)| (*t >= launch) == after)
            .map(|(_, p)| p)
            .fold(0.0f64, f64::max)
    };
    (peak(false), peak(true))
}

/// The launch peaks read off the simulated chain (the serving side holds
/// it regardless of crawl path).
fn eos_cpu_peaks_of(eos: &txstat_eos::EosChain) -> (f64, f64) {
    cpu_peaks_around_launch(
        eos.cpu_price_history.iter().zip(eos.blocks()).map(|((_, p), b)| (b.time, *p)),
    )
}

/// Full materializing path: serve the generated chains over loopback RPC,
/// shortlist endpoints, crawl everything — the three chain crawls overlap,
/// one task each, since the endpoints are independent — then fetch
/// rates/metadata and assemble the dataset.
pub async fn generate_with_crawl(
    sc: &Scenario,
    opts: &CrawlOptions,
) -> Result<PipelineData, CrawlError> {
    let served = serve_scenario(sc, opts).await?;
    let cfg = ClientConfig::default();

    // Overlap the three chain crawls: independent endpoints, one task each.
    let eos_task = {
        let pool = served.eos_pool.clone();
        let cfg = cfg.clone();
        let low = served.eos.config.start_block_num;
        let concurrency = opts.concurrency;
        tokio::spawn(async move {
            let _span = Span::enter("crawl", "eos");
            let head = eos_head(&pool, &cfg).await?;
            crawl_eos(pool, cfg, low, head, concurrency).await
        })
    };
    let tz_task = {
        let pool = served.tz_pool.clone();
        let cfg = cfg.clone();
        let low = served.tezos.config.start_level;
        let concurrency = opts.concurrency;
        tokio::spawn(async move {
            let _span = Span::enter("crawl", "tezos");
            let head = tezos_head(&pool, &cfg).await?;
            crawl_tezos(pool, cfg, low, head, concurrency).await
        })
    };
    let xrp_task = {
        let pool = served.xrp_pool.clone();
        let cfg = cfg.clone();
        let low = served.xrp.config.start_index;
        let concurrency = opts.concurrency;
        tokio::spawn(async move {
            let _span = Span::enter("crawl", "xrp");
            let head = xrp_head(&pool, &cfg).await?;
            crawl_xrp(pool, cfg, low, head, concurrency).await
        })
    };
    // Join all three before propagating any failure, so an error never
    // leaves the other chains' crawls running detached behind the caller.
    let eos_res = eos_task.await.map_err(join_err);
    let tz_res = tz_task.await.map_err(join_err);
    let xrp_res = xrp_task.await.map_err(join_err);
    let eos_crawl = eos_res??;
    let tezos_crawl = tz_res??;
    let xrp_crawl = xrp_res??;

    // Account metadata for every account seen (XRP Scan path).
    let mut seen: HashSet<txstat_xrp::AccountId> = HashSet::new();
    let mut ious: HashSet<IssuedCurrency> = HashSet::new();
    for b in &xrp_crawl.blocks {
        for tx in &b.transactions {
            seen.insert(tx.tx.account);
            match &tx.tx.payload {
                TxPayload::Payment { destination, amount, .. } => {
                    seen.insert(*destination);
                    if let Asset::Iou(ic) = amount.asset {
                        ious.insert(ic);
                    }
                }
                TxPayload::OfferCreate { gets, pays } => {
                    for a in [gets, pays] {
                        if let Asset::Iou(ic) = a.asset {
                            ious.insert(ic);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let cluster = fetch_cluster(&served.xrp_pool, &cfg, seen.into_iter().collect()).await?;

    // Exchange rates for every observed token (Data API path), and the
    // exchange events of every BTC issuer (Figure 11b).
    let mut rates = Vec::new();
    let mut iou_list: Vec<IssuedCurrency> = ious.into_iter().collect();
    iou_list.sort();
    for ic in &iou_list {
        if let Some(rate) =
            fetch_exchange_rate(&served.xrp_pool, &cfg, ic.currency.as_str(), ic.issuer, sc.period.end)
                .await?
        {
            rates.push((*ic, rate));
        }
    }
    let trades = fetch_btc_trades(&served.xrp_pool, &cfg, &iou_list).await?;
    let oracle = RateOracle::from_rates(rates);

    let governance_periods = governance_periods_of(&served.tezos);
    let tezos_rolls = tezos_rolls_of(&served.tezos);

    Ok(PipelineData {
        scenario: sc.clone(),
        eos_blocks: Arc::new(eos_crawl.blocks),
        tezos_blocks: Arc::new(tezos_crawl.blocks),
        xrp_blocks: Arc::new(xrp_crawl.blocks),
        oracle: Arc::new(oracle),
        trades: Arc::new(trades),
        cluster: Arc::new(cluster),
        eos_cpu_price: Arc::new(served.eos.cpu_price_history.clone()),
        eos_dropped_txs: served.eos.dropped_txs,
        tezos_rolls: Arc::new(tezos_rolls),
        governance_periods,
        crawl: Some(Arc::new(CrawlSummary {
            eos: eos_crawl.stats,
            tezos: tezos_crawl.stats,
            xrp: xrp_crawl.stats,
            eos_advertised: opts.eos_advertised,
            eos_shortlisted: opts.eos_shortlisted,
        })),
        stream: None,
        sweeps: OnceLock::new(),
        storage_memo: Arc::new(OnceLock::new()),
    })
}

// ---- Streamed ingestion -----------------------------------------------------

/// Min/max block bounds, mergeable across shards.
#[derive(Debug, Clone, Copy, Default)]
struct Bounds {
    first: Option<(u64, ChainTime)>,
    last: Option<(u64, ChainTime)>,
}

impl Bounds {
    fn record(&mut self, n: u64, t: ChainTime) {
        if self.first.map(|(f, _)| n < f).unwrap_or(true) {
            self.first = Some((n, t));
        }
        if self.last.map(|(l, _)| n > l).unwrap_or(true) {
            self.last = Some((n, t));
        }
    }

    fn merge(&mut self, other: Bounds) {
        if let Some((n, t)) = other.first {
            self.record(n, t);
        }
        if let Some((n, t)) = other.last {
            self.record(n, t);
        }
    }
}

/// Shard state for the chains whose sweeps need no side lookups: the fused
/// sweep plus stream bounds.
struct SweepShardAcc<S> {
    sweep: S,
    bounds: Bounds,
}

/// Fold the stream bounds across shards, build the chain's stream info,
/// and merge the shard sweeps in index order.
fn reduce_sweep_shards<S>(
    chain: &'static str,
    out: IngestOutcome<SweepShardAcc<S>>,
    opts: &CrawlOptions,
    mut merge: impl FnMut(&mut S, S),
) -> (S, ChainStreamInfo) {
    let _span = Span::enter("merge", chain);
    let bounds = out.shards.iter().fold(Bounds::default(), |mut b, s| {
        b.merge(s.bounds);
        b
    });
    let info = chain_stream_info(chain, bounds, &out, opts);
    let mut it = out.shards.into_iter();
    let mut sweep = it.next().expect("at least one shard").sweep;
    for other in it {
        merge(&mut sweep, other.sweep);
    }
    (sweep, info)
}

/// XRP shard state: sweep, bounds, the accounts seen (for the metadata
/// fetch), and a shard-local oracle grown from the crawl-time rate cache.
struct XrpShardAcc {
    sweep: XrpColumnar,
    bounds: Bounds,
    seen: HashSet<txstat_xrp::AccountId>,
    oracle: RateOracle,
    known: HashSet<IssuedCurrency>,
}

impl XrpShardAcc {
    fn observe(&mut self, b: &txstat_xrp::LedgerBlock, rates: &RateCache) {
        self.bounds.record(b.index, b.close_time);
        // Sync any token this ledger references from the shared cache into
        // the shard-local oracle. The crawl source resolved them before
        // emitting the ledger, so the lookup cannot miss.
        for ic in ledger_ious(b) {
            if self.known.insert(ic) {
                if let Some(Some(rate)) = rates.lookup(ic) {
                    self.oracle.insert(ic, rate);
                }
            }
        }
        for tx in &b.transactions {
            self.seen.insert(tx.tx.account);
            if let TxPayload::Payment { destination, .. } = &tx.tx.payload {
                self.seen.insert(*destination);
            }
        }
        self.sweep.observe(b, &self.oracle);
    }

    fn merge(&mut self, other: XrpShardAcc) {
        self.sweep.merge(other.sweep);
        self.bounds.merge(other.bounds);
        self.seen.extend(other.seen);
        for (ic, rate) in other.oracle.currencies() {
            self.oracle.insert(*ic, *rate);
        }
    }
}

fn chain_stream_info<A>(
    chain: &'static str,
    bounds: Bounds,
    outcome: &IngestOutcome<A>,
    opts: &CrawlOptions,
) -> ChainStreamInfo {
    // Export each shard channel's end-of-stream gauges to the registry so
    // backpressure is visible on `/metrics` even after the pool is gone.
    let registry = txstat_telemetry::registry();
    for (shard, g) in outcome.gauges.iter().enumerate() {
        let shard = shard.to_string();
        registry
            .gauge_with(
                "txstat_ingest_channel_high_water",
                "Peak blocks buffered in one shard channel",
                &[("chain", chain), ("shard", &shard)],
            )
            .set(g.high_water);
        registry
            .gauge_with(
                "txstat_ingest_channel_blocked_sends",
                "Producer sends that parked on a full shard channel",
                &[("chain", chain), ("shard", &shard)],
            )
            .set(g.blocked_sends);
    }
    ChainStreamInfo {
        first: bounds.first,
        last: bounds.last,
        shards: outcome.shards.len(),
        channel_capacity: opts.channel_capacity,
        streamed_blocks: outcome.total_observed(),
        peak_buffered: outcome.peak_buffered(),
        blocked_sends: outcome.gauges.iter().map(|g| g.blocked_sends).sum(),
        gauges: outcome.gauges.clone(),
    }
}

/// Streamed path: the same serve → benchmark → shortlist → crawl pipeline,
/// but every fetched block flows straight into sharded sweep accumulators
/// through bounded channels. The crawl-side and sweep-side overlap per
/// chain *and* the three chains overlap with each other; no measurement
/// copy of any chain is ever materialized.
pub async fn generate_with_crawl_streamed(
    sc: &Scenario,
    opts: &CrawlOptions,
) -> Result<PipelineData, CrawlError> {
    let served = serve_scenario(sc, opts).await?;
    let cfg = ClientConfig::default();
    let period = sc.period;
    let rates = Arc::new(RateCache::new(period.end));

    // EOS: sharded columnar sweep pool + streaming crawl source. Shard
    // workers intern and batch each block as it arrives; the reducer merges
    // the per-shard interned states and finalizes once.
    let (eos_sink, eos_pool): (Sink<txstat_eos::Block>, _) = spawn_sharded(
        opts.ingest_for("eos"),
        move || SweepShardAcc { sweep: EosColumnar::new(period), bounds: Bounds::default() },
        |acc: &mut SweepShardAcc<EosColumnar>, n, b: &txstat_eos::Block| {
            acc.bounds.record(n, b.time);
            acc.sweep.observe(b);
        },
    );
    let eos_task = {
        let pool = served.eos_pool.clone();
        let cfg = cfg.clone();
        let low = served.eos.config.start_block_num;
        let concurrency = opts.concurrency;
        tokio::spawn(async move {
            let _span = Span::enter("crawl", "eos");
            let head = eos_head(&pool, &cfg).await?;
            let src = EosCrawlSource { pool, cfg, low, high: head, concurrency };
            src.produce(eos_sink).await.map_err(CrawlError::from)
        })
    };

    // Tezos.
    let governance_periods = governance_periods_of(&served.tezos);
    let tz_periods = governance_periods.clone();
    let (tz_sink, tz_pool): (Sink<txstat_tezos::TezosBlock>, _) = spawn_sharded(
        opts.ingest_for("tezos"),
        move || SweepShardAcc {
            sweep: TezosColumnar::new(period, tz_periods.clone()),
            bounds: Bounds::default(),
        },
        |acc: &mut SweepShardAcc<TezosColumnar>, n, b: &txstat_tezos::TezosBlock| {
            acc.bounds.record(n, b.time);
            acc.sweep.observe(b);
        },
    );
    let tz_task = {
        let pool = served.tz_pool.clone();
        let cfg = cfg.clone();
        let low = served.tezos.config.start_level;
        let concurrency = opts.concurrency;
        tokio::spawn(async move {
            let _span = Span::enter("crawl", "tezos");
            let head = tezos_head(&pool, &cfg).await?;
            let src = TezosCrawlSource { pool, cfg, low, high: head, concurrency };
            src.produce(tz_sink).await.map_err(CrawlError::from)
        })
    };

    // XRP: the crawl source resolves exchange rates as tokens appear; the
    // shard accumulators value payments through a local oracle synced from
    // that cache.
    let rates_for_obs = rates.clone();
    let (xrp_sink, xrp_shard_pool): (Sink<txstat_xrp::LedgerBlock>, _) = spawn_sharded(
        opts.ingest_for("xrp"),
        move || XrpShardAcc {
            sweep: XrpColumnar::new(period),
            bounds: Bounds::default(),
            seen: HashSet::new(),
            oracle: RateOracle::default(),
            known: HashSet::new(),
        },
        move |acc: &mut XrpShardAcc, _n, b: &txstat_xrp::LedgerBlock| {
            acc.observe(b, &rates_for_obs);
        },
    );
    let xrp_task = {
        let pool = served.xrp_pool.clone();
        let cfg = cfg.clone();
        let low = served.xrp.config.start_index;
        let concurrency = opts.concurrency;
        let rates = rates.clone();
        tokio::spawn(async move {
            let _span = Span::enter("crawl", "xrp");
            let head = xrp_head(&pool, &cfg).await?;
            let src = XrpCrawlSource { pool, cfg, low, high: head, concurrency, rates };
            src.produce(xrp_sink).await.map_err(CrawlError::from)
        })
    };

    // The crawls (and their folds) run concurrently. Join every producer
    // before propagating any failure — a failed producer has already
    // dropped its sink, so the shard workers below drain and exit either
    // way, and no crawl keeps running detached behind an early Err.
    let eos_res = eos_task.await.map_err(join_err);
    let tz_res = tz_task.await.map_err(join_err);
    let xrp_res = xrp_task.await.map_err(join_err);
    let eos_out = eos_pool.finish().await;
    let tz_out = tz_pool.finish().await;
    let xrp_out = xrp_shard_pool.finish().await;
    let eos_stats = eos_res??;
    let tz_stats = tz_res??;
    let xrp_stats = xrp_res??;

    // Reduce: merge the per-shard columnar states in index order, then
    // resolve interned ids once (finalize) into the scalar sweeps the
    // exhibits render from.
    let (eos_col, eos_info) = reduce_sweep_shards("eos", eos_out, opts, EosColumnar::merge);
    let eos_sweep = eos_col.finalize();
    let (tz_col, tz_info) = reduce_sweep_shards("tezos", tz_out, opts, TezosColumnar::merge);
    let tz_sweep = tz_col.finalize();
    let (xrp_sweep, seen_accounts, xrp_info) = {
        let _span = Span::enter("merge", "xrp");
        let bounds = xrp_out.shards.iter().fold(Bounds::default(), |mut b, s| {
            b.merge(s.bounds);
            b
        });
        let info = chain_stream_info("xrp", bounds, &xrp_out, opts);
        let merged = xrp_out.merged(XrpShardAcc::merge);
        (merged.sweep.finalize(), merged.seen, info)
    };

    // Post-crawl sidecar fetches: metadata for seen accounts, BTC exchange
    // events. Rates were already resolved during the crawl.
    let cluster = fetch_cluster(&served.xrp_pool, &cfg, seen_accounts.into_iter().collect()).await?;
    let trades = fetch_btc_trades(&served.xrp_pool, &cfg, &rates.currencies()).await?;
    let oracle = rates.oracle();

    let tezos_rolls = tezos_rolls_of(&served.tezos);
    let sweeps = OnceLock::new();
    let _ = sweeps.set(ChainSweeps { eos: eos_sweep, tezos: tz_sweep, xrp: xrp_sweep });

    Ok(PipelineData {
        scenario: sc.clone(),
        eos_blocks: Arc::new(Vec::new()),
        tezos_blocks: Arc::new(Vec::new()),
        xrp_blocks: Arc::new(Vec::new()),
        oracle: Arc::new(oracle),
        trades: Arc::new(trades),
        cluster: Arc::new(cluster),
        eos_cpu_price: Arc::new(served.eos.cpu_price_history.clone()),
        eos_dropped_txs: served.eos.dropped_txs,
        tezos_rolls: Arc::new(tezos_rolls),
        governance_periods,
        crawl: Some(Arc::new(CrawlSummary {
            eos: eos_stats,
            tezos: tz_stats,
            xrp: xrp_stats,
            eos_advertised: opts.eos_advertised,
            eos_shortlisted: opts.eos_shortlisted,
        })),
        stream: Some(StreamSummary {
            eos: eos_info,
            tezos: tz_info,
            xrp: xrp_info,
            eos_cpu_peaks: eos_cpu_peaks_of(&served.eos),
        }),
        sweeps,
        storage_memo: Arc::new(OnceLock::new()),
    })
}

/// Local storage accounting when no crawl ran, memoized per dataset family
/// — see [`PipelineData::storage_stats`].
pub fn local_storage_stats(data: &PipelineData) -> (CrawlStats, CrawlStats, CrawlStats) {
    data.storage_stats().clone()
}

/// The raw Figure 2 storage sweep: serialize every block to its
/// wire JSON and sample-compress (same methodology as the crawler's
/// Figure 2 accounting). Serialization and LZSS sampling are the heaviest
/// per-block work in the report, so the sweep is parallel; sampling is keyed
/// by block index, making the result independent of chunking.
fn compute_storage_stats(data: &PipelineData) -> (CrawlStats, CrawlStats, CrawlStats) {
    fn stats_par<B: Sync>(
        blocks: &[B],
        wire: impl Fn(&B) -> Vec<u8> + Sync,
        txs: impl Fn(&B) -> u64 + Sync,
    ) -> CrawlStats {
        let indices: Vec<u64> = (0..blocks.len() as u64).collect();
        txstat_core::par_sweep(
            &indices,
            CrawlStats::default,
            |s, i| {
                let b = &blocks[*i as usize];
                s.record_payload(*i, &wire(b));
                s.blocks += 1;
                s.transactions += txs(b);
            },
            |a, b| a.merge(&b),
        )
    }
    let eos = stats_par(
        &data.eos_blocks,
        txstat_eos::rpc_model::block_bytes,
        |b| b.transactions.len() as u64,
    );
    let tezos = stats_par(
        &data.tezos_blocks,
        txstat_tezos::rpc_model::block_bytes,
        |b| b.operations.len() as u64,
    );
    let xrp = stats_par(
        &data.xrp_blocks,
        txstat_xrp::rpc_model::ledger_bytes,
        |b| b.transactions.len() as u64,
    );
    (eos, tezos, xrp)
}

// ---- Distributed reduction (shard workers → wire frames → reduce) ----------

/// The provenance stamped into every frame of a scenario's shard sweep:
/// enough to rebuild the scenario in the reducer (`mode` + `seed`) and
/// enough to refuse frames from a different one (the window and divisors
/// pin customized scenarios apart).
pub fn scenario_meta(sc: &Scenario, mode: &str) -> serde_json::Value {
    serde_json::json!({
        "mode": mode,
        "seed": sc.seed,
        "window": [sc.period.start.0, sc.period.end.0],
        "divisors": [sc.eos_divisor, sc.tezos_divisor, sc.xrp_divisor],
    })
}

/// Rebuild the scenario a frame's meta describes ([`scenario_meta`]'s
/// inverse for the preset modes).
pub fn scenario_from_meta(meta: &serde_json::Value) -> Result<(Scenario, String), String> {
    let mode = meta
        .get("mode")
        .and_then(serde_json::Value::as_str)
        .ok_or("frame meta carries no scenario mode")?
        .to_owned();
    let seed = meta
        .get("seed")
        .and_then(serde_json::Value::as_u64)
        .ok_or("frame meta carries no seed")?;
    let sc = match mode.as_str() {
        "small" => Scenario::small(seed),
        "paper" => Scenario::paper(seed),
        other => return Err(format!("unknown scenario mode {other:?} in frame meta")),
    };
    // The window and divisors in the meta must match what the preset
    // rebuilds — frames swept from a customized scenario must not reduce
    // against the preset one's chains.
    if scenario_meta(&sc, &mode) != *meta {
        return Err(format!(
            "frame meta does not describe the {mode:?} preset at seed {seed} \
             (customized scenario?): {meta:?}"
        ));
    }
    Ok((sc, mode))
}

/// Where a [`ShardContext`] gets its blocks: whole generated chains held
/// in memory, or an opened archive whose segments are decoded lazily —
/// per assignment, only the covering ranges.
enum ShardSource {
    Generated {
        eos: Vec<txstat_eos::Block>,
        tezos: Vec<txstat_tezos::TezosBlock>,
        xrp: Vec<txstat_xrp::LedgerBlock>,
    },
    Archived {
        archive: Archive,
        total: u64,
        /// Decoded+parsed segments keyed by content hash — re-assignments
        /// overlapping the same segments skip decompress/decode/parse.
        cache: SegmentCache<crate::archive_io::ReplayedChains>,
    },
}

/// A shard worker's prepared state: the scenario's chains (or archive),
/// oracle, and governance windows, built once and reused across every
/// assignment. A one-shot `reproduce shard A..B` pays the build once
/// anyway; a socket worker (`reproduce shard --listen`) serving a whole
/// fleet reduction would otherwise rebuild the chains per request — and
/// with `--archive` it never builds them at all: each assignment decodes
/// only the segments covering its range.
pub struct ShardContext {
    sc: Scenario,
    source: ShardSource,
    oracle: RateOracle,
    governance_periods: Vec<(PeriodKind, Period)>,
}

impl ShardContext {
    /// Build the chains once. Pure and deterministic — every worker
    /// derives identical chains and the same exchange-rate oracle from
    /// the scenario seed.
    pub fn new(sc: &Scenario) -> Self {
        count_generation();
        let eos = build_eos(sc);
        let tezos = build_tezos(sc);
        let xrp = build_xrp(sc);
        let oracle =
            RateOracle::from_trades(&xrp.trades, sc.period.end, sc.period.days() as i64 + 1);
        let governance_periods = governance_periods_of(&tezos);
        ShardContext {
            sc: sc.clone(),
            source: ShardSource::Generated {
                eos: eos.blocks().to_vec(),
                tezos: tezos.blocks().to_vec(),
                xrp: xrp.closed_ledgers().to_vec(),
            },
            oracle,
            governance_periods,
        }
    }

    /// Cold-start from an archived corpus: open + verify the archive,
    /// decode the sidecar (oracle trades, governance windows), and keep
    /// the compressed segments mapped. No chain is generated and no block
    /// is decoded yet — [`ShardContext::frames`] replays only the
    /// segments covering each assignment. Also returns the parsed
    /// manifest so callers can validate it against their own flags.
    /// Decoded segments cache at the [`DEFAULT_SEGMENT_CACHE_MB`] budget;
    /// use [`ShardContext::from_archive_with`] to size it.
    pub fn from_archive(dir: &std::path::Path) -> Result<(Self, crate::Manifest), String> {
        Self::from_archive_with(dir, DEFAULT_SEGMENT_CACHE_MB)
    }

    /// [`ShardContext::from_archive`] with an explicit decoded-segment
    /// cache budget (`--segment-cache-mb`; at 0 only the newest decoded
    /// segment stays resident). Cache entries are keyed by segment
    /// *content hash*, so a reorg that rewrites a sealed segment can
    /// never serve the stale decode.
    pub fn from_archive_with(
        dir: &std::path::Path,
        cache_mb: u64,
    ) -> Result<(Self, crate::Manifest), String> {
        let archive =
            Archive::open(dir).map_err(|e| format!("archive {}: {e}", dir.display()))?;
        let manifest = crate::Manifest::parse(archive.manifest())?;
        let (sc, _mode) = scenario_from_meta(&manifest.meta)?;
        let sidecar = crate::Sidecar::decode(archive.sidecar())?;
        let oracle =
            RateOracle::from_trades(&sidecar.trades, sc.period.end, sc.period.days() as i64 + 1);
        let total = manifest.total_positions();
        let ctx = ShardContext {
            sc,
            source: ShardSource::Archived {
                archive,
                total,
                cache: SegmentCache::new(cache_mb.saturating_mul(1024 * 1024)),
            },
            oracle,
            governance_periods: sidecar.governance_periods,
        };
        Ok((ctx, manifest))
    }

    /// The longest chain's block count — the position space a fleet
    /// reduction tiles into chunks.
    pub fn total_blocks(&self) -> u64 {
        match &self.source {
            ShardSource::Generated { eos, tezos, xrp } => {
                eos.len().max(tezos.len()).max(xrp.len()) as u64
            }
            ShardSource::Archived { total, .. } => *total,
        }
    }

    /// Sweep the block-position range `[start, end)` of each chain
    /// (clamped to the chain head) into the three wire frames in the
    /// requested payload encoding (binary columns by default; JSON for
    /// fleets whose reducer predates schema v2). The archived source
    /// decodes only the segments overlapping the range and folds them at
    /// their absolute base position — the emitted frames are
    /// byte-identical to a whole-chain sweep of the same range.
    pub fn frames(
        &self,
        meta: serde_json::Value,
        start: u64,
        end: u64,
        shards: usize,
        payload: PayloadFormat,
    ) -> Result<Vec<ShardFrame>, String> {
        let period = self.sc.period;
        let build = |worker: &ShardWorker,
                     eos: &[txstat_eos::Block],
                     tezos: &[txstat_tezos::TezosBlock],
                     xrp: &[txstat_xrp::LedgerBlock]| {
            vec![
                worker.eos_frame(eos, period),
                worker.tezos_frame(tezos, period, &self.governance_periods),
                worker.xrp_frame(xrp, period, &self.oracle),
            ]
        };
        let mut worker =
            ShardWorker { start, end, base: 0, shards: shards.max(1), payload, meta };
        match &self.source {
            ShardSource::Generated { eos, tezos, xrp } => Ok(build(&worker, eos, tezos, xrp)),
            ShardSource::Archived { archive, cache, .. } => {
                let (lo, hi) = archive.covering(start, end);
                let metas = archive.segments();
                worker.base = metas.get(lo).map_or(start, |m| m.start);
                // Probe the cache once per covering segment (each probe is
                // exactly one hit or miss), decode the misses on a rayon
                // fan, then park them for the next overlapping assignment.
                let probes: Vec<(usize, Option<Arc<crate::archive_io::ReplayedChains>>)> =
                    (lo..hi).map(|i| (i, cache.get(metas[i].hash))).collect();
                let misses: Vec<usize> =
                    probes.iter().filter(|(_, p)| p.is_none()).map(|(i, _)| *i).collect();
                let decoded: Vec<Result<crate::archive_io::ReplayedChains, String>> = misses
                    .par_iter()
                    .map(|&i| {
                        let seg = archive.decode_segment(i).map_err(|e| e.to_string())?;
                        crate::archive_io::chains_of_segment(&seg)
                    })
                    .collect_vec();
                let mut fresh = std::collections::HashMap::new();
                for (&i, parsed) in misses.iter().zip(decoded) {
                    let parsed = Arc::new(parsed?);
                    cache.insert(metas[i].hash, Arc::clone(&parsed), metas[i].raw_len);
                    fresh.insert(i, parsed);
                }
                let mut eos = Vec::new();
                let mut tezos = Vec::new();
                let mut xrp = Vec::new();
                for (i, probe) in probes {
                    let parsed = match probe {
                        Some(p) => p,
                        None => Arc::clone(&fresh[&i]),
                    };
                    eos.extend_from_slice(&parsed.0);
                    tezos.extend_from_slice(&parsed.1);
                    xrp.extend_from_slice(&parsed.2);
                }
                Ok(build(&worker, &eos, &tezos, &xrp))
            }
        }
    }

    /// Exact decoded-segment cache counters (archived sources only).
    pub fn cache_stats(&self) -> Option<txstat_archive::CacheStats> {
        match &self.source {
            ShardSource::Generated { .. } => None,
            ShardSource::Archived { cache, .. } => Some(cache.stats()),
        }
    }
}

/// One shard worker process's work, end to end: build the chains and
/// sweep one range. Socket workers keep a [`ShardContext`] instead.
pub fn shard_scenario(
    sc: &Scenario,
    meta: serde_json::Value,
    start: u64,
    end: u64,
    shards: usize,
    payload: PayloadFormat,
) -> Vec<ShardFrame> {
    ShardContext::new(sc)
        .frames(meta, start, end, shards, payload)
        .expect("generated shard context cannot fail")
}

/// Central reduction: validate and merge shard frames over the scenario
/// they were swept from, then assemble the full dataset with the reduced
/// sweeps installed. The rendered report is bit-identical to
/// [`generate`]'s.
///
/// Coverage must tile each chain exactly — a missing head, hole, or tail
/// surfaces as [`ReduceError::CoverageGap`] before anything renders.
pub fn reduce_frames(sc: &Scenario, frames: &[ShardFrame]) -> Result<PipelineData, ReduceError> {
    let mut session = ReduceSession::new();
    for frame in frames {
        session.submit(frame)?;
    }
    finish_reduce(generate(sc), session)
}

/// [`reduce_frames`] with per-frame provenance: each frame carries an
/// origin label (the file it was read from, or the fleet worker address
/// that produced it), and a validation failure names that origin, the
/// frame's index, chain, and range — instead of a bare [`ReduceError`]
/// that leaves a bad frame among many undiagnosable.
pub fn reduce_frames_labeled(
    sc: &Scenario,
    frames: &[(String, ShardFrame)],
) -> Result<PipelineData, String> {
    reduce_frames_labeled_into(generate(sc), frames)
}

/// [`reduce_frames_labeled`] over an already-generated dataset (the fleet
/// reducer generates the chains up front to size its chunk tiling and
/// must not pay for them twice).
pub fn reduce_frames_labeled_into(
    data: PipelineData,
    frames: &[(String, ShardFrame)],
) -> Result<PipelineData, String> {
    let mut session = ReduceSession::new();
    for (i, (origin, frame)) in frames.iter().enumerate() {
        session.submit(frame).map_err(|e| {
            format!(
                "frame {i} from {origin} ({} [{}, {})): {e}",
                frame.header.chain, frame.header.start, frame.header.end
            )
        })?;
    }
    finish_reduce(data, session).map_err(|e| e.to_string())
}

/// The shared tail of a reduction: check that coverage tiles each chain
/// exactly, finalize, and install the sweeps into the fresh dataset.
fn finish_reduce(data: PipelineData, session: ReduceSession) -> Result<PipelineData, ReduceError> {
    let lens = [
        data.eos_blocks.len() as u64,
        data.tezos_blocks.len() as u64,
        data.xrp_blocks.len() as u64,
    ];
    for (chain, len) in txstat_ingest::reduce::CHAINS.into_iter().zip(lens) {
        let mut gaps = Vec::new();
        match session.span(chain) {
            None => gaps.push((0, len)),
            Some((lo, hi)) => {
                if lo > 0 {
                    gaps.push((0, lo));
                }
                gaps.extend(session.gaps(chain));
                if hi < len {
                    gaps.push((hi, len));
                }
            }
        }
        if !gaps.is_empty() {
            return Err(ReduceError::CoverageGap { chain, gaps });
        }
    }
    let sweeps = session.finalize()?;
    assert!(data.install_sweeps(sweeps), "fresh dataset has no sweeps yet");
    Ok(data)
}

// ---- Reorg injection + per-block content hashes (reorg-safe follow) --------

/// Content hash of one EOS block: FNV-1a over its wire JSON — the same
/// serialization Figure 2's storage accounting uses, so any observable
/// change to the block changes the hash.
pub fn eos_block_hash(b: &txstat_eos::Block) -> u64 {
    txstat_types::ids::fnv1a64(&txstat_eos::rpc_model::block_bytes(b))
}

/// Content hash of one Tezos block (see [`eos_block_hash`]).
pub fn tezos_block_hash(b: &txstat_tezos::TezosBlock) -> u64 {
    txstat_types::ids::fnv1a64(&txstat_tezos::rpc_model::block_bytes(b))
}

/// Content hash of one XRP ledger (see [`eos_block_hash`]).
pub fn xrp_block_hash(b: &txstat_xrp::LedgerBlock) -> u64 {
    txstat_types::ids::fnv1a64(&txstat_xrp::rpc_model::ledger_bytes(b))
}

/// Simulate a chain reorganization: every block at position `>= from` (in
/// every chain) gets its transaction content deterministically rewritten —
/// numbering and timestamps stay, history *content* diverges, exactly what
/// a competing fork looks like to a follower keyed on block positions.
///
/// The returned dataset has fresh (uncomputed) sweeps and storage memo, so
/// a from-scratch report over it reflects the reorged history.
pub fn reorg_data(data: &PipelineData, from: usize, seed: u64) -> PipelineData {
    use txstat_types::rng::subseed_n;
    // Drop the last or the first entry of a block's transaction list,
    // chosen by a seeded coin — either way the block's content (and hash)
    // changes whenever it has any transactions at all.
    fn mutate<T>(list: &mut Vec<T>, coin: u64) {
        if list.is_empty() {
            return;
        }
        if coin & 1 == 0 {
            list.pop();
        } else {
            list.remove(0);
        }
    }
    let mut eos = (*data.eos_blocks).clone();
    for (pos, b) in eos.iter_mut().enumerate().skip(from) {
        mutate(&mut b.transactions, subseed_n(seed, "reorg-eos", pos as u64));
    }
    let mut tezos = (*data.tezos_blocks).clone();
    for (pos, b) in tezos.iter_mut().enumerate().skip(from) {
        mutate(&mut b.operations, subseed_n(seed, "reorg-tezos", pos as u64));
    }
    let mut xrp = (*data.xrp_blocks).clone();
    for (pos, b) in xrp.iter_mut().enumerate().skip(from) {
        mutate(&mut b.transactions, subseed_n(seed, "reorg-xrp", pos as u64));
    }
    PipelineData {
        scenario: data.scenario.clone(),
        eos_blocks: Arc::new(eos),
        tezos_blocks: Arc::new(tezos),
        xrp_blocks: Arc::new(xrp),
        oracle: Arc::clone(&data.oracle),
        trades: Arc::clone(&data.trades),
        cluster: Arc::clone(&data.cluster),
        eos_cpu_price: Arc::clone(&data.eos_cpu_price),
        eos_dropped_txs: data.eos_dropped_txs,
        tezos_rolls: Arc::clone(&data.tezos_rolls),
        governance_periods: data.governance_periods.clone(),
        crawl: None,
        stream: None,
        sweeps: OnceLock::new(),
        storage_memo: Arc::new(OnceLock::new()),
    }
}
