//! The end-to-end reproduction binary.
//!
//! Generates the Oct 1 – Dec 31 2019 scenario, optionally crawls it over
//! real loopback RPC endpoints (the full §3.1 measurement path), regenerates
//! every table and figure, and prints the paper-vs-measured comparison.
//!
//! `--crawl` streams: fetched blocks flow straight into sharded sweep
//! accumulators over bounded channels, so the report is ready the moment
//! the crawl finishes and no measurement-side block vector ever exists.
//! `--materialize` restores the legacy crawl-then-sweep baseline.
//!
//! Usage:
//!   reproduce [--small] [--crawl [--materialize]] [--seed N] [--out FILE]

use std::io::Write;
use txstat_reports::{
    comparison, generate, generate_with_crawl, generate_with_crawl_streamed, render_all,
    render_comparison, CrawlOptions,
};
use txstat_workload::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = value_of("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let sc = if has("--small") { Scenario::small(seed) } else { Scenario::paper(seed) };

    eprintln!(
        "scenario: {} .. {} (divisors: EOS 1/{}, Tezos 1/{}, XRP 1/{})",
        sc.period.start.date_string(),
        sc.period.end.date_string(),
        sc.eos_divisor,
        sc.tezos_divisor,
        sc.xrp_divisor
    );

    let started = std::time::Instant::now();
    let data = if has("--crawl") {
        let opts = if has("--small") { CrawlOptions::default() } else { CrawlOptions::paper() };
        let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
        if has("--materialize") {
            eprintln!("generating chains and crawling them over loopback RPC (materializing)…");
            rt.block_on(generate_with_crawl(&sc, &opts)).expect("crawl pipeline")
        } else {
            eprintln!(
                "generating chains and streaming the crawl into {} sweep shards per chain…",
                opts.shards
            );
            rt.block_on(generate_with_crawl_streamed(&sc, &opts)).expect("streamed pipeline")
        }
    } else {
        eprintln!("generating chains (direct read; pass --crawl for the full RPC path)…");
        generate(&sc)
    };
    if let Some(s) = &data.stream {
        eprintln!(
            "streamed: EOS {} blocks (peak buffer {}/{} per shard, {} stalls), \
             Tezos {} ({}, {} stalls), XRP {} ({}, {} stalls)",
            s.eos.streamed_blocks,
            s.eos.peak_buffered,
            s.eos.channel_capacity,
            s.eos.blocked_sends,
            s.tezos.streamed_blocks,
            s.tezos.peak_buffered,
            s.tezos.blocked_sends,
            s.xrp.streamed_blocks,
            s.xrp.peak_buffered,
            s.xrp.blocked_sends,
        );
    }
    eprintln!("pipeline ready in {:?}; rendering exhibits…", started.elapsed());

    let mut output = render_all(&data);
    let rows = comparison(&data);
    output.push_str(&render_comparison(&rows));
    output.push('\n');
    let misses = rows.iter().filter(|r| !r.within_band).count();
    output.push_str(&format!(
        "{} of {} comparison metrics inside their acceptance bands\n",
        rows.len() - misses,
        rows.len()
    ));

    match value_of("--out") {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            f.write_all(output.as_bytes()).expect("write output");
            eprintln!("exhibits written to {path}");
        }
        None => print!("{output}"),
    }
}
