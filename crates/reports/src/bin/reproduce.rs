//! The end-to-end reproduction binary, as subcommands:
//!
//! ```text
//! reproduce report [--small] [--seed N] [--crawl [--materialize]] [--out FILE]
//!     Generate the scenario and render every exhibit (the classic run).
//!
//! reproduce shard --range A..B --out FILE [--small] [--seed N] [--shards K]
//!                 [--payload bin|json]
//!     One distributed shard worker: sweep block positions [A, B) of each
//!     chain into columnar accumulators and write them as wire frames
//!     (txstat_wire). FILE "-" writes to stdout. --payload picks the frame
//!     encoding: bin (schema v2 binary columns, default) or json (v1
//!     frames old reducers still read).
//!
//! reproduce reduce FRAME-FILE... [--out FILE]
//!     Central reducer: validate + merge shard frames (schema version,
//!     chain tags, overlap, provenance, coverage) and render the full
//!     report — byte-identical to `reproduce report` on the same scenario.
//!
//! reproduce follow [--small] [--seed N] [--batch N] [--shards K] [--out FILE]
//!     Incremental re-render loop: replay the chains batch by batch
//!     through Checkpoint::observe_tail, re-rendering a dashboard line per
//!     batch, and emit the full report when the head is reached.
//!
//! reproduce serve [--small] [--seed N] [--port P] [--batch N] [--shards K]
//!                 [--epoch-ms MS] [--rate R] [--burst B] [--max-inflight N]
//!                 [--load [--conns N] [--reqs N]]
//!     Long-lived query service: the follow loop publishes an immutable
//!     epoch snapshot per batch while concurrent readers answer
//!     `/exhibit/<name>`, `/account/<chain>/<name>`, `/report`, and
//!     `/healthz` — byte-identical to the one-shot report once the head is
//!     reached. Token-bucket admission sheds excess load with 429s.
//!     `--load` runs the built-in load generator against the server after
//!     head and exits; otherwise the server runs until POST
//!     /admin/shutdown.
//!
//! reproduce query --addr HOST:PORT [--wait-head S] [--expect-status N]
//!                 [--out FILE] [--shutdown] PATH...
//!     Minimal client for scripting against `serve`: GET each PATH (body
//!     to stdout or --out), optionally wait for the server to reach head
//!     first, assert a status code, and/or POST /admin/shutdown at the
//!     end.
//! ```
//!
//! The pre-subcommand flag spelling (`reproduce --small --crawl …`) still
//! works and maps onto `report`. Unrecognized flags or subcommands print
//! usage and exit non-zero.
//!
//! Observability: `report`, `shard`, `reduce`, `follow`, and `serve` all
//! take `--trace-out FILE` (write one NDJSON span event per pipeline stage
//! to FILE) and `--timings` (print a per-stage wall-time summary table on
//! stderr at exit). `serve` additionally exposes `GET /metrics`
//! (Prometheus text) and `GET /statusz` (JSON) with the ingest, reduce,
//! epoch, and serve metric families.

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use txstat_core::{ChainSweeps, EosColumnar, TezosColumnar, XrpColumnar};
use txstat_ingest::{Checkpoint, EpochCell};
use txstat_netsim::http::{read_response, write_request, HttpRequest, HttpResponse};
use txstat_netsim::{run_load, spawn_query_server, HttpHandler, LoadPlan, QueryServerConfig};
use txstat_reports::{
    generate, generate_with_crawl, generate_with_crawl_streamed, reduce_frames, render_report,
    scenario_from_meta, scenario_meta, shard_scenario, CrawlOptions, EpochFollower, PipelineData,
    ServeSnapshot, StatsService,
};
use txstat_wire::{PayloadFormat, ShardFrame};
use txstat_workload::Scenario;

const USAGE: &str = "\
usage: reproduce <subcommand> [options]

subcommands:
  report   render every exhibit from the generated scenario (default)
           [--small] [--seed N] [--crawl [--materialize]] [--out FILE]
  shard    sweep block positions [A, B) into a wire-frame bundle
           --range A..B --out FILE [--small] [--seed N] [--shards K]
           [--payload bin|json]  (bin = schema v2 binary columns, default;
                                  json = v1 frames for old reducers)
  reduce   merge shard frame files and render the full report
           FRAME-FILE... [--out FILE]
  follow   incremental re-render loop over the appending chains
           [--small] [--seed N] [--batch N] [--shards K] [--out FILE]
  serve    epoch-swapped query service over the follow loop
           [--small] [--seed N] [--port P] [--batch N] [--shards K]
           [--epoch-ms MS] [--rate R] [--burst B] [--max-inflight N]
           [--load [--conns N] [--reqs N]]
  query    scripting client for serve: GET PATH... against --addr HOST:PORT
           [--wait-head S] [--expect-status N] [--out FILE] [--shutdown]

report/shard/reduce/follow/serve also take:
  --trace-out FILE   write NDJSON span events per pipeline stage to FILE
  --timings          print a per-stage wall-time summary table on stderr

Legacy spelling `reproduce [--small] [--crawl] ...` maps onto `report`.";

/// Strictly parsed arguments: any flag outside the subcommand's allow-list
/// is an error (nothing is ignored silently).
struct Args {
    bools: Vec<String>,
    values: HashMap<String, String>,
    positionals: Vec<String>,
}

impl Args {
    fn parse(
        raw: &[String],
        bool_flags: &[&str],
        value_flags: &[&str],
        positionals_allowed: bool,
    ) -> Result<Args, String> {
        let mut out =
            Args { bools: Vec::new(), values: HashMap::new(), positionals: Vec::new() };
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if bool_flags.contains(&arg.as_str()) {
                out.bools.push(arg.clone());
            } else if value_flags.contains(&arg.as_str()) {
                let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                out.values.insert(arg.clone(), v.clone());
            } else if arg.starts_with('-') {
                return Err(format!("unrecognized flag {arg}"));
            } else if positionals_allowed {
                out.positionals.push(arg.clone());
            } else {
                return Err(format!("unexpected argument {arg:?}"));
            }
        }
        Ok(out)
    }

    fn has(&self, flag: &str) -> bool {
        self.bools.iter().any(|b| b == flag)
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}")),
        }
    }
}

fn scenario_of(args: &Args) -> Result<(Scenario, &'static str), String> {
    let seed: u64 = args.parsed("--seed", 42)?;
    Ok(if args.has("--small") {
        (Scenario::small(seed), "small")
    } else {
        (Scenario::paper(seed), "paper")
    })
}

/// Arm the global tracer per `--trace-out FILE` (NDJSON span events) and
/// `--timings` (end-of-run stage summary). Either flag enables tracing;
/// with neither, spans stay inert (one relaxed load each).
fn init_tracing(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("--trace-out") {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("--trace-out: cannot create {path}: {e}"))?;
        txstat_telemetry::tracer().set_sink(Box::new(std::io::BufWriter::new(file)));
    }
    if args.has("--timings") {
        txstat_telemetry::tracer().enable();
    }
    Ok(())
}

/// Flush the trace sink and print the per-stage wall-time table when
/// `--timings` was given.
fn finish_tracing(args: &Args) {
    let tracer = txstat_telemetry::tracer();
    if args.has("--timings") {
        eprint!("{}", tracer.render_summary());
    }
    tracer.flush();
}


fn write_output(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some("-") | None => {
            print!("{text}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("exhibits written to {path}");
            Ok(())
        }
    }
}

fn cmd_report(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--crawl", "--materialize", "--timings"],
        &["--seed", "--out", "--trace-out"],
        false,
    )?;
    let (sc, _) = scenario_of(&args)?;
    init_tracing(&args)?;

    eprintln!(
        "scenario: {} .. {} (divisors: EOS 1/{}, Tezos 1/{}, XRP 1/{})",
        sc.period.start.date_string(),
        sc.period.end.date_string(),
        sc.eos_divisor,
        sc.tezos_divisor,
        sc.xrp_divisor
    );

    let started = std::time::Instant::now();
    let data = if args.has("--crawl") {
        let opts = if args.has("--small") { CrawlOptions::default() } else { CrawlOptions::paper() };
        let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
        if args.has("--materialize") {
            eprintln!("generating chains and crawling them over loopback RPC (materializing)…");
            rt.block_on(generate_with_crawl(&sc, &opts)).map_err(|e| e.to_string())?
        } else {
            eprintln!(
                "generating chains and streaming the crawl into {} sweep shards per chain…",
                opts.shards
            );
            rt.block_on(generate_with_crawl_streamed(&sc, &opts)).map_err(|e| e.to_string())?
        }
    } else {
        eprintln!("generating chains (direct read; pass --crawl for the full RPC path)…");
        generate(&sc)
    };
    if let Some(s) = &data.stream {
        eprintln!(
            "streamed: EOS {} blocks (peak buffer {}/{} per shard, {} stalls), \
             Tezos {} ({}, {} stalls), XRP {} ({}, {} stalls)",
            s.eos.streamed_blocks,
            s.eos.peak_buffered,
            s.eos.channel_capacity,
            s.eos.blocked_sends,
            s.tezos.streamed_blocks,
            s.tezos.peak_buffered,
            s.tezos.blocked_sends,
            s.xrp.streamed_blocks,
            s.xrp.peak_buffered,
            s.xrp.blocked_sends,
        );
    }
    eprintln!("pipeline ready in {:?}; rendering exhibits…", started.elapsed());
    let result = write_output(&render_report(&data), args.get("--out"));
    finish_tracing(&args);
    result
}

fn parse_range(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("--range wants A..B (block positions), got {s:?}"))?;
    let start: u64 = a.parse().map_err(|_| format!("--range: bad start {a:?}"))?;
    let end: u64 = b.parse().map_err(|_| format!("--range: bad end {b:?}"))?;
    if start > end {
        return Err(format!("--range: inverted range {s:?}"));
    }
    Ok((start, end))
}

fn cmd_shard(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--timings"],
        &["--seed", "--out", "--range", "--shards", "--payload", "--trace-out"],
        false,
    )?;
    let (sc, mode) = scenario_of(&args)?;
    init_tracing(&args)?;
    let (start, end) =
        parse_range(args.get("--range").ok_or("shard needs --range A..B")?)?;
    let out = args.get("--out").ok_or("shard needs --out FILE (\"-\" for stdout)")?;
    let shards: usize = args.parsed("--shards", 2)?;
    let payload = match args.get("--payload") {
        None => PayloadFormat::Bin,
        Some(s) => PayloadFormat::parse(s)
            .ok_or_else(|| format!("--payload wants json or bin, got {s:?}"))?,
    };

    let started = std::time::Instant::now();
    let frames = shard_scenario(&sc, scenario_meta(&sc, mode), start, end, shards, payload);
    for f in &frames {
        eprintln!(
            "{}: swept positions [{}, {}) — {} blocks (schema v{}, {} payload)",
            f.header.chain,
            f.header.start,
            f.header.end,
            f.header.blocks,
            f.header.schema_version,
            f.header.payload_format.tag(),
        );
    }
    let bytes = txstat_wire::encode_all(&frames);
    match out {
        "-" => std::io::stdout()
            .write_all(&bytes)
            .map_err(|e| format!("cannot write frames to stdout: {e}"))?,
        path => std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?,
    }
    eprintln!(
        "{} frames ({} bytes) emitted in {:?} to {}",
        frames.len(),
        bytes.len(),
        started.elapsed(),
        out
    );
    finish_tracing(&args);
    Ok(())
}

fn cmd_reduce(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["--timings"], &["--out", "--trace-out"], true)?;
    if args.positionals.is_empty() {
        return Err("reduce needs at least one frame file".to_owned());
    }
    init_tracing(&args)?;
    let started = std::time::Instant::now();
    let mut frames: Vec<ShardFrame> = Vec::new();
    for path in &args.positionals {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let decoded =
            txstat_wire::decode_all(&bytes).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: {} frames", decoded.len());
        frames.extend(decoded);
    }
    let meta = frames.first().map(|f| f.header.meta.clone()).ok_or("no frames found")?;
    let (sc, mode) = scenario_from_meta(&meta)?;
    eprintln!(
        "reducing {} frames of the {mode} scenario (seed {})…",
        frames.len(),
        sc.seed
    );
    let data = reduce_frames(&sc, &frames).map_err(|e| e.to_string())?;
    eprintln!("reduction ready in {:?}; rendering exhibits…", started.elapsed());
    let result = write_output(&render_report(&data), args.get("--out"));
    finish_tracing(&args);
    result
}

fn cmd_follow(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--timings"],
        &["--seed", "--out", "--batch", "--shards", "--trace-out"],
        false,
    )?;
    let (sc, _) = scenario_of(&args)?;
    init_tracing(&args)?;
    let batch: usize = args.parsed("--batch", 500)?;
    if batch == 0 {
        return Err("--batch must be positive".to_owned());
    }
    let shards: usize = args.parsed("--shards", 2)?;
    let shards = shards.max(1);

    eprintln!("generating chains; following head in batches of {batch} blocks per chain…");
    let data = generate(&sc);
    let period = sc.period;

    // One range-keyed checkpoint per chain; each batch appends a tail via
    // observe_tail, so the already-observed prefix is never re-swept.
    let fresh = |low: u64| (vec![0u64; shards], low);
    let mk_eos = || {
        let (counts, low) = fresh(data.eos_blocks.first().map_or(1, |b| b.num));
        Checkpoint {
            shards: vec![EosColumnar::new(period); shards],
            counts,
            low,
            high: low.saturating_sub(1),
        }
    };
    let mk_tz = || {
        let (counts, low) = fresh(data.tezos_blocks.first().map_or(1, |b| b.level));
        Checkpoint {
            shards: vec![TezosColumnar::new(period, data.governance_periods.clone()); shards],
            counts,
            low,
            high: low.saturating_sub(1),
        }
    };
    let mk_xrp = || {
        let (counts, low) = fresh(data.xrp_blocks.first().map_or(1, |b| b.index));
        Checkpoint {
            shards: vec![XrpColumnar::new(period); shards],
            counts,
            low,
            high: low.saturating_sub(1),
        }
    };
    let mut eos_cp = mk_eos();
    let mut tz_cp = mk_tz();
    let mut xrp_cp = mk_xrp();

    let mut offset = 0usize;
    let total = data
        .eos_blocks
        .len()
        .max(data.tezos_blocks.len())
        .max(data.xrp_blocks.len());
    let mut round = 0u64;
    while offset < total {
        let _span = txstat_telemetry::Span::enter("follow_batch", "");
        let hi = (offset + batch).min(total);
        let take = |n: usize| offset.min(n)..hi.min(n);
        eos_cp
            .observe_tail(
                data.eos_blocks[take(data.eos_blocks.len())].iter().map(|b| (b.num, b)),
                |a, _n, b| a.observe(b),
            )
            .map_err(|e| e.to_string())?;
        tz_cp
            .observe_tail(
                data.tezos_blocks[take(data.tezos_blocks.len())].iter().map(|b| (b.level, b)),
                |a, _n, b| a.observe(b),
            )
            .map_err(|e| e.to_string())?;
        xrp_cp
            .observe_tail(
                data.xrp_blocks[take(data.xrp_blocks.len())].iter().map(|b| (b.index, b)),
                |a, _n, b| a.observe(b, &data.oracle),
            )
            .map_err(|e| e.to_string())?;
        round += 1;

        // Re-render the headline statistics from the merged (cloned) shard
        // state — O(shards) merges, no prefix re-sweep.
        let eos = eos_cp.merged(|a, b| a.merge(b)).finalize();
        let tz = tz_cp.merged(|a, b| a.merge(b)).finalize();
        let xrp = xrp_cp.merged(|a, b| a.merge(b)).finalize();
        eprintln!(
            "batch {round:>4}: EOS {:>7} blocks ({:.2} tps) | Tezos {:>7} ({:.2} tps) | XRP {:>7} ({:.2} tps)",
            eos_cp.observed(),
            eos.tps(),
            tz_cp.observed(),
            tz.tps(),
            xrp_cp.observed(),
            xrp.tps(),
        );
        offset = hi;
    }

    // Head reached: the checkpoints now cover the whole chains. Render the
    // full report from their merged state — identical to `report`.
    let sweeps = ChainSweeps {
        eos: eos_cp.merged(|a, b| a.merge(b)).finalize(),
        tezos: tz_cp.merged(|a, b| a.merge(b)).finalize(),
        xrp: xrp_cp.merged(|a, b| a.merge(b)).finalize(),
    };
    assert!(data.install_sweeps(sweeps), "follow computed no report sweeps");
    let result = write_output(&render_report(&data), args.get("--out"));
    finish_tracing(&args);
    result
}

/// Derive one known-present `/account/...` path per chain from the served
/// sweeps (the busiest account of each), for load mixes and smoke tests.
fn sample_account_paths(data: &PipelineData) -> Vec<String> {
    let sweeps = data.sweeps();
    let mut out = Vec::new();
    if let Some(r) = sweeps.eos.top_received(1).into_iter().next() {
        out.push(format!("/account/eos/{}", r.account.to_string_repr()));
    }
    if let Some(s) = sweeps.tezos.top_senders(1).into_iter().next() {
        out.push(format!("/account/tezos/{}", s.sender));
    }
    if let Some(a) = sweeps.xrp.most_active(1, &data.cluster).into_iter().next() {
        out.push(format!("/account/xrp/{}", a.account));
    }
    out
}

fn cmd_serve(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--load", "--timings"],
        &[
            "--seed",
            "--port",
            "--batch",
            "--shards",
            "--epoch-ms",
            "--rate",
            "--burst",
            "--max-inflight",
            "--conns",
            "--reqs",
            "--trace-out",
        ],
        false,
    )?;
    let (sc, mode) = scenario_of(&args)?;
    init_tracing(&args)?;
    let port: u16 = args.parsed("--port", 0)?;
    let batch: usize = args.parsed("--batch", 20_000)?;
    if batch == 0 {
        return Err("--batch must be positive".to_owned());
    }
    let shards: usize = args.parsed("--shards", 2)?;
    let epoch_ms: u64 = args.parsed("--epoch-ms", 0)?;
    let rate: f64 = args.parsed("--rate", 50_000.0)?;
    let burst: f64 = args.parsed("--burst", 5_000.0)?;
    let max_inflight: u64 = args.parsed("--max-inflight", 256)?;

    eprintln!("generating {mode} scenario (seed {}); serving in epochs of {batch} blocks…", sc.seed);
    // The serve path exports through the process-global registry so
    // `/metrics` carries every layer's families (ingest counters from the
    // shard pools, reduce/epoch progress from the follow loop, serve route
    // stats) in one exposition.
    let registry = txstat_telemetry::registry().clone();
    let mut follower = EpochFollower::new(generate(&sc), batch, shards);
    follower.bind_metrics(&registry);
    // First epoch before accepting queries, so every response has sweeps.
    let first = follower.advance()?;
    let mut epoch = 1u64;
    let cell =
        Arc::new(EpochCell::new(Arc::new(ServeSnapshot::new(epoch, follower.head(), first))));
    let service = Arc::new(StatsService::with_registry(cell.clone(), registry.clone()));

    let rt = tokio::runtime::Runtime::new().map_err(|e| e.to_string())?;
    rt.block_on(async {
        let handler: Arc<dyn HttpHandler> = service.clone();
        let server = spawn_query_server(
            handler,
            QueryServerConfig {
                name: "stats-serve".to_owned(),
                bind: format!("127.0.0.1:{port}"),
                rate_per_sec: rate,
                burst,
                max_in_flight: max_inflight,
            },
        )
        .await
        .map_err(|e| e.to_string())?;
        // Route-class counters (requests/served/shed/bytes/latency) join
        // the same registry the service exposes on /metrics.
        server.routes.register_into(&registry);
        // Scripts scrape this line for the bound address.
        println!("serving on http://{}", server.addr);
        std::io::stdout().flush().ok();

        while !follower.head() {
            if epoch_ms > 0 {
                std::thread::sleep(Duration::from_millis(epoch_ms));
            }
            let fork = follower.advance()?;
            epoch += 1;
            let head = follower.head();
            cell.publish(Arc::new(ServeSnapshot::new(epoch, head, fork)));
            let (e, t, x) = follower.observed();
            eprintln!(
                "epoch {epoch}: EOS {e} | Tezos {t} | XRP {x} blocks observed{}",
                if head { " — head reached" } else { "" }
            );
        }

        if args.has("--load") {
            let conns: usize = args.parsed("--conns", 64)?;
            let reqs: usize = args.parsed("--reqs", 200)?;
            let snap = service.snapshot();
            let mut paths: Vec<String> = ["headline", "fig1", "fig4", "fig7", "fig8", "comparison"]
                .iter()
                .map(|n| format!("/exhibit/{n}"))
                .collect();
            paths.push("/report".to_owned());
            paths.extend(sample_account_paths(snap.data()));
            let plan = LoadPlan { connections: conns, requests_per_conn: reqs, paths };
            eprintln!(
                "load: {conns} connections × {reqs} requests over {} paths…",
                plan.paths.len()
            );
            let report = run_load(server.addr, &plan).await;
            println!(
                "load: {} requests in {:.2?} → {:.0} req/s | ok {} shed {} errors {} | \
                 p50 {}µs p99 {}µs max {}µs | cache hits {} misses {}",
                report.sent,
                report.elapsed,
                report.req_per_sec(),
                report.ok,
                report.shed,
                report.errors,
                report.p50_us,
                report.p99_us,
                report.max_us,
                service.cache_hits.get(),
                service.cache_misses.get(),
            );
            finish_tracing(&args);
            return Ok(());
        }

        eprintln!("head reached; serving until POST /admin/shutdown…");
        while !service.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(25));
        }
        eprintln!("shutdown requested; exiting");
        finish_tracing(&args);
        Ok(())
    })
}

async fn http_fetch(
    addr: std::net::SocketAddr,
    req: &HttpRequest,
) -> Result<HttpResponse, String> {
    let sock = tokio::net::TcpStream::connect(addr).await.map_err(|e| e.to_string())?;
    let mut stream = tokio::io::BufStream::new(sock);
    write_request(&mut stream, req).await.map_err(|e| e.to_string())?;
    read_response(&mut stream).await.map_err(|e| e.to_string())
}

fn write_bytes(bytes: &[u8], out: Option<&str>) -> Result<(), String> {
    match out {
        None | Some("-") => std::io::stdout().write_all(bytes).map_err(|e| e.to_string()),
        Some(path) => std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}")),
    }
}

fn cmd_query(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--shutdown"],
        &["--addr", "--wait-head", "--expect-status", "--out"],
        true,
    )?;
    let addr: std::net::SocketAddr = args
        .get("--addr")
        .ok_or("--addr HOST:PORT is required")?
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .parse()
        .map_err(|_| "--addr: cannot parse HOST:PORT".to_owned())?;
    if args.positionals.is_empty() && !args.has("--shutdown") && args.get("--wait-head").is_none()
    {
        return Err("query needs at least one PATH (or --wait-head / --shutdown)".to_owned());
    }
    let expect: Option<u16> = match args.get("--expect-status") {
        None => None,
        Some(s) => {
            Some(s.parse().map_err(|_| format!("--expect-status: cannot parse {s:?}"))?)
        }
    };
    let rt = tokio::runtime::Runtime::new().map_err(|e| e.to_string())?;
    rt.block_on(async {
        // The server prints its address before the follow loop starts, but
        // give slow starts a grace period anyway.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match http_fetch(addr, &HttpRequest::get("/healthz")).await {
                Ok(_) => break,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(format!("cannot reach {addr}: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        if let Some(secs) = args.get("--wait-head") {
            let secs: u64 =
                secs.parse().map_err(|_| format!("--wait-head: cannot parse {secs:?}"))?;
            let deadline = Instant::now() + Duration::from_secs(secs);
            loop {
                let resp =
                    http_fetch(addr, &HttpRequest::get("/healthz")).await.map_err(|e| e.to_string())?;
                if String::from_utf8_lossy(&resp.body).contains("\"head\":true") {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(format!("server did not reach head within {secs}s"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        let mut out: Vec<u8> = Vec::new();
        for path in &args.positionals {
            let resp =
                http_fetch(addr, &HttpRequest::get(path)).await.map_err(|e| e.to_string())?;
            if let Some(code) = expect {
                if resp.status != code {
                    return Err(format!(
                        "{path}: expected status {code}, got {} {}",
                        resp.status, resp.reason
                    ));
                }
            }
            out.extend_from_slice(&resp.body);
        }
        if args.has("--shutdown") {
            let resp = http_fetch(addr, &HttpRequest::post("/admin/shutdown", Vec::new()))
                .await
                .map_err(|e| e.to_string())?;
            if !resp.is_ok() {
                return Err(format!("shutdown failed: {} {}", resp.status, resp.reason));
            }
        }
        write_bytes(&out, args.get("--out"))
    })
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None => cmd_report(&[]),
        Some("report") => cmd_report(&argv[1..]),
        Some("shard") => cmd_shard(&argv[1..]),
        Some("reduce") => cmd_reduce(&argv[1..]),
        Some("follow") => cmd_follow(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("query") => cmd_query(&argv[1..]),
        Some(flag) if flag.starts_with('-') => {
            // Compatibility shim: the pre-subcommand spelling is a report.
            cmd_report(&argv)
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
