//! The end-to-end reproduction binary, as subcommands:
//!
//! ```text
//! reproduce report [--small] [--seed N] [--crawl [--materialize]] [--out FILE]
//!                  [--archive DIR]
//!     Generate the scenario and render every exhibit (the classic run).
//!     --archive DIR cold-starts from an archived corpus instead of
//!     generating: the report is byte-identical and no chain is built.
//!
//! reproduce archive --out DIR [--small] [--seed N] [--segment-blocks N]
//!                   [--crawl] [--format v1|v2] [--upgrade SRC]
//!     Generate the scenario once (or measure it over the loopback RPC
//!     crawl with --crawl) and seal it into an on-disk segmented
//!     corpus (`txstat_archive`): LZSS-compressed block segments of
//!     --segment-blocks positions each plus a content-hashed index with
//!     the scenario manifest and the sidecar (oracle trades, account
//!     cluster, CPU prices, rolls, governance windows). --format picks
//!     the segment payload schema: v2 per-chain columnar blocks (the
//!     default — smaller and an order of magnitude faster to replay) or
//!     v1 length-prefixed wire-JSON (what pre-v2 builds sealed; still
//!     readable everywhere). --upgrade SRC replays an existing corpus
//!     instead of generating and re-seals it at --out in the requested
//!     format — the run fails unless the rewrite replays byte-identical
//!     to the source. Every other subcommand takes --archive DIR to
//!     cold-start from the corpus.
//!
//! reproduce shard --range A..B --out FILE [--small] [--seed N] [--shards K]
//!                 [--payload bin|json]
//! reproduce shard --listen ADDR [--max-requests N] [--timeout-ms MS]
//!                 [--small] [--seed N]
//!     One distributed shard worker. File mode sweeps block positions
//!     [A, B) of each chain into columnar accumulators and writes them as
//!     wire frames (txstat_wire); FILE "-" writes to stdout. --payload
//!     picks the frame encoding: bin (schema v2 binary columns, default)
//!     or json (v1 frames old reducers still read). Socket mode
//!     (--listen) binds a TCP accept loop instead and answers fleet
//!     range-assignment requests until killed (or until --max-requests
//!     assignments have been served — the deterministic way to die
//!     mid-reduction in tests). It prints `shard worker on ADDR` on
//!     stdout once bound, for scripts to scrape. Both modes take
//!     --archive DIR: the worker cold-starts from the corpus and each
//!     assignment decodes only the segments covering its range — no
//!     chain generation (`txstat_pipeline_generate_total` stays 0).
//!     Decoded segments are kept in a per-worker LRU cache keyed by
//!     segment content hash (--segment-cache-mb, default 64), so
//!     overlapping assignments decode each segment once; hit/miss/
//!     eviction counts land in the `txstat_archive_cache_*` families.
//!
//! reproduce reduce FRAME-FILE... [--out FILE]
//! reproduce reduce --connect ADDR,ADDR,... [--small] [--seed N]
//!                  [--shards K] [--payload bin|json] [--chunks N]
//!                  [--timeout-ms MS] [--retries N] [--backoff-ms MS]
//!                  [--out FILE] [--metrics-out FILE]
//!     Central reducer: validate + merge shard frames (schema version,
//!     chain tags, overlap, provenance, coverage) and render the full
//!     report — byte-identical to `reproduce report` on the same
//!     scenario. File mode reads concatenated frame bundles; failures
//!     name the offending file. Fleet mode (--connect) drives the listed
//!     socket workers with per-request deadlines, exponential backoff,
//!     bounded retry budgets, and straggler re-dispatch: a timed-out or
//!     dead worker's range goes back on the queue for the survivors, and
//!     failures name the worker address. --metrics-out dumps the
//!     `txstat_fleet_*` counters (Prometheus text) at exit. Fleet mode
//!     takes --archive DIR to cold-start the reducer-side dataset from
//!     the corpus instead of generating it.
//!
//! reproduce follow [--small] [--seed N] [--batch N] [--shards K] [--out FILE]
//!                  [--snapshots W] [--reorg-at-batch R] [--reorg-depth D]
//!                  [--reorg-seed S] [--metrics-out FILE]
//!     Incremental re-render loop: replay the chains batch by batch
//!     through checkpointed followers that seal a content mark per batch,
//!     re-rendering a dashboard line each round, and emit the full report
//!     when the head is reached. --reorg-at-batch injects a reorg after
//!     batch R, rewriting the last D block positions of every chain: the
//!     followers detect the divergence by mark, roll back only the
//!     invalidated suffix (or rebuild when it predates the snapshot
//!     window), re-sweep to the new head, and the run fails unless the
//!     result is byte-identical to a from-scratch sweep of the reorged
//!     chains. --archive DIR persists the followed corpus: cold-start
//!     from it when it exists (create it otherwise), seal each observed
//!     batch — coalescing a runt tail segment up to --segment-blocks
//!     positions (default: the batch size, or the corpus's geometry when
//!     cold-starting) instead of fragmenting one segment per batch — and
//!     on reorg truncate + re-seal only the disagreeing segment suffix;
//!     the run fails unless the re-opened archive replays byte-identical
//!     to the followed chains. --format picks the sealed segment schema
//!     (v2 columnar default).
//!
//! reproduce chaos --upstream ADDR [--listen ADDR] [--fault-rate F]
//!                 [--truncate-rate F] [--flip-rate F] [--latency-ms L]
//!                 [--jitter-ms J] [--seed N] [--max-seconds S]
//!     Fault-injecting TCP proxy between real processes: relays every
//!     connection to --upstream while resetting, truncating, bit-flipping,
//!     or delaying streams per the configured rates. Prints `chaos proxy
//!     on ADDR -> UPSTREAM` once bound, then runs until killed (or
//!     --max-seconds elapses). Point a fleet reducer at it to rehearse
//!     worker failure.
//!
//! reproduce serve [--small] [--seed N] [--port P] [--batch N] [--shards K]
//!                 [--epoch-ms MS] [--rate R] [--burst B] [--max-inflight N]
//!                 [--load [--conns N] [--reqs N]]
//!     Long-lived query service: the follow loop publishes an immutable
//!     epoch snapshot per batch while concurrent readers answer
//!     `/exhibit/<name>`, `/account/<chain>/<name>`, `/report`, and
//!     `/healthz` — byte-identical to the one-shot report once the head is
//!     reached. Token-bucket admission sheds excess load with 429s.
//!     `--load` runs the built-in load generator against the server after
//!     head and exits; otherwise the server runs until POST
//!     /admin/shutdown.
//!
//! reproduce query --addr HOST:PORT [--wait-head S] [--expect-status N]
//!                 [--out FILE] [--shutdown] PATH...
//!     Minimal client for scripting against `serve`: GET each PATH (body
//!     to stdout or --out), optionally wait for the server to reach head
//!     first, assert a status code, and/or POST /admin/shutdown at the
//!     end.
//! ```
//!
//! The pre-subcommand flag spelling (`reproduce --small --crawl …`) still
//! works and maps onto `report`. Unrecognized flags or subcommands print
//! usage and exit non-zero.
//!
//! Observability: `report`, `shard`, `reduce`, `follow`, and `serve` all
//! take `--trace-out FILE` (write one NDJSON span event per pipeline stage
//! to FILE) and `--timings` (print a per-stage wall-time summary table on
//! stderr at exit). `serve` additionally exposes `GET /metrics`
//! (Prometheus text) and `GET /statusz` (JSON) with the ingest, reduce,
//! epoch, and serve metric families.

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use txstat_core::{ChainSweeps, EosColumnar, TezosColumnar, XrpColumnar};
use txstat_ingest::{
    reduce_fleet, serve_assignments, ChainFollow, Checkpoint, EpochCell, FleetConfig,
};
use txstat_netsim::http::{read_response, write_request, HttpRequest, HttpResponse};
use txstat_netsim::{
    run_load, spawn_chaos_proxy, spawn_query_server, ChaosProfile, HttpHandler, LoadPlan,
    QueryServerConfig,
};
use txstat_reports::{
    eos_block_hash, generate, generate_with_crawl, generate_with_crawl_streamed,
    pipeline_from_archive, reduce_frames_labeled, reduce_frames_labeled_into, render_report,
    reorg_data, scenario_from_meta, scenario_meta, tezos_block_hash, write_archive,
    xrp_block_hash, CrawlOptions, EpochFollower, Manifest, PipelineData, SegmentFormat,
    ServeSnapshot, ShardContext, StatsService,
};
use txstat_wire::{PayloadFormat, ShardFrame};
use txstat_workload::Scenario;

const USAGE: &str = "\
usage: reproduce <subcommand> [options]

subcommands:
  report   render every exhibit from the generated scenario (default)
           [--small] [--seed N] [--crawl [--materialize]] [--out FILE]
           [--archive DIR]
  archive  generate (or --crawl) the scenario once and seal it into an
           on-disk segmented corpus other subcommands cold-start from
           (--archive DIR)
           --out DIR [--small] [--seed N] [--segment-blocks N] [--crawl]
           [--format v1|v2]  (segment payload schema: v2 columnar blocks,
                              default; v1 length-prefixed wire-JSON)
           [--upgrade SRC]   (replay corpus SRC and re-seal it at --out in
                              the requested format; fails unless the
                              rewrite replays byte-identical)
  shard    sweep block positions [A, B) into a wire-frame bundle, or serve
           ranges over a socket as one fleet worker
           --range A..B --out FILE [--small] [--seed N] [--shards K]
           [--payload bin|json]  (bin = schema v2 binary columns, default;
                                  json = v1 frames for old reducers)
           --listen ADDR [--max-requests N] [--timeout-ms MS]
           [--archive DIR]  (serve block ranges straight from the mapped
                             segments — no chain generation)
           [--segment-cache-mb N]  (decoded-segment LRU budget, default 64)
  reduce   merge shard frames and render the full report, from files or by
           driving a socket worker fleet (retry/backoff + re-dispatch)
           FRAME-FILE... [--out FILE]
           --connect ADDR,ADDR,... [--small] [--seed N] [--shards K]
           [--payload bin|json] [--chunks N] [--timeout-ms MS]
           [--retries N] [--backoff-ms MS] [--metrics-out FILE]
           [--archive DIR]
  follow   incremental re-render loop over the appending chains, with
           reorg-safe rollback via per-batch content marks
           [--small] [--seed N] [--batch N] [--shards K] [--out FILE]
           [--snapshots W] [--reorg-at-batch R] [--reorg-depth D]
           [--reorg-seed S] [--metrics-out FILE]
           [--archive DIR]  (cold-start from the corpus when it exists,
                             create it otherwise; batches are sealed with
                             runt tails coalesced up to --segment-blocks
                             and a reorg truncates + re-seals only the
                             disagreeing segment suffix)
           [--segment-blocks N] [--format v1|v2]
  chaos    fault-injecting TCP proxy for rehearsing worker failure
           --upstream ADDR [--listen ADDR] [--fault-rate F]
           [--truncate-rate F] [--flip-rate F] [--latency-ms L]
           [--jitter-ms J] [--seed N] [--max-seconds S]
  serve    epoch-swapped query service over the follow loop
           [--small] [--seed N] [--port P] [--batch N] [--shards K]
           [--epoch-ms MS] [--rate R] [--burst B] [--max-inflight N]
           [--load [--conns N] [--reqs N]] [--archive DIR]
  query    scripting client for serve: GET PATH... against --addr HOST:PORT
           [--wait-head S] [--expect-status N] [--out FILE] [--shutdown]

report/shard/reduce/follow/serve also take:
  --trace-out FILE   write NDJSON span events per pipeline stage to FILE
  --timings          print a per-stage wall-time summary table on stderr

Legacy spelling `reproduce [--small] [--crawl] ...` maps onto `report`.";

/// Strictly parsed arguments: any flag outside the subcommand's allow-list
/// is an error (nothing is ignored silently).
struct Args {
    bools: Vec<String>,
    values: HashMap<String, String>,
    positionals: Vec<String>,
}

impl Args {
    fn parse(
        raw: &[String],
        bool_flags: &[&str],
        value_flags: &[&str],
        positionals_allowed: bool,
    ) -> Result<Args, String> {
        let mut out =
            Args { bools: Vec::new(), values: HashMap::new(), positionals: Vec::new() };
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if bool_flags.contains(&arg.as_str()) {
                out.bools.push(arg.clone());
            } else if value_flags.contains(&arg.as_str()) {
                let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                out.values.insert(arg.clone(), v.clone());
            } else if arg.starts_with('-') {
                return Err(format!("unrecognized flag {arg}"));
            } else if positionals_allowed {
                out.positionals.push(arg.clone());
            } else {
                return Err(format!("unexpected argument {arg:?}"));
            }
        }
        Ok(out)
    }

    fn has(&self, flag: &str) -> bool {
        self.bools.iter().any(|b| b == flag)
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}")),
        }
    }
}

fn scenario_of(args: &Args) -> Result<(Scenario, &'static str), String> {
    let seed: u64 = args.parsed("--seed", 42)?;
    Ok(if args.has("--small") {
        (Scenario::small(seed), "small")
    } else {
        (Scenario::paper(seed), "paper")
    })
}

/// An archived corpus defines its own scenario; explicit `--small`/`--seed`
/// flags alongside `--archive` must agree with the manifest (nothing is
/// silently re-generated against different parameters).
fn check_archive_scenario(args: &Args, meta: &serde_json::Value) -> Result<(), String> {
    if args.has("--small") || args.get("--seed").is_some() {
        let (sc, mode) = scenario_of(args)?;
        if scenario_meta(&sc, mode) != *meta {
            return Err(format!(
                "--archive: the corpus does not hold the requested {mode} scenario \
                 (seed {}); drop the scenario flags or point at a matching archive",
                sc.seed
            ));
        }
    }
    Ok(())
}

/// Cold-start a full dataset from `--archive DIR`: open + verify the
/// corpus, cross-check any explicit scenario flags against its manifest,
/// and return the dataset with the archived scenario adopted.
fn archive_dataset(
    args: &Args,
    dir: &str,
) -> Result<(PipelineData, txstat_archive::Archive, String), String> {
    txstat_reports::pipeline::register_metrics();
    txstat_archive::register_metrics();
    let (data, archive) = pipeline_from_archive(std::path::Path::new(dir))?;
    let manifest = Manifest::parse(archive.manifest())?;
    check_archive_scenario(args, &manifest.meta)?;
    let (_, mode) = scenario_from_meta(&manifest.meta)?;
    Ok((data, archive, mode))
}

/// Arm the global tracer per `--trace-out FILE` (NDJSON span events) and
/// `--timings` (end-of-run stage summary). Either flag enables tracing;
/// with neither, spans stay inert (one relaxed load each).
fn init_tracing(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("--trace-out") {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("--trace-out: cannot create {path}: {e}"))?;
        txstat_telemetry::tracer().set_sink(Box::new(std::io::BufWriter::new(file)));
    }
    if args.has("--timings") {
        txstat_telemetry::tracer().enable();
    }
    Ok(())
}

/// Flush the trace sink and print the per-stage wall-time table when
/// `--timings` was given.
fn finish_tracing(args: &Args) {
    let tracer = txstat_telemetry::tracer();
    if args.has("--timings") {
        eprint!("{}", tracer.render_summary());
    }
    tracer.flush();
}


/// Dump the process-global metric registry (Prometheus text) to the
/// `--metrics-out` file, if given — the offline commands' equivalent of
/// serve's `GET /metrics`.
fn dump_metrics(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("--metrics-out") {
        std::fs::write(path, txstat_telemetry::registry().render_prometheus())
            .map_err(|e| format!("--metrics-out: cannot write {path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

fn write_output(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some("-") | None => {
            print!("{text}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("exhibits written to {path}");
            Ok(())
        }
    }
}

fn cmd_report(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--crawl", "--materialize", "--timings"],
        &["--seed", "--out", "--trace-out", "--archive", "--metrics-out"],
        false,
    )?;
    let (sc, _) = scenario_of(&args)?;
    init_tracing(&args)?;

    if let Some(dir) = args.get("--archive") {
        if args.has("--crawl") {
            return Err("report takes --archive or --crawl, not both".to_owned());
        }
        let started = std::time::Instant::now();
        let (data, archive, mode) = archive_dataset(&args, dir)?;
        eprintln!(
            "cold-started {mode} scenario (seed {}) from archive {dir}: {} segment(s), \
             {} block positions",
            data.scenario.seed,
            archive.segments().len(),
            archive.total_positions(),
        );
        eprintln!("pipeline ready in {:?}; rendering exhibits…", started.elapsed());
        let result = write_output(&render_report(&data), args.get("--out"));
        dump_metrics(&args)?;
        finish_tracing(&args);
        return result;
    }

    eprintln!(
        "scenario: {} .. {} (divisors: EOS 1/{}, Tezos 1/{}, XRP 1/{})",
        sc.period.start.date_string(),
        sc.period.end.date_string(),
        sc.eos_divisor,
        sc.tezos_divisor,
        sc.xrp_divisor
    );

    let started = std::time::Instant::now();
    let data = if args.has("--crawl") {
        let opts = if args.has("--small") { CrawlOptions::default() } else { CrawlOptions::paper() };
        let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
        if args.has("--materialize") {
            eprintln!("generating chains and crawling them over loopback RPC (materializing)…");
            rt.block_on(generate_with_crawl(&sc, &opts)).map_err(|e| e.to_string())?
        } else {
            eprintln!(
                "generating chains and streaming the crawl into {} sweep shards per chain…",
                opts.shards
            );
            rt.block_on(generate_with_crawl_streamed(&sc, &opts)).map_err(|e| e.to_string())?
        }
    } else {
        eprintln!("generating chains (direct read; pass --crawl for the full RPC path)…");
        generate(&sc)
    };
    if let Some(s) = &data.stream {
        eprintln!(
            "streamed: EOS {} blocks (peak buffer {}/{} per shard, {} stalls), \
             Tezos {} ({}, {} stalls), XRP {} ({}, {} stalls)",
            s.eos.streamed_blocks,
            s.eos.peak_buffered,
            s.eos.channel_capacity,
            s.eos.blocked_sends,
            s.tezos.streamed_blocks,
            s.tezos.peak_buffered,
            s.tezos.blocked_sends,
            s.xrp.streamed_blocks,
            s.xrp.peak_buffered,
            s.xrp.blocked_sends,
        );
    }
    eprintln!("pipeline ready in {:?}; rendering exhibits…", started.elapsed());
    let result = write_output(&render_report(&data), args.get("--out"));
    finish_tracing(&args);
    result
}

/// The `archive` subcommand: generate the scenario once (or, with
/// `--upgrade SRC`, replay an existing corpus) and seal it into the
/// on-disk segmented corpus that `report`/`shard`/`reduce`/`follow`/
/// `serve --archive DIR` cold-start from. `--format` picks the segment
/// payload schema: v2 columnar (default) or v1 wire-JSON.
fn cmd_archive(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--crawl", "--timings"],
        &[
            "--seed",
            "--out",
            "--segment-blocks",
            "--format",
            "--upgrade",
            "--trace-out",
            "--metrics-out",
        ],
        false,
    )?;
    init_tracing(&args)?;
    let out = args.get("--out").ok_or("archive needs --out DIR")?;
    let format = match args.get("--format") {
        None => SegmentFormat::default(),
        Some(s) => SegmentFormat::parse(s)?,
    };
    txstat_reports::pipeline::register_metrics();
    txstat_archive::register_metrics();
    let started = std::time::Instant::now();
    if let Some(src) = args.get("--upgrade") {
        if args.has("--crawl") {
            return Err("archive --upgrade replays an existing corpus; drop --crawl".to_owned());
        }
        return archive_upgrade(&args, src, out, format, started);
    }
    let (sc, mode) = scenario_of(&args)?;
    let segment_blocks: u64 = args.parsed("--segment-blocks", 256)?;
    if segment_blocks == 0 {
        return Err("--segment-blocks must be at least 1".to_owned());
    }
    let data = if args.has("--crawl") {
        let opts = if args.has("--small") { CrawlOptions::default() } else { CrawlOptions::paper() };
        eprintln!(
            "generating {mode} scenario (seed {}); crawling over loopback RPC; sealing archive…",
            sc.seed
        );
        // Materializing crawl: the corpus needs the block bytes, which the
        // streamed path deliberately never holds.
        let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
        rt.block_on(generate_with_crawl(&sc, &opts)).map_err(|e| e.to_string())?
    } else {
        eprintln!("generating {mode} scenario (seed {}); sealing {format} archive…", sc.seed);
        generate(&sc)
    };
    let stats = write_archive(std::path::Path::new(out), &data, mode, segment_blocks, format)?;
    eprintln!(
        "archive sealed in {:?}: {} segment(s) over {} block positions, \
         {} raw bytes -> {} compressed ({:.1}%) in {out}",
        started.elapsed(),
        stats.segments,
        stats.total_positions,
        stats.raw_bytes,
        stats.compressed_bytes,
        100.0 * stats.compressed_bytes as f64 / (stats.raw_bytes as f64).max(1.0),
    );
    dump_metrics(&args)?;
    finish_tracing(&args);
    Ok(())
}

/// Per-block wire-byte equality across all three chains — the schema-
/// independent identity check (a v1 and a v2 corpus of the same scenario
/// replay to the same wire bytes, hence the same report).
fn chains_wire_identical(a: &PipelineData, b: &PipelineData) -> bool {
    use txstat_reports::archive_io::{eos_block_bytes, tezos_block_bytes, xrp_block_bytes};
    a.eos_blocks.len() == b.eos_blocks.len()
        && a.tezos_blocks.len() == b.tezos_blocks.len()
        && a.xrp_blocks.len() == b.xrp_blocks.len()
        && a.eos_blocks
            .iter()
            .zip(b.eos_blocks.iter())
            .all(|(x, y)| eos_block_bytes(x) == eos_block_bytes(y))
        && a.tezos_blocks
            .iter()
            .zip(b.tezos_blocks.iter())
            .all(|(x, y)| tezos_block_bytes(x) == tezos_block_bytes(y))
        && a.xrp_blocks
            .iter()
            .zip(b.xrp_blocks.iter())
            .all(|(x, y)| xrp_block_bytes(x) == xrp_block_bytes(y))
}

/// `archive --upgrade SRC --out DIR`: replay the source corpus (whatever
/// mix of segment schemas it holds), re-seal it at `out` in the requested
/// format, and prove the rewrite lossless — the new corpus must replay
/// every chain byte-identical to the source. The scenario and (by
/// default) the segment geometry carry over from the source manifest.
fn archive_upgrade(
    args: &Args,
    src: &str,
    out: &str,
    format: SegmentFormat,
    started: std::time::Instant,
) -> Result<(), String> {
    let (data, src_archive, mode) = archive_dataset(args, src)?;
    let src_manifest = Manifest::parse(src_archive.manifest())?;
    let segment_blocks: u64 = args.parsed("--segment-blocks", src_manifest.segment_blocks)?;
    if segment_blocks == 0 {
        return Err("--segment-blocks must be at least 1".to_owned());
    }
    eprintln!(
        "replayed {mode} corpus {src} ({} segment(s)); re-sealing as {format}…",
        src_archive.segments().len()
    );
    let stats = write_archive(std::path::Path::new(out), &data, &mode, segment_blocks, format)?;
    let (replayed, _) = pipeline_from_archive(std::path::Path::new(out))?;
    if !chains_wire_identical(&replayed, &data) {
        return Err(format!(
            "upgrade verification diverged: {out} does not replay byte-identical to {src}"
        ));
    }
    eprintln!(
        "upgraded in {:?}: {} segment(s) over {} block positions, \
         {} raw bytes -> {} compressed ({:.1}%) in {out}; replay verified byte-identical",
        started.elapsed(),
        stats.segments,
        stats.total_positions,
        stats.raw_bytes,
        stats.compressed_bytes,
        100.0 * stats.compressed_bytes as f64 / (stats.raw_bytes as f64).max(1.0),
    );
    dump_metrics(args)?;
    finish_tracing(args);
    Ok(())
}

fn parse_range(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("--range wants A..B (block positions), got {s:?}"))?;
    let start: u64 = a.parse().map_err(|_| format!("--range: bad start {a:?}"))?;
    let end: u64 = b.parse().map_err(|_| format!("--range: bad end {b:?}"))?;
    if start > end {
        return Err(format!("--range: inverted range {s:?}"));
    }
    Ok((start, end))
}

/// The shard worker's prepared state plus the assignment meta it accepts:
/// generated from the scenario flags, or cold-started from `--archive DIR`
/// (no chain generation — assignments replay only their covering
/// segments). Both paths register the generation and archive metric
/// families, so `--metrics-out` always carries
/// `txstat_pipeline_generate_total` and `txstat_archive_*` (zero when
/// idle) and tests can pin which path ran.
fn shard_context_of(args: &Args) -> Result<(ShardContext, serde_json::Value), String> {
    txstat_reports::pipeline::register_metrics();
    txstat_archive::register_metrics();
    match args.get("--archive") {
        Some(dir) => {
            let cache_mb: u64 = args
                .parsed("--segment-cache-mb", txstat_reports::DEFAULT_SEGMENT_CACHE_MB)?;
            let (ctx, manifest) =
                ShardContext::from_archive_with(std::path::Path::new(dir), cache_mb)?;
            check_archive_scenario(args, &manifest.meta)?;
            eprintln!(
                "cold-started from archive {dir}: {} block positions mapped, \
                 no chains generated ({cache_mb} MiB decoded-segment cache)",
                ctx.total_blocks()
            );
            Ok((ctx, manifest.meta))
        }
        None => {
            let (sc, mode) = scenario_of(args)?;
            eprintln!("generating {mode} scenario (seed {})…", sc.seed);
            Ok((ShardContext::new(&sc), scenario_meta(&sc, mode)))
        }
    }
}

/// Socket worker mode of `shard`: bind, announce the address, and answer
/// fleet range assignments against one prepared context until the
/// request budget (if any) is spent.
fn shard_listen(args: &Args, listen: &str) -> Result<(), String> {
    let max_requests: Option<u64> = match args.get("--max-requests") {
        None => None,
        Some(s) => {
            Some(s.parse().map_err(|_| format!("--max-requests: cannot parse {s:?}"))?)
        }
    };
    let timeout_ms: u64 = args.parsed("--timeout-ms", 10_000)?;
    txstat_ingest::fleet::register_metrics();
    let (ctx, expected) = shard_context_of(args)?;
    eprintln!("serving shard assignments…");
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // Scripts scrape this line for the bound address.
    println!("shard worker on {addr}");
    std::io::stdout().flush().ok();
    let served =
        serve_assignments(&listener, max_requests, Duration::from_millis(timeout_ms), |a| {
            if a.meta != expected {
                return Err(
                    "assignment meta does not describe this worker's scenario".to_owned()
                );
            }
            eprintln!(
                "assignment [{}, {}): {} shard(s), {} payload",
                a.start,
                a.end,
                a.shards,
                a.payload.tag()
            );
            ctx.frames(a.meta.clone(), a.start, a.end, a.shards, a.payload)
        })
        .map_err(|e| format!("worker accept loop: {e}"))?;
    eprintln!("worker served {served} assignment(s); exiting");
    if let Some(s) = ctx.cache_stats() {
        eprintln!(
            "segment cache: {} hit(s), {} miss(es), {} eviction(s), {} byte(s) resident",
            s.hits, s.misses, s.evictions, s.bytes
        );
    }
    dump_metrics(args)?;
    Ok(())
}

fn cmd_shard(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--timings"],
        &[
            "--seed",
            "--out",
            "--range",
            "--shards",
            "--payload",
            "--trace-out",
            "--listen",
            "--max-requests",
            "--timeout-ms",
            "--metrics-out",
            "--archive",
            "--segment-cache-mb",
        ],
        false,
    )?;
    init_tracing(&args)?;
    if let Some(listen) = args.get("--listen") {
        let result = shard_listen(&args, listen);
        finish_tracing(&args);
        return result;
    }
    let (start, end) =
        parse_range(args.get("--range").ok_or("shard needs --range A..B (or --listen ADDR)")?)?;
    let out = args.get("--out").ok_or("shard needs --out FILE (\"-\" for stdout)")?;
    let shards: usize = args.parsed("--shards", 2)?;
    let payload = match args.get("--payload") {
        None => PayloadFormat::Bin,
        Some(s) => PayloadFormat::parse(s)
            .ok_or_else(|| format!("--payload wants json or bin, got {s:?}"))?,
    };

    let started = std::time::Instant::now();
    let (ctx, meta) = shard_context_of(&args)?;
    let frames = ctx.frames(meta, start, end, shards, payload)?;
    for f in &frames {
        eprintln!(
            "{}: swept positions [{}, {}) — {} blocks (schema v{}, {} payload)",
            f.header.chain,
            f.header.start,
            f.header.end,
            f.header.blocks,
            f.header.schema_version,
            f.header.payload_format.tag(),
        );
    }
    let bytes = txstat_wire::encode_all(&frames);
    match out {
        "-" => std::io::stdout()
            .write_all(&bytes)
            .map_err(|e| format!("cannot write frames to stdout: {e}"))?,
        path => std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?,
    }
    eprintln!(
        "{} frames ({} bytes) emitted in {:?} to {}",
        frames.len(),
        bytes.len(),
        started.elapsed(),
        out
    );
    dump_metrics(&args)?;
    finish_tracing(&args);
    Ok(())
}

/// Fleet mode of `reduce`: tile the sweep into chunks and drive the
/// `--connect` workers through the retry/backoff/re-dispatch loop, then
/// merge whatever frames the survivors produced.
fn reduce_fleet_mode(args: &Args, connect: &str) -> Result<PipelineData, String> {
    let workers: Vec<String> = connect
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    let shards: usize = args.parsed("--shards", 2)?;
    let payload = match args.get("--payload") {
        None => PayloadFormat::Bin,
        Some(s) => PayloadFormat::parse(s)
            .ok_or_else(|| format!("--payload wants json or bin, got {s:?}"))?,
    };
    txstat_ingest::fleet::register_metrics();
    // The reducer's own dataset: cold-started from the corpus with
    // `--archive` (the scenario comes from the manifest), generated from
    // the scenario flags otherwise.
    let (data, mode) = match args.get("--archive") {
        Some(dir) => {
            let (data, archive, mode) = archive_dataset(args, dir)?;
            eprintln!(
                "cold-started reducer dataset from archive {dir} ({} segment(s))",
                archive.segments().len()
            );
            (data, mode)
        }
        None => {
            let (sc, mode) = scenario_of(args)?;
            eprintln!("generating {mode} scenario (seed {})…", sc.seed);
            (generate(&sc), mode.to_owned())
        }
    };
    let sc = data.scenario.clone();
    let mut cfg = FleetConfig::new(workers);
    cfg.chunks = args.parsed("--chunks", 0)?;
    cfg.timeout = Duration::from_millis(args.parsed("--timeout-ms", 10_000)?);
    cfg.retries = args.parsed("--retries", 4)?;
    cfg.backoff_ms = args.parsed("--backoff-ms", 50)?;
    cfg.seed = sc.seed;
    eprintln!("driving {} worker(s)…", cfg.workers.len());
    let total = data
        .eos_blocks
        .len()
        .max(data.tezos_blocks.len())
        .max(data.xrp_blocks.len()) as u64;
    let labeled = reduce_fleet(&cfg, total, shards, payload, scenario_meta(&sc, &mode))
        .map_err(|e| e.to_string())?;
    eprintln!("fleet returned {} frames; merging…", labeled.len());
    reduce_frames_labeled_into(data, &labeled)
}

fn cmd_reduce(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--timings"],
        &[
            "--out",
            "--trace-out",
            "--connect",
            "--seed",
            "--shards",
            "--payload",
            "--chunks",
            "--timeout-ms",
            "--retries",
            "--backoff-ms",
            "--metrics-out",
            "--archive",
        ],
        true,
    )?;
    init_tracing(&args)?;
    let started = std::time::Instant::now();
    let data = if let Some(connect) = args.get("--connect") {
        if !args.positionals.is_empty() {
            return Err("reduce takes frame files or --connect, not both".to_owned());
        }
        reduce_fleet_mode(&args, connect)?
    } else {
        if args.get("--archive").is_some() {
            return Err("reduce --archive needs --connect (the cold-start is fleet mode; \
                        file mode takes its scenario from the frames)"
                .to_owned());
        }
        if args.positionals.is_empty() {
            return Err(
                "reduce needs at least one frame file (or --connect ADDR,...)".to_owned()
            );
        }
        let mut labeled: Vec<(String, ShardFrame)> = Vec::new();
        for path in &args.positionals {
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let decoded =
                txstat_wire::decode_all(&bytes).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("{path}: {} frames", decoded.len());
            labeled.extend(decoded.into_iter().map(|f| (path.clone(), f)));
        }
        let meta =
            labeled.first().map(|(_, f)| f.header.meta.clone()).ok_or("no frames found")?;
        let (sc, mode) = scenario_from_meta(&meta)?;
        eprintln!(
            "reducing {} frames of the {mode} scenario (seed {})…",
            labeled.len(),
            sc.seed
        );
        reduce_frames_labeled(&sc, &labeled)?
    };
    eprintln!("reduction ready in {:?}; rendering exhibits…", started.elapsed());
    let result = write_output(&render_report(&data), args.get("--out"));
    dump_metrics(&args)?;
    finish_tracing(&args);
    result
}

/// Advance all three chain followers over one global batch window of the
/// dataset (clamped per chain — a chain shorter than the window no-ops
/// once it is exhausted).
fn advance_all(
    d: &PipelineData,
    offset: usize,
    hi: usize,
    eos_f: &mut ChainFollow<EosColumnar>,
    tz_f: &mut ChainFollow<TezosColumnar>,
    xrp_f: &mut ChainFollow<XrpColumnar>,
) -> Result<(), String> {
    let take = |n: usize| offset.min(n)..hi.min(n);
    eos_f
        .advance(
            &d.eos_blocks[take(d.eos_blocks.len())],
            |b| b.num,
            |a, _n, b| a.observe(b),
            eos_block_hash,
        )
        .map_err(|e| e.to_string())?;
    tz_f.advance(
        &d.tezos_blocks[take(d.tezos_blocks.len())],
        |b| b.level,
        |a, _n, b| a.observe(b),
        tezos_block_hash,
    )
    .map_err(|e| e.to_string())?;
    xrp_f
        .advance(
            &d.xrp_blocks[take(d.xrp_blocks.len())],
            |b| b.index,
            |a, _n, b| a.observe(b, &d.oracle),
            xrp_block_hash,
        )
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Drive one follower from wherever it stands to the head of `blocks` in
/// `batch`-sized rounds — the post-rollback re-sweep. Positions are
/// contiguous from the follower's origin, so its observed count is also
/// its resume offset.
fn drive_to_head<A: Clone, B>(
    f: &mut ChainFollow<A>,
    blocks: &[B],
    batch: usize,
    num: impl Fn(&B) -> u64,
    observe: impl Fn(&mut A, u64, &B),
    hash: impl Fn(&B) -> u64,
) -> Result<(), String> {
    let mut offset = f.observed() as usize;
    while offset < blocks.len() {
        let hi = (offset + batch).min(blocks.len());
        f.advance(&blocks[offset..hi], &num, &observe, &hash).map_err(|e| e.to_string())?;
        offset = hi;
    }
    Ok(())
}

/// Seal the follow loop's observed-but-not-yet-archived positions
/// `[writer.total_positions(), upto)` as segments of `seg_blocks`
/// positions. A runt tail — the previous seal's trailing segment spanning
/// fewer than `seg_blocks` positions — is first truncated and re-sealed
/// merged with the new batch (its blocks are still in `d`), so a batch
/// smaller than the segment size coalesces instead of fragmenting the
/// corpus into one segment per batch. Each coalesce also bumps the
/// `coalesced="true"` label of `txstat_archive_segments_written_total`.
fn archive_append_to(
    w: &mut txstat_archive::ArchiveWriter,
    d: &PipelineData,
    upto: usize,
    seg_blocks: u64,
    format: SegmentFormat,
) -> Result<(), String> {
    if let Some(last) = w.segments().last() {
        if last.end - last.start < seg_blocks && (upto as u64) > w.total_positions() {
            let runt_start = last.start;
            w.truncate_from(runt_start).map_err(|e| format!("archive coalesce: {e}"))?;
            txstat_archive::m_written_coalesced().inc();
        }
    }
    let from = w.total_positions();
    let cap = |len: usize| upto.min(len);
    for seg in txstat_reports::archive_io::segments_of_from(
        &d.eos_blocks[..cap(d.eos_blocks.len())],
        &d.tezos_blocks[..cap(d.tezos_blocks.len())],
        &d.xrp_blocks[..cap(d.xrp_blocks.len())],
        seg_blocks,
        from,
        format,
    ) {
        w.append(&seg).map_err(|e| format!("archive append: {e}"))?;
    }
    Ok(())
}

fn cmd_follow(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--timings"],
        &[
            "--seed",
            "--out",
            "--batch",
            "--shards",
            "--trace-out",
            "--snapshots",
            "--reorg-at-batch",
            "--reorg-depth",
            "--reorg-seed",
            "--metrics-out",
            "--archive",
            "--segment-blocks",
            "--format",
        ],
        false,
    )?;
    let (sc, mode) = scenario_of(&args)?;
    init_tracing(&args)?;
    let batch: usize = args.parsed("--batch", 500)?;
    if batch == 0 {
        return Err("--batch must be positive".to_owned());
    }
    let shards: usize = args.parsed("--shards", 2)?;
    let shards = shards.max(1);
    let window: usize =
        args.parsed("--snapshots", txstat_ingest::follow::DEFAULT_SNAPSHOT_WINDOW)?;
    let reorg_at: Option<u64> = match args.get("--reorg-at-batch") {
        None => None,
        Some(s) => {
            Some(s.parse().map_err(|_| format!("--reorg-at-batch: cannot parse {s:?}"))?)
        }
    };
    let reorg_depth: usize = args.parsed("--reorg-depth", batch)?;
    let reorg_seed: u64 = args.parsed("--reorg-seed", 1)?;
    txstat_ingest::follow::register_metrics();
    txstat_reports::pipeline::register_metrics();
    txstat_archive::register_metrics();

    // With --archive: cold-start from the corpus when one exists there,
    // otherwise generate and create it; either way each observed batch is
    // sealed into the corpus, coalescing a runt tail up to
    // --segment-blocks positions (default: the batch size, or the corpus's
    // own segment geometry when cold-starting).
    let seg_blocks_flag: Option<u64> = match args.get("--segment-blocks") {
        None => None,
        Some(s) => {
            Some(s.parse().map_err(|_| format!("--segment-blocks: cannot parse {s:?}"))?)
        }
    };
    if seg_blocks_flag == Some(0) {
        return Err("--segment-blocks must be at least 1".to_owned());
    }
    let seg_format = match args.get("--format") {
        None => SegmentFormat::default(),
        Some(s) => SegmentFormat::parse(s)?,
    };
    let (data, mut writer, seg_blocks) = match args.get("--archive") {
        Some(dir) => {
            let path = std::path::Path::new(dir);
            if path.join(txstat_archive::IDX_FILE).exists() {
                let (data, archive, mode) = archive_dataset(&args, dir)?;
                let manifest = Manifest::parse(archive.manifest())?;
                eprintln!(
                    "cold-started {mode} scenario from archive {dir}; following head in \
                     batches of {batch} blocks per chain…"
                );
                let writer = archive
                    .into_writer()
                    .map_err(|e| format!("archive {dir}: {e}"))?;
                (data, Some(writer), seg_blocks_flag.unwrap_or(manifest.segment_blocks))
            } else {
                let seg_blocks = seg_blocks_flag.unwrap_or(batch as u64);
                eprintln!(
                    "generating chains; creating archive {dir} and following head in \
                     batches of {batch} blocks per chain…"
                );
                let data = generate(&sc);
                let writer = txstat_reports::create_archive_writer(path, &data, mode, seg_blocks)?;
                (data, Some(writer), seg_blocks)
            }
        }
        None => {
            eprintln!("generating chains; following head in batches of {batch} blocks per chain…");
            (generate(&sc), None, seg_blocks_flag.unwrap_or(batch as u64))
        }
    };
    let period = data.scenario.period;

    // One mark-sealing follower per chain: each batch appends a tail
    // through the checkpoint (the observed prefix is never re-swept) and
    // seals a content mark, so a later reorg is detected by mark and
    // invalidates only its suffix.
    let mut eos_f = ChainFollow::new(
        "eos",
        Checkpoint::new(
            vec![EosColumnar::new(period); shards],
            data.eos_blocks.first().map_or(1, |b| b.num),
        ),
        window,
    );
    let mut tz_f = ChainFollow::new(
        "tezos",
        Checkpoint::new(
            vec![TezosColumnar::new(period, data.governance_periods.clone()); shards],
            data.tezos_blocks.first().map_or(1, |b| b.level),
        ),
        window,
    );
    let mut xrp_f = ChainFollow::new(
        "xrp",
        Checkpoint::new(
            vec![XrpColumnar::new(period); shards],
            data.xrp_blocks.first().map_or(1, |b| b.index),
        ),
        window,
    );

    let total = data
        .eos_blocks
        .len()
        .max(data.tezos_blocks.len())
        .max(data.xrp_blocks.len());
    let mut offset = 0usize;
    let mut round = 0u64;
    while offset < total {
        let _span = txstat_telemetry::Span::enter("follow_batch", "");
        let hi = (offset + batch).min(total);
        advance_all(&data, offset, hi, &mut eos_f, &mut tz_f, &mut xrp_f)?;
        round += 1;
        // Seal this batch's positions into the corpus (a no-op when a
        // cold-started archive already covers them).
        if let Some(w) = writer.as_mut() {
            if (hi as u64) > w.total_positions() {
                archive_append_to(w, &data, hi, seg_blocks, seg_format)?;
            }
        }

        // Re-render the headline statistics from the merged (cloned) shard
        // state — O(shards) merges, no prefix re-sweep.
        let eos = eos_f.checkpoint().merged(|a, b| a.merge(b)).finalize();
        let tz = tz_f.checkpoint().merged(|a, b| a.merge(b)).finalize();
        let xrp = xrp_f.checkpoint().merged(|a, b| a.merge(b)).finalize();
        eprintln!(
            "batch {round:>4}: EOS {:>7} blocks ({:.2} tps) | Tezos {:>7} ({:.2} tps) | XRP {:>7} ({:.2} tps)",
            eos_f.observed(),
            eos.tps(),
            tz_f.observed(),
            tz.tps(),
            xrp_f.observed(),
            xrp.tps(),
        );
        offset = hi;
        if reorg_at == Some(round) {
            break;
        }
    }

    // Head (or the reorg trigger batch) reached: pick the dataset the
    // report renders against, reorging + resyncing first if asked.
    let (final_data, verify_against) = if let Some(r) = reorg_at {
        if round < r {
            return Err(format!(
                "--reorg-at-batch {r}: the head was reached after {round} batches"
            ));
        }
        let from = offset.saturating_sub(reorg_depth);
        eprintln!("injecting reorg: rewriting block positions {from}.. (seed {reorg_seed})");
        let reorged = reorg_data(&data, from, reorg_seed);
        // The corpus rolls back exactly like the followers: only segments
        // overlapping the rewritten suffix are dropped, then the tail is
        // re-sealed from the reorged chains.
        if let Some(w) = writer.as_mut() {
            let dropped =
                w.truncate_from(from as u64).map_err(|e| format!("archive truncate: {e}"))?;
            eprintln!(
                "archive: reorg invalidated {dropped} segment(s); re-sealing from position {}",
                w.total_positions()
            );
            archive_append_to(w, &reorged, total, seg_blocks, seg_format)?;
        }
        for (r, chain) in [
            (eos_f.resync(&reorged.eos_blocks, eos_block_hash), "eos"),
            (tz_f.resync(&reorged.tezos_blocks, tezos_block_hash), "tezos"),
            (xrp_f.resync(&reorged.xrp_blocks, xrp_block_hash), "xrp"),
        ] {
            eprintln!(
                "resync {chain}: {} mark(s) agreed, {} invalidated{}; resuming at position {}",
                r.agreed,
                r.invalidated,
                if r.rebuilt { " (rebuilt from scratch)" } else { "" },
                r.resume,
            );
        }
        drive_to_head(
            &mut eos_f,
            &reorged.eos_blocks,
            batch,
            |b| b.num,
            |a, _n, b| a.observe(b),
            eos_block_hash,
        )?;
        drive_to_head(
            &mut tz_f,
            &reorged.tezos_blocks,
            batch,
            |b| b.level,
            |a, _n, b| a.observe(b),
            tezos_block_hash,
        )?;
        drive_to_head(
            &mut xrp_f,
            &reorged.xrp_blocks,
            batch,
            |b| b.index,
            |a, _n, b| a.observe(b, &reorged.oracle),
            xrp_block_hash,
        )?;
        // From-scratch truth over the same reorged chain for the
        // byte-identity check (fresh dataset, lazily re-swept sweeps).
        let scratch = reorg_data(&data, from, reorg_seed);
        (reorged, Some(scratch))
    } else {
        (data, None)
    };

    // The followers now cover the whole (possibly reorged) chains. Render
    // the full report from their merged state — identical to `report`.
    let sweeps = ChainSweeps {
        eos: eos_f.checkpoint().merged(|a, b| a.merge(b)).finalize(),
        tezos: tz_f.checkpoint().merged(|a, b| a.merge(b)).finalize(),
        xrp: xrp_f.checkpoint().merged(|a, b| a.merge(b)).finalize(),
    };
    assert!(final_data.install_sweeps(sweeps), "follow computed no report sweeps");
    let report = render_report(&final_data);
    if let Some(scratch) = verify_against {
        if report != render_report(&scratch) {
            return Err("reorg recovery diverged: the followed report is not byte-identical \
                        to a from-scratch sweep of the reorged chain"
                .to_owned());
        }
        eprintln!("reorg recovery verified: report byte-identical to a from-scratch sweep");
    }
    // Seal the corpus index and prove the round trip: reopening the
    // archive must replay every chain byte-identical to what the follow
    // loop observed (including any reorged suffix).
    if let Some(w) = writer.take() {
        w.seal().map_err(|e| format!("archive seal: {e}"))?;
        let dir = args.get("--archive").expect("writer implies --archive");
        let (replayed, archive) = pipeline_from_archive(std::path::Path::new(dir))?;
        if !chains_wire_identical(&replayed, &final_data) {
            return Err(format!(
                "archive verification diverged: {dir} does not replay byte-identical \
                 to the followed chains"
            ));
        }
        eprintln!(
            "archive verified: {} segment(s) replay byte-identical to the followed chains",
            archive.segments().len()
        );
    }
    let result = write_output(&report, args.get("--out"));
    dump_metrics(&args)?;
    finish_tracing(&args);
    result
}

/// The `chaos` subcommand: a standalone fault-injecting TCP proxy (see
/// `txstat_netsim::chaos`) for placing between a fleet reducer and its
/// workers.
fn cmd_chaos(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &[],
        &[
            "--listen",
            "--upstream",
            "--fault-rate",
            "--truncate-rate",
            "--flip-rate",
            "--latency-ms",
            "--jitter-ms",
            "--seed",
            "--max-seconds",
        ],
        false,
    )?;
    let upstream = args.get("--upstream").ok_or("chaos needs --upstream HOST:PORT")?.to_owned();
    let listen = args.get("--listen").unwrap_or("127.0.0.1:0").to_owned();
    let profile = ChaosProfile {
        name: "cli".to_owned(),
        latency_ms: args.parsed("--latency-ms", 0.0)?,
        jitter_ms: args.parsed("--jitter-ms", 0.0)?,
        fault_rate: args.parsed("--fault-rate", 0.0)?,
        truncate_rate: args.parsed("--truncate-rate", 0.0)?,
        flip_rate: args.parsed("--flip-rate", 0.0)?,
        seed: args.parsed("--seed", 42)?,
    };
    let handle = spawn_chaos_proxy(&listen, upstream.clone(), profile)
        .map_err(|e| format!("cannot start chaos proxy on {listen}: {e}"))?;
    // Scripts scrape this line for the bound address.
    println!("chaos proxy on {} -> {upstream}", handle.addr);
    std::io::stdout().flush().ok();
    let max_seconds: u64 = args.parsed("--max-seconds", 0)?;
    if max_seconds == 0 {
        // Run until killed (CI kills the whole process).
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(max_seconds));
    let s = &handle.stats;
    eprintln!(
        "chaos proxy: {} connection(s) relayed, {} reset, {} truncated, {} bit-flipped",
        s.connections.get(),
        s.resets.get(),
        s.truncations.get(),
        s.flips.get(),
    );
    handle.stop();
    Ok(())
}

/// Derive one known-present `/account/...` path per chain from the served
/// sweeps (the busiest account of each), for load mixes and smoke tests.
fn sample_account_paths(data: &PipelineData) -> Vec<String> {
    let sweeps = data.sweeps();
    let mut out = Vec::new();
    if let Some(r) = sweeps.eos.top_received(1).into_iter().next() {
        out.push(format!("/account/eos/{}", r.account.to_string_repr()));
    }
    if let Some(s) = sweeps.tezos.top_senders(1).into_iter().next() {
        out.push(format!("/account/tezos/{}", s.sender));
    }
    if let Some(a) = sweeps.xrp.most_active(1, &data.cluster).into_iter().next() {
        out.push(format!("/account/xrp/{}", a.account));
    }
    out
}

fn cmd_serve(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--small", "--load", "--timings"],
        &[
            "--seed",
            "--port",
            "--batch",
            "--shards",
            "--epoch-ms",
            "--rate",
            "--burst",
            "--max-inflight",
            "--conns",
            "--reqs",
            "--trace-out",
            "--archive",
        ],
        false,
    )?;
    let (sc, mode) = scenario_of(&args)?;
    init_tracing(&args)?;
    let port: u16 = args.parsed("--port", 0)?;
    let batch: usize = args.parsed("--batch", 20_000)?;
    if batch == 0 {
        return Err("--batch must be positive".to_owned());
    }
    let shards: usize = args.parsed("--shards", 2)?;
    let epoch_ms: u64 = args.parsed("--epoch-ms", 0)?;
    let rate: f64 = args.parsed("--rate", 50_000.0)?;
    let burst: f64 = args.parsed("--burst", 5_000.0)?;
    let max_inflight: u64 = args.parsed("--max-inflight", 256)?;

    // The serve path exports through the process-global registry so
    // `/metrics` carries every layer's families (ingest counters from the
    // shard pools, reduce/epoch progress from the follow loop, serve route
    // stats) in one exposition.
    let registry = txstat_telemetry::registry().clone();
    // Fleet, follow, generation, and archive families render at zero even
    // when this process never runs them — dashboards can rely on their
    // presence.
    txstat_ingest::fleet::register_metrics();
    txstat_ingest::follow::register_metrics();
    txstat_reports::pipeline::register_metrics();
    txstat_archive::register_metrics();
    let data = match args.get("--archive") {
        Some(dir) => {
            let (data, _archive, archived_mode) = archive_dataset(&args, dir)?;
            eprintln!(
                "cold-started {archived_mode} scenario (seed {}) from archive {dir}; \
                 serving in epochs of {batch} blocks…",
                data.scenario.seed
            );
            data
        }
        None => {
            eprintln!(
                "generating {mode} scenario (seed {}); serving in epochs of {batch} blocks…",
                sc.seed
            );
            generate(&sc)
        }
    };
    let mut follower = EpochFollower::new(data, batch, shards);
    follower.bind_metrics(&registry);
    // First epoch before accepting queries, so every response has sweeps.
    let first = follower.advance()?;
    let mut epoch = 1u64;
    let cell =
        Arc::new(EpochCell::new(Arc::new(ServeSnapshot::new(epoch, follower.head(), first))));
    let service = Arc::new(StatsService::with_registry(cell.clone(), registry.clone()));

    let rt = tokio::runtime::Runtime::new().map_err(|e| e.to_string())?;
    rt.block_on(async {
        let handler: Arc<dyn HttpHandler> = service.clone();
        let server = spawn_query_server(
            handler,
            QueryServerConfig {
                name: "stats-serve".to_owned(),
                bind: format!("127.0.0.1:{port}"),
                rate_per_sec: rate,
                burst,
                max_in_flight: max_inflight,
            },
        )
        .await
        .map_err(|e| e.to_string())?;
        // Route-class counters (requests/served/shed/bytes/latency) join
        // the same registry the service exposes on /metrics.
        server.routes.register_into(&registry);
        // Scripts scrape this line for the bound address.
        println!("serving on http://{}", server.addr);
        std::io::stdout().flush().ok();

        while !follower.head() {
            if epoch_ms > 0 {
                std::thread::sleep(Duration::from_millis(epoch_ms));
            }
            let fork = follower.advance()?;
            epoch += 1;
            let head = follower.head();
            cell.publish(Arc::new(ServeSnapshot::new(epoch, head, fork)));
            let (e, t, x) = follower.observed();
            eprintln!(
                "epoch {epoch}: EOS {e} | Tezos {t} | XRP {x} blocks observed{}",
                if head { " — head reached" } else { "" }
            );
        }

        if args.has("--load") {
            let conns: usize = args.parsed("--conns", 64)?;
            let reqs: usize = args.parsed("--reqs", 200)?;
            let snap = service.snapshot();
            let mut paths: Vec<String> = ["headline", "fig1", "fig4", "fig7", "fig8", "comparison"]
                .iter()
                .map(|n| format!("/exhibit/{n}"))
                .collect();
            paths.push("/report".to_owned());
            paths.extend(sample_account_paths(snap.data()));
            let plan = LoadPlan { connections: conns, requests_per_conn: reqs, paths };
            eprintln!(
                "load: {conns} connections × {reqs} requests over {} paths…",
                plan.paths.len()
            );
            let report = run_load(server.addr, &plan).await;
            println!(
                "load: {} requests in {:.2?} → {:.0} req/s | ok {} shed {} errors {} | \
                 p50 {}µs p99 {}µs max {}µs | cache hits {} misses {}",
                report.sent,
                report.elapsed,
                report.req_per_sec(),
                report.ok,
                report.shed,
                report.errors,
                report.p50_us,
                report.p99_us,
                report.max_us,
                service.cache_hits.get(),
                service.cache_misses.get(),
            );
            finish_tracing(&args);
            return Ok(());
        }

        eprintln!("head reached; serving until POST /admin/shutdown…");
        while !service.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(25));
        }
        eprintln!("shutdown requested; exiting");
        finish_tracing(&args);
        Ok(())
    })
}

async fn http_fetch(
    addr: std::net::SocketAddr,
    req: &HttpRequest,
) -> Result<HttpResponse, String> {
    let sock = tokio::net::TcpStream::connect(addr).await.map_err(|e| e.to_string())?;
    let mut stream = tokio::io::BufStream::new(sock);
    write_request(&mut stream, req).await.map_err(|e| e.to_string())?;
    read_response(&mut stream).await.map_err(|e| e.to_string())
}

fn write_bytes(bytes: &[u8], out: Option<&str>) -> Result<(), String> {
    match out {
        None | Some("-") => std::io::stdout().write_all(bytes).map_err(|e| e.to_string()),
        Some(path) => std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}")),
    }
}

fn cmd_query(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["--shutdown"],
        &["--addr", "--wait-head", "--expect-status", "--out"],
        true,
    )?;
    let addr: std::net::SocketAddr = args
        .get("--addr")
        .ok_or("--addr HOST:PORT is required")?
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .parse()
        .map_err(|_| "--addr: cannot parse HOST:PORT".to_owned())?;
    if args.positionals.is_empty() && !args.has("--shutdown") && args.get("--wait-head").is_none()
    {
        return Err("query needs at least one PATH (or --wait-head / --shutdown)".to_owned());
    }
    let expect: Option<u16> = match args.get("--expect-status") {
        None => None,
        Some(s) => {
            Some(s.parse().map_err(|_| format!("--expect-status: cannot parse {s:?}"))?)
        }
    };
    let rt = tokio::runtime::Runtime::new().map_err(|e| e.to_string())?;
    rt.block_on(async {
        // The server prints its address before the follow loop starts, but
        // give slow starts a grace period anyway.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match http_fetch(addr, &HttpRequest::get("/healthz")).await {
                Ok(_) => break,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(format!("cannot reach {addr}: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        if let Some(secs) = args.get("--wait-head") {
            let secs: u64 =
                secs.parse().map_err(|_| format!("--wait-head: cannot parse {secs:?}"))?;
            let deadline = Instant::now() + Duration::from_secs(secs);
            loop {
                let resp =
                    http_fetch(addr, &HttpRequest::get("/healthz")).await.map_err(|e| e.to_string())?;
                if String::from_utf8_lossy(&resp.body).contains("\"head\":true") {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(format!("server did not reach head within {secs}s"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        let mut out: Vec<u8> = Vec::new();
        for path in &args.positionals {
            let resp =
                http_fetch(addr, &HttpRequest::get(path)).await.map_err(|e| e.to_string())?;
            if let Some(code) = expect {
                if resp.status != code {
                    return Err(format!(
                        "{path}: expected status {code}, got {} {}",
                        resp.status, resp.reason
                    ));
                }
            }
            out.extend_from_slice(&resp.body);
        }
        if args.has("--shutdown") {
            let resp = http_fetch(addr, &HttpRequest::post("/admin/shutdown", Vec::new()))
                .await
                .map_err(|e| e.to_string())?;
            if !resp.is_ok() {
                return Err(format!("shutdown failed: {} {}", resp.status, resp.reason));
            }
        }
        write_bytes(&out, args.get("--out"))
    })
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None => cmd_report(&[]),
        Some("report") => cmd_report(&argv[1..]),
        Some("archive") => cmd_archive(&argv[1..]),
        Some("shard") => cmd_shard(&argv[1..]),
        Some("reduce") => cmd_reduce(&argv[1..]),
        Some("follow") => cmd_follow(&argv[1..]),
        Some("chaos") => cmd_chaos(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("query") => cmd_query(&argv[1..]),
        Some(flag) if flag.starts_with('-') => {
            // Compatibility shim: the pre-subcommand spelling is a report.
            cmd_report(&argv)
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
