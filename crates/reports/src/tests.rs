//! Reports-crate tests: exhibit rendering, pipeline assembly, comparison
//! coverage — on a compact scenario.

use crate::pipeline::{generate, local_storage_stats};
use crate::{comparison, exhibits, render_comparison};
use txstat_types::time::{ChainTime, Period};
use txstat_workload::Scenario;

fn tiny() -> crate::PipelineData {
    let mut sc = Scenario::small(99);
    sc.period = Period::new(
        ChainTime::from_ymd(2019, 10, 28),
        ChainTime::from_ymd(2019, 11, 3),
    );
    generate(&sc)
}

#[test]
fn every_exhibit_renders_nonempty() {
    let data = tiny();
    for (name, text) in [
        ("fig1", exhibits::fig1(&data)),
        ("fig2", exhibits::fig2(&data)),
        ("fig3", exhibits::fig3(&data)),
        ("fig4", exhibits::fig4(&data)),
        ("fig5", exhibits::fig5(&data)),
        ("fig6", exhibits::fig6(&data)),
        ("fig7", exhibits::fig7(&data)),
        ("fig8", exhibits::fig8(&data)),
        ("fig9", exhibits::fig9(&data)),
        ("fig11", exhibits::fig11(&data)),
        ("fig12", exhibits::fig12(&data)),
        ("headline", exhibits::headline(&data)),
        ("case_studies", exhibits::case_studies(&data)),
    ] {
        assert!(text.len() > 80, "{name} renders substantively ({} bytes)", text.len());
        assert!(!text.contains("NaN"), "{name} has no NaN artifacts");
    }
}

#[test]
fn fig1_percentages_sum_to_about_100() {
    let data = tiny();
    let text = exhibits::fig1(&data);
    // Every chain's table ends with a Total row at 100.0.
    assert_eq!(text.matches("100.0").count(), 3, "{text}");
}

#[test]
fn fig6_flags_the_contract_sender() {
    let data = tiny();
    let text = exhibits::fig6(&data);
    assert!(text.contains("implicit"), "{text}");
    // The KT1 faucet is among the top senders in most seeds; when present
    // it must be flagged as a contract.
    if text.contains("KT1") {
        assert!(text.contains("contract"), "{text}");
    }
}

#[test]
fn comparison_covers_every_exhibit_family() {
    let data = tiny();
    let rows = comparison(&data);
    for family in ["Fig 1", "Fig 3a", "Fig 7", "Fig 8", "Fig 11", "Fig 12", "§1", "§3.3", "§4.1", "§4.3"] {
        assert!(
            rows.iter().any(|r| r.exhibit.starts_with(family)),
            "comparison covers {family}"
        );
    }
    let rendered = render_comparison(&rows);
    assert!(rendered.contains("Paper vs measured"));
    assert_eq!(rendered.matches('\n').count(), rows.len() + 3, "one line per row");
}

#[test]
fn local_storage_accounting_is_plausible() {
    let data = tiny();
    let (eos, tezos, xrp) = local_storage_stats(&data);
    assert_eq!(eos.blocks, data.eos_blocks.len() as u64);
    assert_eq!(tezos.blocks, data.tezos_blocks.len() as u64);
    assert_eq!(xrp.blocks, data.xrp_blocks.len() as u64);
    for (name, s) in [("eos", &eos), ("tezos", &tezos), ("xrp", &xrp)] {
        assert!(s.wire_bytes > 0, "{name} bytes");
        assert!(
            s.compression_ratio() > 1.5,
            "{name} JSON compresses: {}",
            s.compression_ratio()
        );
        assert!(s.compressed_bytes_estimate() < s.wire_bytes);
    }
}

#[test]
fn governance_periods_are_contiguous() {
    let data = tiny();
    assert!(!data.governance_periods.is_empty());
    for pair in data.governance_periods.windows(2) {
        assert_eq!(pair[0].1.end, pair[1].1.start, "period windows tile");
    }
    // The first period is the Babylon proposal period opening Jul 17.
    assert_eq!(data.governance_periods[0].1.start, ChainTime::from_ymd(2019, 7, 17));
}

#[test]
fn pipeline_data_is_internally_consistent() {
    let data = tiny();
    // Oracle rates exist for the currencies with DEX trades.
    assert!(data
        .oracle
        .rate(txstat_xrp::IssuedCurrency::new("USD", txstat_workload::xrp::BITSTAMP))
        .is_some());
    // Cluster resolves the cast.
    assert_eq!(
        data.cluster.entity(txstat_workload::xrp::BINANCE).as_deref(),
        Some("Binance")
    );
    // CPU price history aligns with blocks.
    assert_eq!(data.eos_cpu_price.len(), data.eos_blocks.len());
}

#[test]
fn scenario_meta_round_trips_presets_and_rejects_drift() {
    use crate::pipeline::{scenario_from_meta, scenario_meta};
    let sc = txstat_workload::Scenario::small(7);
    let (back, mode) = scenario_from_meta(&scenario_meta(&sc, "small")).expect("preset meta");
    assert_eq!(mode, "small");
    assert_eq!((back.seed, back.period), (sc.seed, sc.period));

    // A customized scenario's meta no longer matches the preset rebuild:
    // reducing its frames against preset chains must be refused.
    let mut custom = txstat_workload::Scenario::small(7);
    custom.xrp_divisor = 2.0;
    let err = scenario_from_meta(&scenario_meta(&custom, "small"));
    assert!(err.is_err(), "customized scenario meta must not reduce as a preset");
}
