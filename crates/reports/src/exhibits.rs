//! One renderer per paper exhibit. Every function takes the assembled
//! [`crate::pipeline::PipelineData`] and returns the
//! regenerated table/series as plain text (plus typed rows where callers
//! need them — the benches and EXPERIMENTS comparison use those).
//!
//! Each renderer is a thin adapter over [`PipelineData::sweeps`]: the fused
//! per-chain accumulators computed in one parallel sweep per chain and
//! shared by every figure, so rendering the full report never re-scans the
//! block vectors.

use crate::pipeline::PipelineData;
use txstat_core::eos_analysis as eos;
use txstat_core::xrp_analysis as xrp;
use txstat_types::amount::{fmt_pct, fmt_thousands};
use txstat_types::table::{render_series, Align, TextTable};
use txstat_types::time::ChainTime;
use txstat_xrp::amount::IssuedCurrency;
use txstat_xrp::AccountId;

/// Figure 1: distribution of transaction types per blockchain.
pub fn fig1(data: &PipelineData) -> String {
    let mut out = String::from("Figure 1 — Distribution of transaction types per blockchain\n\n");

    let (eos_rows, eos_total) = data.sweeps().eos.action_distribution();
    let mut t = TextTable::new(&["Category", "Action name", "#", "%"])
        .with_title("EOS (actions)")
        .with_aligns(&[Align::Left, Align::Left, Align::Right, Align::Right]);
    for r in &eos_rows {
        t.add_row(vec![
            r.class.label().to_owned(),
            r.action.clone(),
            fmt_thousands(r.count as u128),
            fmt_pct(r.count as u128, eos_total as u128),
        ]);
    }
    t.add_row(vec!["Total".into(), "".into(), fmt_thousands(eos_total as u128), "100.0".into()]);
    out.push_str(&t.render());
    out.push('\n');

    let (tz_rows, tz_total) = data.sweeps().tezos.op_distribution();
    let mut t = TextTable::new(&["Category", "Operation kind", "#", "%"])
        .with_title("Tezos (operations)")
        .with_aligns(&[Align::Left, Align::Left, Align::Right, Align::Right]);
    for r in &tz_rows {
        t.add_row(vec![
            r.class.label().to_owned(),
            r.kind.label().to_owned(),
            fmt_thousands(r.count as u128),
            fmt_pct(r.count as u128, tz_total as u128),
        ]);
    }
    t.add_row(vec!["Total".into(), "".into(), fmt_thousands(tz_total as u128), "100.0".into()]);
    out.push_str(&t.render());
    out.push('\n');

    let (x_rows, x_total) = data.sweeps().xrp.tx_distribution();
    let mut t = TextTable::new(&["Category", "Transaction type", "#", "%"])
        .with_title("XRP (transactions)")
        .with_aligns(&[Align::Left, Align::Left, Align::Right, Align::Right]);
    for r in &x_rows {
        t.add_row(vec![
            r.class.label().to_owned(),
            r.tx_type.wire().to_owned(),
            fmt_thousands(r.count as u128),
            fmt_pct(r.count as u128, x_total as u128),
        ]);
    }
    t.add_row(vec!["Total".into(), "".into(), fmt_thousands(x_total as u128), "100.0".into()]);
    out.push_str(&t.render());
    out
}

fn gb(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / 1e9)
}

/// Figure 2: dataset characteristics.
pub fn fig2(data: &PipelineData) -> String {
    let (e, t, x) = match &data.crawl {
        Some(c) => (&c.eos, &c.tezos, &c.xrp),
        None => {
            // Memoized: the serialize + LZSS sweep runs once per dataset
            // family, shared across serve-path forks and epoch swaps.
            let s = data.storage_stats();
            (&s.0, &s.1, &s.2)
        }
    };
    let span = |first: Option<ChainTime>, last: Option<ChainTime>| {
        format!(
            "{} .. {}",
            first.map(|t| t.date_string()).unwrap_or_default(),
            last.map(|t| t.date_string()).unwrap_or_default()
        )
    };
    let mut table = TextTable::new(&[
        "Chain", "Sample period", "Block index", "Blocks", "Transactions", "Storage est. (GB, lzss)",
    ])
    .with_title("Figure 2 — Characterizing the datasets (scenario scale)")
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    // Bounds come through the accessors so the streamed pipeline (which
    // never materializes the block vectors) renders identically.
    let (eos_first, eos_last) = data.eos_bounds();
    let (tz_first, tz_last) = data.tezos_bounds();
    let (x_first, x_last) = data.xrp_bounds();
    table.add_row(vec![
        "EOS".into(),
        span(eos_first.map(|(_, t)| t), eos_last.map(|(_, t)| t)),
        format!(
            "{} .. {}",
            eos_first.map(|(n, _)| n).unwrap_or(0),
            eos_last.map(|(n, _)| n).unwrap_or(0)
        ),
        fmt_thousands(e.blocks as u128),
        fmt_thousands(e.transactions as u128),
        gb(e.compressed_bytes_estimate()),
    ]);
    table.add_row(vec![
        "Tezos".into(),
        span(tz_first.map(|(_, t)| t), tz_last.map(|(_, t)| t)),
        format!(
            "{} .. {}",
            tz_first.map(|(n, _)| n).unwrap_or(0),
            tz_last.map(|(n, _)| n).unwrap_or(0)
        ),
        fmt_thousands(t.blocks as u128),
        fmt_thousands(t.transactions as u128),
        gb(t.compressed_bytes_estimate()),
    ]);
    table.add_row(vec![
        "XRP".into(),
        span(x_first.map(|(_, t)| t), x_last.map(|(_, t)| t)),
        format!(
            "{} .. {}",
            x_first.map(|(n, _)| n).unwrap_or(0),
            x_last.map(|(n, _)| n).unwrap_or(0)
        ),
        fmt_thousands(x.blocks as u128),
        fmt_thousands(x.transactions as u128),
        gb(x.compressed_bytes_estimate()),
    ]);
    let mut out = table.render();
    if let Some(c) = &data.crawl {
        out.push_str(&format!(
            "\nEOS endpoints: {} advertised, {} shortlisted (paper: 32/6). Compression sampled every {} blocks.\n",
            c.eos_advertised,
            c.eos_shortlisted,
            txstat_crawler::stats::COMPRESSION_SAMPLE_EVERY,
        ));
    }
    out
}

/// Figure 3: throughput across time (three sub-figures).
pub fn fig3(data: &PipelineData) -> String {
    let mut out = String::from("Figure 3 — Throughput across time (per 6-hour bucket)\n\n");

    let curated = eos::EosLabels::curated();
    let labels = data.sweeps().eos.labels(100, &|n| curated.get(n));
    let series = data.sweeps().eos.throughput_series(&labels);
    out.push_str("(a) EOS transactions by category\n");
    for cat in series.categories_sorted() {
        let pts: Vec<(String, f64)> = series
            .series_for(&cat)
            .into_iter()
            .map(|(t, c)| (t.date_string(), c as f64))
            .collect();
        out.push_str(&render_series(
            &format!("  {} (total {})", cat.label(), fmt_thousands(series.category_total(&cat) as u128)),
            &pts,
        ));
    }

    let series = data.sweeps().tezos.throughput_series();
    out.push_str("\n(b) Tezos operations by category\n");
    for cat in series.categories_sorted() {
        let pts: Vec<(String, f64)> = series
            .series_for(&cat)
            .into_iter()
            .map(|(t, c)| (t.date_string(), c as f64))
            .collect();
        out.push_str(&render_series(
            &format!("  {} (total {})", cat.label(), fmt_thousands(series.category_total(&cat) as u128)),
            &pts,
        ));
    }

    let series = data.sweeps().xrp.throughput_series();
    out.push_str("\n(c) XRP transactions by category\n");
    for cat in series.categories_sorted() {
        let pts: Vec<(String, f64)> = series
            .series_for(&cat)
            .into_iter()
            .map(|(t, c)| (t.date_string(), c as f64))
            .collect();
        out.push_str(&render_series(
            &format!("  {} (total {})", cat.label(), fmt_thousands(series.category_total(&cat) as u128)),
            &pts,
        ));
    }
    out
}

/// Figure 4: EOS top applications by received transactions.
pub fn fig4(data: &PipelineData) -> String {
    let rows = data.sweeps().eos.top_received(5);
    let mut t = TextTable::new(&["Name", "Tx count", "Top actions (name share%)"])
        .with_title("Figure 4 — EOS top applications by received transactions")
        .with_aligns(&[Align::Left, Align::Right, Align::Left]);
    for r in &rows {
        let total: u64 = r.actions.iter().map(|(_, c)| *c).sum();
        let mix = r
            .actions
            .iter()
            .take(5)
            .map(|(n, c)| format!("{n} {:.1}%", *c as f64 * 100.0 / total.max(1) as f64))
            .collect::<Vec<_>>()
            .join(", ");
        t.add_row(vec![r.account.to_string_repr(), fmt_thousands(r.tx_count as u128), mix]);
    }
    t.render()
}

/// Figure 5: EOS account pairs with the most sent transactions.
pub fn fig5(data: &PipelineData) -> String {
    let rows = data.sweeps().eos.top_senders(5);
    let mut t = TextTable::new(&["Sender", "Sent", "Uniq recv", "Top receivers (share%)"])
        .with_title("Figure 5 — EOS top senders and their receivers")
        .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Left]);
    let mut cluster_heavy = 0;
    for r in &rows {
        let mix = r
            .receivers
            .iter()
            .take(4)
            .map(|(n, _, share)| format!("{} {:.1}%", n.to_string_repr(), share * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        // §3.3: "Three out of five of the top senders send a vast majority
        // of their transactions to another of their account" — detect by
        // shared name-prefix entity (betdice*, bluebet*, …).
        let sender_name = r.sender.to_string_repr();
        let prefix: String = sender_name.chars().take(7).collect();
        let cluster_share: f64 = r
            .receivers
            .iter()
            .filter(|(n, ..)| n.to_string_repr().starts_with(&prefix))
            .map(|(_, _, share)| *share)
            .sum();
        if cluster_share > 0.5 {
            cluster_heavy += 1;
        }
        t.add_row(vec![
            r.sender.to_string_repr(),
            fmt_thousands(r.sent_count as u128),
            r.unique_receivers.to_string(),
            mix,
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "{cluster_heavy} of {} top senders direct most actions to their own account cluster\n\
         (on-chain 'RPC calls', §3.3; paper: 3 of 5)\n",
        rows.len()
    ));
    out
}

/// Figure 6: Tezos top senders with receiver-dispersion statistics.
pub fn fig6(data: &PipelineData) -> String {
    let rows = data.sweeps().tezos.top_senders(5);
    let mut t = TextTable::new(&["Sender", "Kind", "Sent", "Uniq recv", "Avg/recv", "Stdev/recv"])
        .with_title("Figure 6 — Tezos accounts with the most sent transactions")
        .with_aligns(&[
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    let mut implicit = 0;
    for r in &rows {
        // §3.3: "4 out of 5 of these accounts are not contracts but regular
        // accounts, which mean that the transactions are most likely
        // automated by an off-chain program."
        let kind = if r.sender.is_implicit() {
            implicit += 1;
            "implicit"
        } else {
            "contract"
        };
        t.add_row(vec![
            r.sender.to_string(),
            kind.to_owned(),
            fmt_thousands(r.sent_count as u128),
            r.unique_receivers.to_string(),
            format!("{:.2}", r.mean_per_receiver),
            format!("{:.2}", r.stdev_per_receiver),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "{} of {} top senders are regular (implicit) accounts — off-chain bots (paper: 4 of 5)\n",
        implicit,
        rows.len()
    ));
    out
}

/// Figure 7: the XRP value funnel.
pub fn fig7(data: &PipelineData) -> String {
    let f = data.sweeps().xrp.funnel();
    let mut out = String::from("Figure 7 — XRP throughput value funnel\n");
    out.push_str(&format!("Total transactions: {}\n", fmt_thousands(f.total as u128)));
    out.push_str(&format!(
        "├─ Failed        {:>6.1}%  ({})\n",
        f.pct(f.failed),
        fmt_thousands(f.failed as u128)
    ));
    out.push_str(&format!("└─ Successful    {:>6.1}%\n", f.pct(f.successful)));
    out.push_str(&format!(
        "   ├─ Payments      {:>6.1}%   with value {:>5.1}%  /  no value {:>5.1}%\n",
        f.pct(f.payments),
        f.pct(f.payments_with_value),
        f.pct(f.payments_no_value)
    ));
    out.push_str(&format!(
        "   ├─ Offers        {:>6.1}%   exchanged  {:>5.2}%  /  no exchange {:>5.1}%\n",
        f.pct(f.offers),
        f.pct(f.offers_exchanged),
        f.pct(f.offers_no_exchange)
    ));
    out.push_str(&format!("   └─ Others        {:>6.1}%\n", f.pct(f.others)));
    out.push_str(&format!(
        "Economic value share: {:.1}%  |  1 in {:.0} successful payments valuable  |  {:.2}% of offers fulfilled\n",
        f.economic_share_pct(),
        f.valuable_payment_ratio(),
        f.offer_fulfillment_pct()
    ));
    out
}

/// Figure 8: most active XRP accounts.
pub fn fig8(data: &PipelineData) -> String {
    let rows = data.sweeps().xrp.most_active(10, &data.cluster);
    let mut t = TextTable::new(&[
        "Account", "Entity", "OfferCreate", "Payment", "Others", "Total", "% of total", "Top tag",
    ])
    .with_title("Figure 8 — Most active accounts on the XRP ledger")
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in &rows {
        t.add_row(vec![
            r.account.to_string(),
            r.entity.clone().unwrap_or_else(|| "—".into()),
            fmt_thousands(r.offer_creates as u128),
            fmt_thousands(r.payments as u128),
            fmt_thousands(r.others as u128),
            fmt_thousands(r.total as u128),
            format!("{:.1}%", r.share_pct),
            r.top_tag.map(|(tag, _)| tag.to_string()).unwrap_or_else(|| "—".into()),
        ]);
    }
    t.render()
}

/// Figure 9: the Babylon governance vote curves.
pub fn fig9(data: &PipelineData) -> String {
    let curves = data.sweeps().tezos.governance_curves(&data.tezos_rolls);
    let mut out = String::from("Figure 9 — Tezos Babylon on-chain amendment voting\n");
    for pc in &curves {
        if pc.curves.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "\n({}) {} period  {} .. {}  participation {:.1}% of rolls\n",
            pc.kind.label().chars().next().unwrap_or('?'),
            pc.kind.label(),
            pc.window.start.date_string(),
            pc.window.end.date_string(),
            pc.participation_pct
        ));
        for c in &pc.curves {
            let pts: Vec<(String, f64)> = c
                .points
                .iter()
                .map(|(t, v)| (t.date_string(), *v as f64))
                .collect();
            out.push_str(&render_series(
                &format!("  {} (final {} rolls)", c.label, fmt_thousands(c.total() as u128)),
                &pts,
            ));
        }
    }
    let gov_ops = data.sweeps().tezos.governance_op_count();
    out.push_str(&format!(
        "\nGovernance operations inside the observation window: {gov_ops}\n"
    ));
    out
}

/// Figure 11: BTC IOU rates by issuer, and the Myrone rate collapse.
pub fn fig11(data: &PipelineData) -> String {
    let mut out = String::from("Figure 11 — Rates (in XRP) of BTC IOUs\n\n");
    // (a) 30-day average rate per issuer, as of the window end.
    let issuers: Vec<AccountId> = {
        use std::collections::BTreeSet;
        let mut s: BTreeSet<AccountId> = data
            .trades
            .iter()
            .filter(|t| t.currency.currency.as_str() == "BTC")
            .map(|t| t.currency.issuer)
            .collect();
        // Issuers that never traded still appear in the paper's table (rate 0).
        s.insert(txstat_workload::xrp::SPAMMER);
        s.into_iter().collect()
    };
    let rows = xrp::rates_by_issuer(&data.oracle, "BTC", &issuers);
    let mut t = TextTable::new(&["Issuer account", "Entity", "Rate (XRP)"])
        .with_title("(a) Average BTC IOU rate by issuer (30-day window)")
        .with_aligns(&[Align::Left, Align::Left, Align::Right]);
    for (issuer, rate) in &rows {
        t.add_row(vec![
            issuer.to_string(),
            data.cluster.entity_or(*issuer, "not registered"),
            rate.map(|r| format!("{r:.1}")).unwrap_or_else(|| "0".into()),
        ]);
    }
    out.push_str(&t.render());

    // (b) The same-issuer collapse (Myrone's self-dealt exchanges).
    let myrone = IssuedCurrency::new("BTC", txstat_workload::xrp::MYRONE_ISSUER);
    let events = xrp::trade_events(&data.trades, myrone);
    let mut t = TextTable::new(&["Date", "Seller account", "Rate (XRP)"])
        .with_title("\n(b) BTC IOU of one issuer traded at collapsing rates")
        .with_aligns(&[Align::Left, Align::Left, Align::Right]);
    for (time, maker, rate) in &events {
        t.add_row(vec![time.date_string(), maker.to_string(), format!("{rate:.1}")]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 12: value flows on the XRP ledger.
pub fn fig12(data: &PipelineData) -> String {
    let flow = data.sweeps().xrp.value_flow(&data.cluster);
    let mut out = String::from("Figure 12 — Value flow on the XRP ledger (XRP-denominated)\n");
    out.push_str(&format!(
        "Total XRP moved by payments: {} XRP\n\n",
        fmt_thousands(flow.xrp_payment_volume as u128)
    ));
    let mut t = TextTable::new(&["Sender entity", "Volume (XRP)", "Share"])
        .with_title("Top senders")
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    let total: f64 = flow.top_senders.iter().map(|(_, v)| v).sum();
    for (e, v) in flow.top_senders.iter().take(11) {
        t.add_row(vec![
            e.clone(),
            fmt_thousands(*v as u128),
            format!("{:.1}%", v * 100.0 / total.max(1.0)),
        ]);
    }
    out.push_str(&t.render());
    let mut t = TextTable::new(&["Receiver entity", "Volume (XRP)", "Share"])
        .with_title("\nTop receivers")
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    let rtotal: f64 = flow.top_receivers.iter().map(|(_, v)| v).sum();
    for (e, v) in flow.top_receivers.iter().take(11) {
        t.add_row(vec![
            e.clone(),
            fmt_thousands(*v as u128),
            format!("{:.1}%", v * 100.0 / rtotal.max(1.0)),
        ]);
    }
    out.push_str(&t.render());
    let mut t = TextTable::new(&["Currency", "Nominal moved", "Valuable nominal", "Valuable (XRP)"])
        .with_title("\nCurrencies")
        .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    for (cur, nominal, valuable, xrp_vol) in flow.currencies.iter().take(8) {
        t.add_row(vec![
            cur.clone(),
            fmt_thousands(*nominal as u128),
            fmt_thousands(*valuable as u128),
            fmt_thousands(*xrp_vol as u128),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The headline findings (abstract/§1): TPS and the three percentages.
pub fn headline(data: &PipelineData) -> String {
    let sweeps = data.sweeps();
    let eos_tps = sweeps.eos.tps();
    let tz_tps = sweeps.tezos.tps();
    let x_tps = sweeps.xrp.tps();
    let boomerang = sweeps.eos.boomerang_report();
    let (tz_rows, tz_total) = sweeps.tezos.op_distribution();
    let endorse = tz_rows
        .iter()
        .find(|r| r.kind == txstat_tezos::OperationKind::Endorsement)
        .map(|r| r.count)
        .unwrap_or(0);
    let funnel = sweeps.xrp.funnel();

    let mut out = String::from("Headline findings (scenario scale; ×divisor ≈ mainnet)\n");
    out.push_str(&format!(
        "TPS: EOS {:.2} (×{} ≈ {:.0} mainnet-equivalent), Tezos {:.4} (×{} ≈ {:.2}), XRP {:.2} (×{} ≈ {:.0})\n",
        eos_tps,
        data.scenario.eos_divisor,
        eos_tps * data.scenario.eos_divisor,
        tz_tps,
        data.scenario.tezos_divisor,
        tz_tps * data.scenario.tezos_divisor,
        x_tps,
        data.scenario.xrp_divisor,
        x_tps * data.scenario.xrp_divisor,
    ));
    out.push_str(&format!(
        "EIDOS boomerang transfers: {:.1}% of transfer actions ({} boomerangs; hub {})\n",
        boomerang.transfer_share * 100.0,
        fmt_thousands(boomerang.boomerangs as u128),
        boomerang.hub.map(|h| h.to_string_repr()).unwrap_or_default()
    ));
    out.push_str(&format!(
        "Tezos endorsements: {} of all operations (paper: 81.7%)\n",
        fmt_pct(endorse as u128, tz_total as u128)
    ));
    out.push_str(&format!(
        "XRP economic value share: {:.1}% of throughput (paper: 2.3%)\n",
        funnel.economic_share_pct()
    ));
    out.push_str(&format!(
        "EOS transactions dropped by congestion control: {}\n",
        fmt_thousands(data.eos_dropped_txs as u128)
    ));
    out
}

/// §4.1 / §4.3 case studies.
pub fn case_studies(data: &PipelineData) -> String {
    let sweeps = data.sweeps();
    let mut out = String::from("Case studies\n\n");

    // WhaleEx wash trading.
    let wash = sweeps.eos.wash_trading_report();
    out.push_str(&format!(
        "§4.1 WhaleEx wash trading: {} trades; top-5 accounts in {:.0}% of trades (paper: >70%)\n",
        fmt_thousands(wash.total_trades as u128),
        wash.top5_participation * 100.0,
    ));
    for (account, trades, self_share) in &wash.top_accounts {
        out.push_str(&format!(
            "    {} — {} trades, {:.0}% self-trades\n",
            account.to_string_repr(),
            fmt_thousands(*trades as u128),
            self_share * 100.0
        ));
    }

    // EIDOS congestion.
    let (before, after) = data.eos_cpu_peaks();
    out.push_str(&format!(
        "\n§4.1 EIDOS congestion: CPU price index peak {:.0}× pre-launch vs {:.0}× post-launch (paper: ~10,000% spike)\n",
        before, after
    ));

    // XRP spam.
    let spikes = sweeps.xrp.payment_spike_buckets(3.0);
    out.push_str(&format!(
        "\n§4.3 XRP payment-spam waves: {} six-hour buckets above 3× the median payment rate\n",
        spikes.len()
    ));
    let spammer = txstat_workload::xrp::SPAMMER;
    out.push_str(&format!(
        "    the spam account {} activated {} child accounts (paper: 5,020 at full scale)\n",
        spammer,
        data.cluster.children_of(spammer)
    ));

    // §3.3 concentration: "the 18 most active accounts are responsible for
    // half of the total traffic".
    let conc = sweeps.xrp.concentration();
    out.push_str(&format!(
        "\n§3.3 XRP account concentration: {} accounts, {:.1} tx each on average;\n\
         \x20   {:.0}% transacted exactly once (paper: ~33%); the {} most active\n\
         \x20   accounts carry half the traffic (paper: 18); Gini {:.2}\n",
        fmt_thousands(conc.accounts as u128),
        conc.mean_txs_per_account,
        conc.single_tx_accounts as f64 * 100.0 / conc.accounts.max(1) as f64,
        conc.half_traffic_accounts,
        conc.gini,
    ));

    // §5-style transaction-graph metrics (Ron & Shamir / Kondor et al. lens).
    let eos_graph = sweeps.eos.graph().report(3);
    let xrp_graph = sweeps.xrp.graph().report(3);
    out.push_str(&format!(
        "\n§5 transfer-graph metrics:\n\
         \x20   EOS: {} nodes, {} transfer edges, out-degree Gini {:.2}; top sink {}\n\
         \x20   XRP: {} nodes, {} payment edges, out-degree Gini {:.2}; {} fan-out outlier(s)\n",
        fmt_thousands(eos_graph.nodes as u128),
        fmt_thousands(eos_graph.unique_edges as u128),
        eos_graph.out_degree_gini,
        eos_graph
            .top_sinks
            .first()
            .map(|(n, _)| n.to_string_repr())
            .unwrap_or_default(),
        fmt_thousands(xrp_graph.nodes as u128),
        fmt_thousands(xrp_graph.unique_edges as u128),
        xrp_graph.out_degree_gini,
        xrp_graph.fanout_outliers.len(),
    ));
    out
}

/// The separator between report sections.
pub const SECTION_BREAK: &str = "\n================================================================\n\n";

/// Renderer signature shared by every row of [`SECTIONS`].
pub type SectionFn = fn(&PipelineData) -> String;

/// Every exhibit section of the report, in render order: `(name, render)`.
/// The names double as the serve path's `/exhibit/<name>` routes, and the
/// report is the concatenation of exactly these strings (each followed by
/// [`SECTION_BREAK`]) — which is what makes a served section byte-identical
/// to the one-shot report by construction.
pub const SECTIONS: &[(&str, SectionFn)] = &[
    ("headline", headline),
    ("fig1", fig1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("fig8", fig8),
    ("fig9", fig9),
    ("fig11", fig11),
    ("fig12", fig12),
    ("case_studies", case_studies),
];

/// Render every exhibit section: `(name, text)` in report order.
pub fn report_sections(data: &PipelineData) -> Vec<(&'static str, String)> {
    SECTIONS.iter().map(|(name, render)| (*name, render(data))).collect()
}

/// Render every exhibit.
pub fn render_all(data: &PipelineData) -> String {
    let mut out = String::new();
    for (_, section) in report_sections(data) {
        out.push_str(&section);
        out.push_str(SECTION_BREAK);
    }
    out
}

/// The paper-vs-measured comparison plus the acceptance-band tally — the
/// report's tail after the exhibit sections. Exposed as its own section so
/// the serve path can answer `/exhibit/comparison` byte-identically.
pub fn comparison_section(data: &PipelineData) -> String {
    let rows = crate::paper::comparison(data);
    let mut out = crate::paper::render_comparison(&rows);
    out.push('\n');
    let misses = rows.iter().filter(|r| !r.within_band).count();
    out.push_str(&format!(
        "{} of {} comparison metrics inside their acceptance bands\n",
        rows.len() - misses,
        rows.len()
    ));
    out
}

/// Render the full report text — shared verbatim by the `report`, `reduce`,
/// `follow`, and `serve` paths, which is what makes their outputs
/// byte-comparable.
pub fn render_report(data: &PipelineData) -> String {
    let mut output = render_all(data);
    output.push_str(&comparison_section(data));
    output
}
