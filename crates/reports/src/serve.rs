//! The stats-serving layer behind `reproduce serve`: immutable per-epoch
//! snapshots of the pipeline dataset, a keyed response cache that dies with
//! its snapshot, and the HTTP routing that answers per-exhibit and
//! per-account queries byte-identically to the one-shot report.
//!
//! Consistency model: a [`ServeSnapshot`] is immutable once published
//! through an [`EpochCell`] — readers load an `Arc`, so a concurrent epoch
//! swap can never tear a response (it either came wholly from the old
//! snapshot or wholly from the new one). The response cache lives *inside*
//! the snapshot, so cache invalidation on swap is not a protocol, it is
//! reachability: the new epoch starts with an empty cache and the old
//! cache is dropped with the last reference to the old snapshot.

use crate::exhibits::{comparison_section, render_report, SECTIONS};
use crate::pipeline::PipelineData;
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use txstat_core::{ChainSweeps, EosColumnar, TezosColumnar, XrpColumnar};
use txstat_ingest::{Checkpoint, EpochCell};
use txstat_netsim::http::{HttpRequest, HttpResponse};
use txstat_netsim::HttpHandler;

/// One epoch's immutable serving state: the forked dataset plus the keyed
/// response cache for everything rendered from it.
pub struct ServeSnapshot {
    epoch: u64,
    /// Whether the follow loop has reached the chain heads (responses are
    /// byte-identical to the full one-shot report only once true).
    head: bool,
    data: PipelineData,
    /// path → rendered body. Filled on first request per path, shared by
    /// `Arc` so cache hits are a lookup + clone of a pointer.
    cache: Mutex<HashMap<String, Arc<Vec<u8>>>>,
}

impl ServeSnapshot {
    pub fn new(epoch: u64, head: bool, data: PipelineData) -> Self {
        ServeSnapshot { epoch, head, data, cache: Mutex::new(HashMap::new()) }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn head(&self) -> bool {
        self.head
    }

    pub fn data(&self) -> &PipelineData {
        &self.data
    }

    /// Cached responses currently held (observability + tests).
    pub fn cached_responses(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Drop every cached response, returning how many were evicted. The
    /// serving path never needs this (epoch swaps retire whole snapshots);
    /// it exists so benches can measure the uncached render path.
    pub fn clear_cache(&self) -> usize {
        let mut cache = self.cache.lock().expect("cache lock");
        let evicted = cache.len();
        cache.clear();
        evicted
    }

    /// Look the path up in this snapshot's cache, rendering and inserting
    /// on miss. `None` = not a renderable route (404, never cached).
    fn get(&self, path: &str, hits: &AtomicU64, misses: &AtomicU64) -> Option<Arc<Vec<u8>>> {
        if let Some(body) = self.cache.lock().expect("cache lock").get(path) {
            hits.fetch_add(1, Ordering::Relaxed);
            return Some(body.clone());
        }
        // Render outside the lock: a concurrent miss on the same path
        // renders twice but both render identical bytes from the immutable
        // snapshot, so last-insert-wins is harmless.
        let body = Arc::new(self.render(path)?);
        misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(path.to_owned(), body.clone());
        Some(body)
    }

    /// Render one route from the snapshot's dataset.
    fn render(&self, path: &str) -> Option<Vec<u8>> {
        if path == "/report" {
            return Some(render_report(&self.data).into_bytes());
        }
        if let Some(name) = path.strip_prefix("/exhibit/") {
            if name == "comparison" {
                return Some(comparison_section(&self.data).into_bytes());
            }
            let (_, render) = SECTIONS.iter().find(|(n, _)| *n == name)?;
            return Some(render(&self.data).into_bytes());
        }
        if let Some(rest) = path.strip_prefix("/account/") {
            let (chain, name) = rest.split_once('/')?;
            return self.render_account(chain, name);
        }
        None
    }

    fn render_account(&self, chain: &str, name: &str) -> Option<Vec<u8>> {
        let sweeps = self.data.sweeps();
        let body = match chain {
            "eos" => {
                let account = txstat_eos::Name::from_str(name).ok()?;
                let s = sweeps.eos.account_stats(account)?;
                let top: Vec<serde_json::Value> = s
                    .top_actions
                    .into_iter()
                    .map(|(name, count)| serde_json::json!({"name": name, "count": count}))
                    .collect();
                serde_json::json!({
                    "chain": "eos",
                    "account": s.account.to_string_repr(),
                    "received_txs": s.received_txs,
                    "sent_actions": s.sent_actions,
                    "unique_send_targets": s.unique_send_targets,
                    "top_actions": top,
                })
            }
            "tezos" => {
                let address = txstat_tezos::address::Address::from_str(name).ok()?;
                let s = sweeps.tezos.account_stats(address)?;
                let top: Vec<serde_json::Value> = s
                    .top_receivers
                    .into_iter()
                    .map(|(addr, count)| serde_json::json!({"address": addr, "count": count}))
                    .collect();
                serde_json::json!({
                    "chain": "tezos",
                    "address": s.address.to_string(),
                    "sent_ops": s.sent_ops,
                    "unique_receivers": s.unique_receivers,
                    "top_receivers": top,
                })
            }
            "xrp" => {
                let account = txstat_xrp::AccountId::from_str(name).ok()?;
                let s = sweeps.xrp.account_stats(account)?;
                serde_json::json!({
                    "chain": "xrp",
                    "account": s.account.to_string(),
                    "offer_creates": s.offer_creates,
                    "payments": s.payments,
                    "others": s.others,
                    "total": s.total,
                    "share_pct": s.share_pct,
                    "top_tag": s.top_tag.map(|(tag, count)| serde_json::json!({
                        "tag": tag, "count": count,
                    })),
                })
            }
            _ => return None,
        };
        let mut bytes = serde_json::to_vec(&body).ok()?;
        bytes.push(b'\n');
        Some(bytes)
    }
}

/// The query service: routes requests against the currently published
/// snapshot. Cache hit/miss counters are process-wide (they survive epoch
/// swaps; the caches themselves do not).
pub struct StatsService {
    cell: Arc<EpochCell<ServeSnapshot>>,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Raised by `POST /admin/shutdown`; the serve loop polls it.
    pub shutdown: AtomicBool,
}

impl StatsService {
    pub fn new(cell: Arc<EpochCell<ServeSnapshot>>) -> Self {
        StatsService {
            cell,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.cell.load()
    }

    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn not_found(path: &str) -> HttpResponse {
        let body = serde_json::json!({
            "error": "not found",
            "path": path,
            "routes": ["/report", "/exhibit/<name>", "/account/<chain>/<name>", "/healthz"],
        });
        let bytes = serde_json::to_vec(&body).unwrap_or_default();
        HttpResponse::status(404, "Not Found", bytes)
    }

    /// Answer one request. Every response is computed against exactly one
    /// snapshot (loaded once up front), so a concurrent epoch swap can
    /// never mix epochs within a response.
    pub fn respond(&self, method: &str, path: &str) -> HttpResponse {
        let snap = self.cell.load();
        match (method, path) {
            ("GET", "/healthz") => {
                let body = serde_json::json!({
                    "epoch": snap.epoch(),
                    "head": snap.head(),
                    "cache_hits": self.cache_hits.load(Ordering::Relaxed),
                    "cache_misses": self.cache_misses.load(Ordering::Relaxed),
                    "cached_responses": snap.cached_responses(),
                });
                HttpResponse::ok(serde_json::to_vec(&body).unwrap_or_default())
            }
            ("POST", "/admin/shutdown") => {
                self.shutdown.store(true, Ordering::Release);
                HttpResponse::ok(b"{\"shutting_down\":true}".to_vec())
            }
            ("GET", _) => {
                match snap.get(path, &self.cache_hits, &self.cache_misses) {
                    Some(body) => HttpResponse::ok(body.as_ref().clone()),
                    None => Self::not_found(path),
                }
            }
            _ => Self::not_found(path),
        }
    }
}

impl HttpHandler for StatsService {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        self.respond(&req.method, &req.path)
    }
}

// ---- Follow-driven epoch production -----------------------------------------

/// Replays the chains batch by batch through range-keyed checkpoints
/// (`Checkpoint::observe_tail` — the already-observed prefix is never
/// re-swept) and forks one immutable dataset per batch for publication.
pub struct EpochFollower {
    data: PipelineData,
    eos_cp: Checkpoint<EosColumnar>,
    tz_cp: Checkpoint<TezosColumnar>,
    xrp_cp: Checkpoint<XrpColumnar>,
    offset: usize,
    batch: usize,
    total: usize,
}

impl EpochFollower {
    /// `batch` blocks per chain per epoch, swept across `shards` shards.
    pub fn new(data: PipelineData, batch: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let batch = batch.max(1);
        let period = data.scenario.period;
        let fresh = |low: u64| (vec![0u64; shards], low);
        let (counts, low) = fresh(data.eos_blocks.first().map_or(1, |b| b.num));
        let eos_cp = Checkpoint {
            shards: vec![EosColumnar::new(period); shards],
            counts,
            low,
            high: low.saturating_sub(1),
        };
        let (counts, low) = fresh(data.tezos_blocks.first().map_or(1, |b| b.level));
        let tz_cp = Checkpoint {
            shards: vec![TezosColumnar::new(period, data.governance_periods.clone()); shards],
            counts,
            low,
            high: low.saturating_sub(1),
        };
        let (counts, low) = fresh(data.xrp_blocks.first().map_or(1, |b| b.index));
        let xrp_cp = Checkpoint {
            shards: vec![XrpColumnar::new(period); shards],
            counts,
            low,
            high: low.saturating_sub(1),
        };
        let total = data
            .eos_blocks
            .len()
            .max(data.tezos_blocks.len())
            .max(data.xrp_blocks.len());
        EpochFollower { data, eos_cp, tz_cp, xrp_cp, offset: 0, batch, total }
    }

    /// The base dataset the follower replays (full chains, no sweeps).
    pub fn base(&self) -> &PipelineData {
        &self.data
    }

    /// True once every chain has been observed to its head.
    pub fn head(&self) -> bool {
        self.offset >= self.total
    }

    /// Blocks observed so far per chain `(eos, tezos, xrp)`.
    pub fn observed(&self) -> (u64, u64, u64) {
        (self.eos_cp.observed(), self.tz_cp.observed(), self.xrp_cp.observed())
    }

    /// Observe the next batch of each chain and fork the dataset at the
    /// new coverage. The fork shares every heavy input with the base by
    /// `Arc`; only the installed sweeps differ.
    pub fn advance(&mut self) -> Result<PipelineData, String> {
        let hi = (self.offset + self.batch).min(self.total);
        let take = |n: usize| self.offset.min(n)..hi.min(n);
        let data = &self.data;
        self.eos_cp
            .observe_tail(
                data.eos_blocks[take(data.eos_blocks.len())].iter().map(|b| (b.num, b)),
                |a, _n, b| a.observe(b),
            )
            .map_err(|e| e.to_string())?;
        self.tz_cp
            .observe_tail(
                data.tezos_blocks[take(data.tezos_blocks.len())].iter().map(|b| (b.level, b)),
                |a, _n, b| a.observe(b),
            )
            .map_err(|e| e.to_string())?;
        self.xrp_cp
            .observe_tail(
                data.xrp_blocks[take(data.xrp_blocks.len())].iter().map(|b| (b.index, b)),
                |a, _n, b| a.observe(b, &data.oracle),
            )
            .map_err(|e| e.to_string())?;
        self.offset = hi;
        let sweeps = ChainSweeps {
            eos: self.eos_cp.merged(|a, b| a.merge(b)).finalize(),
            tezos: self.tz_cp.merged(|a, b| a.merge(b)).finalize(),
            xrp: self.xrp_cp.merged(|a, b| a.merge(b)).finalize(),
        };
        Ok(self.data.fork_with_sweeps(sweeps))
    }
}
