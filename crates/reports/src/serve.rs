//! The stats-serving layer behind `reproduce serve`: immutable per-epoch
//! snapshots of the pipeline dataset, a keyed response cache that dies with
//! its snapshot, and the HTTP routing that answers per-exhibit and
//! per-account queries byte-identically to the one-shot report.
//!
//! Consistency model: a [`ServeSnapshot`] is immutable once published
//! through an [`EpochCell`] — readers load an `Arc`, so a concurrent epoch
//! swap can never tear a response (it either came wholly from the old
//! snapshot or wholly from the new one). The response cache lives *inside*
//! the snapshot, so cache invalidation on swap is not a protocol, it is
//! reachability: the new epoch starts with an empty cache and the old
//! cache is dropped with the last reference to the old snapshot.

use crate::exhibits::{comparison_section, render_report, SECTIONS};
use crate::pipeline::PipelineData;
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use txstat_core::{ChainSweeps, EosColumnar, TezosColumnar, XrpColumnar};
use txstat_ingest::{Checkpoint, EpochCell};
use txstat_netsim::http::{HttpRequest, HttpResponse};
use txstat_netsim::HttpHandler;
use txstat_telemetry::{Counter, Gauge, Histogram, MetricKind, Registry, Sample, SampleValue, Span};

/// One epoch's immutable serving state: the forked dataset plus the keyed
/// response cache for everything rendered from it.
pub struct ServeSnapshot {
    epoch: u64,
    /// Whether the follow loop has reached the chain heads (responses are
    /// byte-identical to the full one-shot report only once true).
    head: bool,
    data: PipelineData,
    /// path → rendered body. Filled on first request per path, shared by
    /// `Arc` so cache hits are a lookup + clone of a pointer.
    cache: Mutex<HashMap<String, Arc<Vec<u8>>>>,
}

impl ServeSnapshot {
    pub fn new(epoch: u64, head: bool, data: PipelineData) -> Self {
        ServeSnapshot { epoch, head, data, cache: Mutex::new(HashMap::new()) }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn head(&self) -> bool {
        self.head
    }

    pub fn data(&self) -> &PipelineData {
        &self.data
    }

    /// Cached responses currently held (observability + tests).
    pub fn cached_responses(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Drop every cached response, returning how many were evicted. The
    /// serving path never needs this (epoch swaps retire whole snapshots);
    /// it exists so benches can measure the uncached render path.
    pub fn clear_cache(&self) -> usize {
        let mut cache = self.cache.lock().expect("cache lock");
        let evicted = cache.len();
        cache.clear();
        evicted
    }

    /// Look the path up in this snapshot's cache, rendering and inserting
    /// on miss. `None` = not a renderable route (404, never cached).
    fn get(&self, path: &str, hits: &Counter, misses: &Counter) -> Option<Arc<Vec<u8>>> {
        if let Some(body) = self.cache.lock().expect("cache lock").get(path) {
            hits.inc();
            return Some(body.clone());
        }
        // Render outside the lock: a concurrent miss on the same path
        // renders twice but both render identical bytes from the immutable
        // snapshot, so last-insert-wins is harmless.
        let body = Arc::new(self.render(path)?);
        misses.inc();
        self.cache
            .lock()
            .expect("cache lock")
            .insert(path.to_owned(), body.clone());
        Some(body)
    }

    /// Render one route from the snapshot's dataset.
    fn render(&self, path: &str) -> Option<Vec<u8>> {
        if path == "/report" {
            return Some(render_report(&self.data).into_bytes());
        }
        if let Some(name) = path.strip_prefix("/exhibit/") {
            if name == "comparison" {
                return Some(comparison_section(&self.data).into_bytes());
            }
            let (_, render) = SECTIONS.iter().find(|(n, _)| *n == name)?;
            return Some(render(&self.data).into_bytes());
        }
        if let Some(rest) = path.strip_prefix("/account/") {
            let (chain, name) = rest.split_once('/')?;
            return self.render_account(chain, name);
        }
        None
    }

    fn render_account(&self, chain: &str, name: &str) -> Option<Vec<u8>> {
        let sweeps = self.data.sweeps();
        let body = match chain {
            "eos" => {
                let account = txstat_eos::Name::from_str(name).ok()?;
                let s = sweeps.eos.account_stats(account)?;
                let top: Vec<serde_json::Value> = s
                    .top_actions
                    .into_iter()
                    .map(|(name, count)| serde_json::json!({"name": name, "count": count}))
                    .collect();
                serde_json::json!({
                    "chain": "eos",
                    "account": s.account.to_string_repr(),
                    "received_txs": s.received_txs,
                    "sent_actions": s.sent_actions,
                    "unique_send_targets": s.unique_send_targets,
                    "top_actions": top,
                })
            }
            "tezos" => {
                let address = txstat_tezos::address::Address::from_str(name).ok()?;
                let s = sweeps.tezos.account_stats(address)?;
                let top: Vec<serde_json::Value> = s
                    .top_receivers
                    .into_iter()
                    .map(|(addr, count)| serde_json::json!({"address": addr, "count": count}))
                    .collect();
                serde_json::json!({
                    "chain": "tezos",
                    "address": s.address.to_string(),
                    "sent_ops": s.sent_ops,
                    "unique_receivers": s.unique_receivers,
                    "top_receivers": top,
                })
            }
            "xrp" => {
                let account = txstat_xrp::AccountId::from_str(name).ok()?;
                let s = sweeps.xrp.account_stats(account)?;
                serde_json::json!({
                    "chain": "xrp",
                    "account": s.account.to_string(),
                    "offer_creates": s.offer_creates,
                    "payments": s.payments,
                    "others": s.others,
                    "total": s.total,
                    "share_pct": s.share_pct,
                    "top_tag": s.top_tag.map(|(tag, count)| serde_json::json!({
                        "tag": tag, "count": count,
                    })),
                })
            }
            _ => return None,
        };
        let mut bytes = serde_json::to_vec(&body).ok()?;
        bytes.push(b'\n');
        Some(bytes)
    }
}

/// The query service: routes requests against the currently published
/// snapshot. Cache hit/miss counters live in the service's metric
/// registry, so they survive epoch swaps (the caches themselves do not)
/// but never leak across services — each `new()` gets a private registry,
/// which is what keeps concurrent tests from seeing each other's traffic.
pub struct StatsService {
    cell: Arc<EpochCell<ServeSnapshot>>,
    registry: Arc<Registry>,
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    /// Raised by `POST /admin/shutdown`; the serve loop polls it.
    pub shutdown: AtomicBool,
}

impl StatsService {
    /// Service with a private registry — right for tests and embedding.
    pub fn new(cell: Arc<EpochCell<ServeSnapshot>>) -> Self {
        Self::with_registry(cell, Arc::new(Registry::new()))
    }

    /// Service exporting through `registry`. The serve binary passes the
    /// process-global registry so `/metrics` also carries the ingest,
    /// reduce, and epoch families contributed by the follow loop.
    pub fn with_registry(cell: Arc<EpochCell<ServeSnapshot>>, registry: Arc<Registry>) -> Self {
        let cache_hits = registry
            .counter("txstat_serve_cache_hits_total", "Response-cache hits across all epochs");
        let cache_misses = registry.counter(
            "txstat_serve_cache_misses_total",
            "Response-cache misses (responses rendered from the snapshot)",
        );
        // Epoch number, head flag, and cache size are properties of the
        // *currently published* snapshot, not monotone counters: a gather-
        // time collector reads them off the cell instead of mirroring them
        // into instruments that could lag a swap.
        let watched = cell.clone();
        registry.register_collector(move |out| {
            let snap = watched.load();
            let gauge = |name: &str, help: &str, v: u64| Sample {
                name: name.to_string(),
                help: help.to_string(),
                kind: MetricKind::Gauge,
                labels: Vec::new(),
                value: SampleValue::Int(v),
            };
            out.push(gauge("txstat_epoch_current", "Currently published serve epoch", snap.epoch()));
            out.push(gauge(
                "txstat_epoch_at_head",
                "1 once the follow loop has reached the chain heads",
                snap.head() as u64,
            ));
            out.push(gauge(
                "txstat_serve_cached_responses",
                "Responses cached in the live snapshot",
                snap.cached_responses() as u64,
            ));
        });
        StatsService { cell, registry, cache_hits, cache_misses, shutdown: AtomicBool::new(false) }
    }

    /// The registry this service exports through (`/metrics`, `/statusz`).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.cell.load()
    }

    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn not_found(path: &str) -> HttpResponse {
        let body = serde_json::json!({
            "error": "not found",
            "path": path,
            "routes": ["/report", "/exhibit/<name>", "/account/<chain>/<name>",
                       "/healthz", "/metrics", "/statusz"],
        });
        let bytes = serde_json::to_vec(&body).unwrap_or_default();
        HttpResponse::status(404, "Not Found", bytes)
    }

    /// `/statusz`: the JSON observability snapshot — epoch/cache headline
    /// numbers plus the full registry snapshot and (when the dataset came
    /// off the streamed path) the per-chain backpressure summary.
    fn statusz(&self, snap: &ServeSnapshot) -> serde_json::Value {
        let mut body = serde_json::json!({
            "epoch": snap.epoch(),
            "head": snap.head(),
            "cache_hits": self.cache_hits.get(),
            "cache_misses": self.cache_misses.get(),
            "cached_responses": snap.cached_responses(),
            "metrics": self.registry.snapshot_json(),
        });
        if let Some(stream) = &snap.data().stream {
            let chain = |info: &crate::pipeline::ChainStreamInfo| {
                serde_json::json!({
                    "shards": info.shards,
                    "channel_capacity": info.channel_capacity,
                    "streamed_blocks": info.streamed_blocks,
                    "peak_buffered": info.peak_buffered,
                    "blocked_sends": info.blocked_sends,
                })
            };
            if let serde_json::Value::Object(map) = &mut body {
                map.insert(
                    "stream".to_string(),
                    serde_json::json!({
                        "eos": chain(&stream.eos),
                        "tezos": chain(&stream.tezos),
                        "xrp": chain(&stream.xrp),
                    }),
                );
            }
        }
        body
    }

    /// Answer one request. Every response is computed against exactly one
    /// snapshot (loaded once up front), so a concurrent epoch swap can
    /// never mix epochs within a response.
    pub fn respond(&self, method: &str, path: &str) -> HttpResponse {
        let snap = self.cell.load();
        match (method, path) {
            ("GET", "/healthz") => {
                let body = serde_json::json!({
                    "epoch": snap.epoch(),
                    "head": snap.head(),
                    "cache_hits": self.cache_hits.get(),
                    "cache_misses": self.cache_misses.get(),
                    "cached_responses": snap.cached_responses(),
                });
                HttpResponse::ok(serde_json::to_vec(&body).unwrap_or_default())
            }
            // Exposition routes render live registry state, never cached.
            ("GET", "/metrics") => {
                HttpResponse::ok(self.registry.render_prometheus().into_bytes())
            }
            ("GET", "/statusz") => {
                let body = self.statusz(&snap);
                HttpResponse::ok(serde_json::to_vec(&body).unwrap_or_default())
            }
            ("POST", "/admin/shutdown") => {
                self.shutdown.store(true, Ordering::Release);
                HttpResponse::ok(b"{\"shutting_down\":true}".to_vec())
            }
            ("GET", _) => {
                match snap.get(path, &self.cache_hits, &self.cache_misses) {
                    Some(body) => HttpResponse::ok(body.as_ref().clone()),
                    None => Self::not_found(path),
                }
            }
            _ => Self::not_found(path),
        }
    }
}

impl HttpHandler for StatsService {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        self.respond(&req.method, &req.path)
    }
}

// ---- Follow-driven epoch production -----------------------------------------

/// Registry handles the follow loop updates every [`EpochFollower::advance`].
/// These are the ingest / reduce / epoch metric families of the serve
/// `/metrics` endpoint.
struct FollowMetrics {
    eos_observed: Arc<Counter>,
    tezos_observed: Arc<Counter>,
    xrp_observed: Arc<Counter>,
    merges: Arc<Counter>,
    merge_us: Arc<Histogram>,
    published: Arc<Counter>,
    publish_latency_us: Arc<Histogram>,
    batch_lag: Arc<Gauge>,
}

impl FollowMetrics {
    fn bind(registry: &Registry) -> Self {
        let observed = |chain: &str| {
            registry.counter_with(
                "txstat_ingest_blocks_observed_total",
                "Blocks observed by the follow loop's checkpoints",
                &[("chain", chain)],
            )
        };
        FollowMetrics {
            eos_observed: observed("eos"),
            tezos_observed: observed("tezos"),
            xrp_observed: observed("xrp"),
            merges: registry.counter(
                "txstat_reduce_follow_merges_total",
                "Checkpoint shard merges performed by the follow loop",
            ),
            merge_us: registry.histogram(
                "txstat_reduce_merge_us",
                "Wall time merging checkpoint shards into publishable sweeps",
            ),
            published: registry.counter(
                "txstat_epoch_published_total",
                "Epoch datasets forked for publication",
            ),
            publish_latency_us: registry.histogram(
                "txstat_epoch_publish_latency_us",
                "Wall time of one follow advance (observe batch + merge + fork)",
            ),
            batch_lag: registry.gauge(
                "txstat_epoch_batch_lag_blocks",
                "Blocks between the follow offset and the chain heads",
            ),
        }
    }
}

/// Replays the chains batch by batch through range-keyed checkpoints
/// (`Checkpoint::observe_tail` — the already-observed prefix is never
/// re-swept) and forks one immutable dataset per batch for publication.
pub struct EpochFollower {
    data: PipelineData,
    eos_cp: Checkpoint<EosColumnar>,
    tz_cp: Checkpoint<TezosColumnar>,
    xrp_cp: Checkpoint<XrpColumnar>,
    offset: usize,
    batch: usize,
    total: usize,
    metrics: Option<FollowMetrics>,
}

impl EpochFollower {
    /// `batch` blocks per chain per epoch, swept across `shards` shards.
    pub fn new(data: PipelineData, batch: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let batch = batch.max(1);
        let period = data.scenario.period;
        let eos_cp = Checkpoint::new(
            vec![EosColumnar::new(period); shards],
            data.eos_blocks.first().map_or(1, |b| b.num),
        );
        let tz_cp = Checkpoint::new(
            vec![TezosColumnar::new(period, data.governance_periods.clone()); shards],
            data.tezos_blocks.first().map_or(1, |b| b.level),
        );
        let xrp_cp = Checkpoint::new(
            vec![XrpColumnar::new(period); shards],
            data.xrp_blocks.first().map_or(1, |b| b.index),
        );
        let total = data
            .eos_blocks
            .len()
            .max(data.tezos_blocks.len())
            .max(data.xrp_blocks.len());
        EpochFollower { data, eos_cp, tz_cp, xrp_cp, offset: 0, batch, total, metrics: None }
    }

    /// Export follow-loop progress through `registry`: per-chain observed
    /// block counters, merge count/latency, and epoch publication metrics.
    pub fn bind_metrics(&mut self, registry: &Registry) {
        self.metrics = Some(FollowMetrics::bind(registry));
    }

    /// The base dataset the follower replays (full chains, no sweeps).
    pub fn base(&self) -> &PipelineData {
        &self.data
    }

    /// True once every chain has been observed to its head.
    pub fn head(&self) -> bool {
        self.offset >= self.total
    }

    /// Blocks observed so far per chain `(eos, tezos, xrp)`.
    pub fn observed(&self) -> (u64, u64, u64) {
        (self.eos_cp.observed(), self.tz_cp.observed(), self.xrp_cp.observed())
    }

    /// Observe the next batch of each chain and fork the dataset at the
    /// new coverage. The fork shares every heavy input with the base by
    /// `Arc`; only the installed sweeps differ.
    pub fn advance(&mut self) -> Result<PipelineData, String> {
        let _span = Span::enter("follow_advance", "");
        let started = Instant::now();
        let before = self.observed();
        let hi = (self.offset + self.batch).min(self.total);
        let take = |n: usize| self.offset.min(n)..hi.min(n);
        let data = &self.data;
        self.eos_cp
            .observe_tail(
                data.eos_blocks[take(data.eos_blocks.len())].iter().map(|b| (b.num, b)),
                |a, _n, b| a.observe(b),
            )
            .map_err(|e| e.to_string())?;
        self.tz_cp
            .observe_tail(
                data.tezos_blocks[take(data.tezos_blocks.len())].iter().map(|b| (b.level, b)),
                |a, _n, b| a.observe(b),
            )
            .map_err(|e| e.to_string())?;
        self.xrp_cp
            .observe_tail(
                data.xrp_blocks[take(data.xrp_blocks.len())].iter().map(|b| (b.index, b)),
                |a, _n, b| a.observe(b, &data.oracle),
            )
            .map_err(|e| e.to_string())?;
        self.offset = hi;
        let merge_started = Instant::now();
        let sweeps = {
            let _span = Span::enter("follow_merge", "");
            ChainSweeps {
                eos: self.eos_cp.merged(|a, b| a.merge(b)).finalize(),
                tezos: self.tz_cp.merged(|a, b| a.merge(b)).finalize(),
                xrp: self.xrp_cp.merged(|a, b| a.merge(b)).finalize(),
            }
        };
        if let Some(m) = &self.metrics {
            let after = self.observed();
            m.eos_observed.add(after.0 - before.0);
            m.tezos_observed.add(after.1 - before.1);
            m.xrp_observed.add(after.2 - before.2);
            m.merges.inc();
            m.merge_us.record(merge_started.elapsed());
            m.published.inc();
            m.publish_latency_us.record(started.elapsed());
            m.batch_lag.set((self.total - self.offset) as u64);
        }
        Ok(self.data.fork_with_sweeps(sweeps))
    }
}
