//! Reports-side interpretation of the archive's opaque parts.
//!
//! `txstat_archive` moves bytes; this module gives them meaning: the
//! **manifest** (scenario fingerprint + segment sizing + chain lengths),
//! the **sidecar** (every non-block input the exhibits need — oracle
//! trades, the XRP account cluster, EOS CPU-price history, Tezos rolls and
//! governance windows), and the per-block wire-JSON codecs shared with the
//! NDJSON crawl replay and the follow layer's content hashes.
//!
//! Everything here is deterministic byte-for-byte: maps are exported in
//! sorted order and floats travel as IEEE-754 bit patterns, so archiving
//! the same scenario twice produces identical files and a cold-started
//! dataset reproduces the generated one's report exactly.

use rayon::prelude::*;
use txstat_archive::{SegmentBlocks, SegmentPayload};
use txstat_tezos::address::{AddrKind, Address};
use txstat_tezos::governance::PeriodKind;
use txstat_types::colcodec::{ColReader, ColWriter};
use txstat_types::time::{ChainTime, Period};
use txstat_types::SymCode;
use txstat_xrp::amount::IssuedCurrency;
use txstat_xrp::rates::TradeRecord;
use txstat_xrp::AccountId;

/// Sidecar format version (leading tag byte).
const SIDECAR_TAG: u8 = 1;

// ---- manifest ---------------------------------------------------------------

/// The archive manifest: which scenario the corpus captures, how it was
/// segmented, and each chain's block count.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The scenario fingerprint ([`crate::scenario_meta`]) every wire
    /// frame and fleet assignment is validated against.
    pub meta: serde_json::Value,
    /// Block positions per segment the corpus was written with.
    pub segment_blocks: u64,
    /// Block counts `[eos, tezos, xrp]`.
    pub lens: [u64; 3],
}

impl std::fmt::Display for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let lens: Vec<serde_json::Value> = self.lens.iter().map(|l| (*l).into()).collect();
        let s = serde_json::to_string(&serde_json::json!({
            "meta": self.meta.clone(),
            "segment_blocks": self.segment_blocks,
            "lens": lens,
        }))
        .expect("manifest is valid JSON");
        f.write_str(&s)
    }
}

impl Manifest {
    pub fn parse(s: &str) -> Result<Manifest, String> {
        let v: serde_json::Value =
            serde_json::from_str(s).map_err(|e| format!("archive manifest: {e}"))?;
        let meta = v.get("meta").cloned().ok_or("archive manifest carries no scenario meta")?;
        let segment_blocks = v
            .get("segment_blocks")
            .and_then(serde_json::Value::as_u64)
            .ok_or("archive manifest carries no segment_blocks")?;
        let lens_v = v
            .get("lens")
            .and_then(serde_json::Value::as_array)
            .ok_or("archive manifest carries no chain lengths")?;
        if lens_v.len() != 3 {
            return Err(format!("archive manifest lens: want 3 chains, got {}", lens_v.len()));
        }
        let mut lens = [0u64; 3];
        for (i, l) in lens_v.iter().enumerate() {
            lens[i] = l.as_u64().ok_or("archive manifest lens: not a u64")?;
        }
        Ok(Manifest { meta, segment_blocks, lens })
    }

    /// The block-position space `[0, total)` the segments tile.
    pub fn total_positions(&self) -> u64 {
        self.lens.iter().copied().max().unwrap_or(0)
    }
}

// ---- sidecar ----------------------------------------------------------------

/// Every non-block input of [`crate::PipelineData`], in archivable form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sidecar {
    /// IOU↔XRP exchange events (Figure 11b; also rebuilds the rate
    /// oracle exactly as the generate path does).
    pub trades: Vec<TradeRecord>,
    /// Registered usernames, sorted by account id.
    pub usernames: Vec<(AccountId, String)>,
    /// Activation parents, sorted by account id.
    pub parents: Vec<(AccountId, AccountId)>,
    /// (block number, CPU price index) per EOS block.
    pub eos_cpu_price: Vec<(u64, f64)>,
    pub eos_dropped_txs: u64,
    /// Baker roll counts, sorted by (kind, id).
    pub tezos_rolls: Vec<(Address, u64)>,
    /// Governance windows, in chain order.
    pub governance_periods: Vec<(PeriodKind, Period)>,
}

fn kind_tag(k: PeriodKind) -> u8 {
    match k {
        PeriodKind::Proposal => 0,
        PeriodKind::Exploration => 1,
        PeriodKind::Testing => 2,
        PeriodKind::Promotion => 3,
    }
}

fn addr_tag(k: AddrKind) -> u8 {
    match k {
        AddrKind::Implicit => 0,
        AddrKind::Originated => 1,
    }
}

impl Sidecar {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ColWriter::with_capacity(64 + self.trades.len() * 16);
        w.byte(SIDECAR_TAG);
        w.u64(self.trades.len() as u64);
        for t in &self.trades {
            w.i64(t.time.0);
            w.str(t.currency.currency.as_str());
            w.u64(t.currency.issuer.0);
            w.i128(t.iou_value);
            w.i64(t.drops);
            w.u64(t.maker.0);
        }
        w.u64(self.usernames.len() as u64);
        for (a, u) in &self.usernames {
            w.u64(a.0);
            w.str(u);
        }
        w.u64(self.parents.len() as u64);
        for (a, p) in &self.parents {
            w.u64(a.0);
            w.u64(p.0);
        }
        w.u64(self.eos_cpu_price.len() as u64);
        for (n, p) in &self.eos_cpu_price {
            w.u64(*n);
            w.f64(*p);
        }
        w.u64(self.eos_dropped_txs);
        w.u64(self.tezos_rolls.len() as u64);
        for (a, rolls) in &self.tezos_rolls {
            w.byte(addr_tag(a.kind));
            w.u64(a.id);
            w.u64(*rolls);
        }
        w.u64(self.governance_periods.len() as u64);
        for (k, p) in &self.governance_periods {
            w.byte(kind_tag(*k));
            w.i64(p.start.0);
            w.i64(p.end.0);
        }
        w.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> Result<Sidecar, String> {
        let mut r = ColReader::new(bytes);
        let fail = |e: txstat_types::colcodec::ColError| format!("archive sidecar: {e}");
        (|| -> Result<Sidecar, txstat_types::colcodec::ColError> {
            let tag = r.byte()?;
            if tag != SIDECAR_TAG {
                return Err(r.invalid(format!("bad sidecar tag {tag} (want {SIDECAR_TAG})")));
            }
            let mut s = Sidecar::default();
            for _ in 0..r.len(6)? {
                let time = ChainTime(r.i64()?);
                let currency = SymCode::new(r.str()?);
                let issuer = AccountId(r.u64()?);
                s.trades.push(TradeRecord {
                    time,
                    currency: IssuedCurrency { currency, issuer },
                    iou_value: r.i128()?,
                    drops: r.i64()?,
                    maker: AccountId(r.u64()?),
                });
            }
            for _ in 0..r.len(2)? {
                s.usernames.push((AccountId(r.u64()?), r.str()?.to_owned()));
            }
            for _ in 0..r.len(2)? {
                s.parents.push((AccountId(r.u64()?), AccountId(r.u64()?)));
            }
            for _ in 0..r.len(2)? {
                s.eos_cpu_price.push((r.u64()?, r.f64()?));
            }
            s.eos_dropped_txs = r.u64()?;
            for _ in 0..r.len(3)? {
                let tag = r.byte()?;
                let kind = match tag {
                    0 => AddrKind::Implicit,
                    1 => AddrKind::Originated,
                    _ => return Err(r.invalid(format!("bad address kind tag {tag}"))),
                };
                let addr = Address { kind, id: r.u64()? };
                s.tezos_rolls.push((addr, r.u64()?));
            }
            for _ in 0..r.len(3)? {
                let tag = r.byte()?;
                let kind = match tag {
                    0 => PeriodKind::Proposal,
                    1 => PeriodKind::Exploration,
                    2 => PeriodKind::Testing,
                    3 => PeriodKind::Promotion,
                    _ => return Err(r.invalid(format!("bad period kind tag {tag}"))),
                };
                let period = Period::new(ChainTime(r.i64()?), ChainTime(r.i64()?));
                s.governance_periods.push((kind, period));
            }
            r.finish()?;
            Ok(s)
        })()
        .map_err(fail)
    }
}

// ---- per-block wire-JSON codecs ---------------------------------------------
//
// One canonical home per chain: the chain crates' `rpc_model` modules own
// the wire byte codecs (the crawl replay and the NDJSON sources route
// through the same functions). These re-exports keep the reports-side
// names the archive layer has always used.

/// The canonical wire-JSON bytes of one EOS block — the same bytes the
/// NDJSON crawl replay moves and [`crate::eos_block_hash`] hashes, so a
/// stored block's content hash is `fnv1a64` of its archived bytes.
pub fn eos_block_bytes(b: &txstat_eos::Block) -> Vec<u8> {
    txstat_eos::rpc_model::block_bytes(b)
}

pub fn tezos_block_bytes(b: &txstat_tezos::TezosBlock) -> Vec<u8> {
    txstat_tezos::rpc_model::block_bytes(b)
}

pub fn xrp_block_bytes(b: &txstat_xrp::LedgerBlock) -> Vec<u8> {
    txstat_xrp::rpc_model::ledger_bytes(b)
}

pub fn eos_block_parse(bytes: &[u8]) -> Result<txstat_eos::Block, String> {
    txstat_eos::rpc_model::block_parse(bytes)
}

pub fn tezos_block_parse(bytes: &[u8]) -> Result<txstat_tezos::TezosBlock, String> {
    txstat_tezos::rpc_model::block_parse(bytes)
}

pub fn xrp_block_parse(bytes: &[u8]) -> Result<txstat_xrp::LedgerBlock, String> {
    txstat_xrp::rpc_model::ledger_parse(bytes)
}

// ---- segment assembly / replay ----------------------------------------------

/// Which on-disk segment payload schema to seal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentFormat {
    /// Per-block wire-JSON bytes (the original schema).
    V1,
    /// Per-chain columnar runs — interned tables + struct-of-arrays
    /// columns via the chain crates' `block_cols` codecs (the default).
    #[default]
    V2,
}

impl SegmentFormat {
    pub fn parse(s: &str) -> Result<SegmentFormat, String> {
        match s {
            "v1" => Ok(SegmentFormat::V1),
            "v2" => Ok(SegmentFormat::V2),
            other => Err(format!("unknown segment format {other:?} (want v1 or v2)")),
        }
    }
}

impl std::fmt::Display for SegmentFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SegmentFormat::V1 => "v1",
            SegmentFormat::V2 => "v2",
        })
    }
}

/// Cut the three chains into contiguous `[start, end)` segments of
/// `segment_blocks` positions each (the final segment absorbs the
/// remainder of the position space), sealed in the given payload schema.
pub fn segments_of(
    eos: &[txstat_eos::Block],
    tezos: &[txstat_tezos::TezosBlock],
    xrp: &[txstat_xrp::LedgerBlock],
    segment_blocks: u64,
    format: SegmentFormat,
) -> Vec<SegmentBlocks> {
    segments_of_from(eos, tezos, xrp, segment_blocks, 0, format)
}

/// [`segments_of`], but starting at position `from` instead of 0 — the
/// follow path uses this to re-seal only the tail that a reorg
/// invalidated. Segments tile `[from, total)` in `segment_blocks` steps.
pub fn segments_of_from(
    eos: &[txstat_eos::Block],
    tezos: &[txstat_tezos::TezosBlock],
    xrp: &[txstat_xrp::LedgerBlock],
    segment_blocks: u64,
    from: u64,
    format: SegmentFormat,
) -> Vec<SegmentBlocks> {
    let total = eos.len().max(tezos.len()).max(xrp.len()) as u64;
    let mut out = Vec::new();
    let mut start = from.min(total);
    while start < total {
        let end = (start + segment_blocks).min(total);
        let take = |len: usize| (start as usize).min(len)..(end as usize).min(len);
        let eos_run = &eos[take(eos.len())];
        let tezos_run = &tezos[take(tezos.len())];
        let xrp_run = &xrp[take(xrp.len())];
        let payload = match format {
            SegmentFormat::V1 => SegmentPayload::JsonV1 {
                eos: eos_run.iter().map(eos_block_bytes).collect(),
                tezos: tezos_run.iter().map(tezos_block_bytes).collect(),
                xrp: xrp_run.iter().map(xrp_block_bytes).collect(),
            },
            SegmentFormat::V2 => SegmentPayload::ColsV2 {
                eos: txstat_eos::block_cols::encode_blocks(eos_run),
                tezos: txstat_tezos::block_cols::encode_blocks(tezos_run),
                xrp: txstat_xrp::block_cols::encode_blocks(xrp_run),
            },
        };
        out.push(SegmentBlocks { start, end, payload });
        start = end;
    }
    out
}

/// The three parsed chain vectors a segment replay decodes into.
pub type ReplayedChains =
    (Vec<txstat_eos::Block>, Vec<txstat_tezos::TezosBlock>, Vec<txstat_xrp::LedgerBlock>);

/// Parse one replayed segment into its three chain runs. Works for both
/// payload schemas; errors name the segment's position range (and, for
/// columnar damage, the offset inside the chain blob).
pub fn chains_of_segment(seg: &SegmentBlocks) -> Result<ReplayedChains, String> {
    let at = |chain: &str, e: String| -> String {
        format!("segment [{}, {}) {chain}: {e}", seg.start, seg.end)
    };
    match &seg.payload {
        SegmentPayload::JsonV1 { eos, tezos, xrp } => {
            let eos = eos
                .iter()
                .map(|b| eos_block_parse(b))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| at("eos", e))?;
            let tezos = tezos
                .iter()
                .map(|b| tezos_block_parse(b))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| at("tezos", e))?;
            let xrp = xrp
                .iter()
                .map(|b| xrp_block_parse(b))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| at("xrp", e))?;
            Ok((eos, tezos, xrp))
        }
        SegmentPayload::ColsV2 { eos, tezos, xrp } => {
            let eos = txstat_eos::block_cols::decode_blocks(eos)
                .map_err(|e| at("eos columns", e.to_string()))?;
            let tezos = txstat_tezos::block_cols::decode_blocks(tezos)
                .map_err(|e| at("tezos columns", e.to_string()))?;
            let xrp = txstat_xrp::block_cols::decode_blocks(xrp)
                .map_err(|e| at("xrp columns", e.to_string()))?;
            Ok((eos, tezos, xrp))
        }
    }
}

/// Parse replayed segments (contiguous, in position order) back into the
/// three chain vectors. Segments parse on a rayon fan — they are
/// independent — and concatenate back in position order. The segments'
/// first position must be the chains' position `offset` (0 for a full
/// replay).
pub fn chains_of(segments: &[SegmentBlocks]) -> Result<ReplayedChains, String> {
    let per_seg: Vec<Result<ReplayedChains, String>> =
        segments.par_iter().map(chains_of_segment).collect_vec();
    let mut eos = Vec::new();
    let mut tezos = Vec::new();
    let mut xrp = Vec::new();
    for parsed in per_seg {
        let (e, t, x) = parsed?;
        eos.extend(e);
        tezos.extend(t);
        xrp.extend(x);
    }
    Ok((eos, tezos, xrp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_roundtrip() {
        let s = Sidecar {
            trades: vec![TradeRecord {
                time: ChainTime(1_234),
                currency: IssuedCurrency {
                    currency: SymCode::new("BTC"),
                    issuer: AccountId(7),
                },
                iou_value: -5_000_000,
                drops: 42_000,
                maker: AccountId(9),
            }],
            usernames: vec![(AccountId(1), "Binance".to_owned())],
            parents: vec![(AccountId(2), AccountId(1))],
            eos_cpu_price: vec![(10, 1.25), (11, f64::MIN_POSITIVE), (12, -0.0)],
            eos_dropped_txs: 77,
            tezos_rolls: vec![
                (Address { kind: AddrKind::Implicit, id: 3 }, 12),
                (Address { kind: AddrKind::Originated, id: 4 }, 0),
            ],
            governance_periods: vec![(
                PeriodKind::Exploration,
                Period::new(ChainTime(0), ChainTime(100)),
            )],
        };
        let bytes = s.encode();
        let back = Sidecar::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Exact bit round-trip for the floats, including -0.0.
        assert_eq!(back.eos_cpu_price[2].1.to_bits(), (-0.0f64).to_bits());
        // Damage never panics: every truncation of the sidecar errors.
        for cut in 0..bytes.len() {
            assert!(Sidecar::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            meta: serde_json::json!({"mode": "small", "seed": 7}),
            segment_blocks: 256,
            lens: [100, 80, 120],
        };
        let s = m.to_string();
        let back = Manifest::parse(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_positions(), 120);
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("not json").is_err());
    }
}
