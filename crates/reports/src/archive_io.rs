//! Reports-side interpretation of the archive's opaque parts.
//!
//! `txstat_archive` moves bytes; this module gives them meaning: the
//! **manifest** (scenario fingerprint + segment sizing + chain lengths),
//! the **sidecar** (every non-block input the exhibits need — oracle
//! trades, the XRP account cluster, EOS CPU-price history, Tezos rolls and
//! governance windows), and the per-block wire-JSON codecs shared with the
//! NDJSON crawl replay and the follow layer's content hashes.
//!
//! Everything here is deterministic byte-for-byte: maps are exported in
//! sorted order and floats travel as IEEE-754 bit patterns, so archiving
//! the same scenario twice produces identical files and a cold-started
//! dataset reproduces the generated one's report exactly.

use txstat_archive::SegmentBlocks;
use txstat_tezos::address::{AddrKind, Address};
use txstat_tezos::governance::PeriodKind;
use txstat_types::colcodec::{ColReader, ColWriter};
use txstat_types::time::{ChainTime, Period};
use txstat_types::SymCode;
use txstat_xrp::amount::IssuedCurrency;
use txstat_xrp::rates::TradeRecord;
use txstat_xrp::AccountId;

/// Sidecar format version (leading tag byte).
const SIDECAR_TAG: u8 = 1;

// ---- manifest ---------------------------------------------------------------

/// The archive manifest: which scenario the corpus captures, how it was
/// segmented, and each chain's block count.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The scenario fingerprint ([`crate::scenario_meta`]) every wire
    /// frame and fleet assignment is validated against.
    pub meta: serde_json::Value,
    /// Block positions per segment the corpus was written with.
    pub segment_blocks: u64,
    /// Block counts `[eos, tezos, xrp]`.
    pub lens: [u64; 3],
}

impl std::fmt::Display for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let lens: Vec<serde_json::Value> = self.lens.iter().map(|l| (*l).into()).collect();
        let s = serde_json::to_string(&serde_json::json!({
            "meta": self.meta.clone(),
            "segment_blocks": self.segment_blocks,
            "lens": lens,
        }))
        .expect("manifest is valid JSON");
        f.write_str(&s)
    }
}

impl Manifest {
    pub fn parse(s: &str) -> Result<Manifest, String> {
        let v: serde_json::Value =
            serde_json::from_str(s).map_err(|e| format!("archive manifest: {e}"))?;
        let meta = v.get("meta").cloned().ok_or("archive manifest carries no scenario meta")?;
        let segment_blocks = v
            .get("segment_blocks")
            .and_then(serde_json::Value::as_u64)
            .ok_or("archive manifest carries no segment_blocks")?;
        let lens_v = v
            .get("lens")
            .and_then(serde_json::Value::as_array)
            .ok_or("archive manifest carries no chain lengths")?;
        if lens_v.len() != 3 {
            return Err(format!("archive manifest lens: want 3 chains, got {}", lens_v.len()));
        }
        let mut lens = [0u64; 3];
        for (i, l) in lens_v.iter().enumerate() {
            lens[i] = l.as_u64().ok_or("archive manifest lens: not a u64")?;
        }
        Ok(Manifest { meta, segment_blocks, lens })
    }

    /// The block-position space `[0, total)` the segments tile.
    pub fn total_positions(&self) -> u64 {
        self.lens.iter().copied().max().unwrap_or(0)
    }
}

// ---- sidecar ----------------------------------------------------------------

/// Every non-block input of [`crate::PipelineData`], in archivable form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sidecar {
    /// IOU↔XRP exchange events (Figure 11b; also rebuilds the rate
    /// oracle exactly as the generate path does).
    pub trades: Vec<TradeRecord>,
    /// Registered usernames, sorted by account id.
    pub usernames: Vec<(AccountId, String)>,
    /// Activation parents, sorted by account id.
    pub parents: Vec<(AccountId, AccountId)>,
    /// (block number, CPU price index) per EOS block.
    pub eos_cpu_price: Vec<(u64, f64)>,
    pub eos_dropped_txs: u64,
    /// Baker roll counts, sorted by (kind, id).
    pub tezos_rolls: Vec<(Address, u64)>,
    /// Governance windows, in chain order.
    pub governance_periods: Vec<(PeriodKind, Period)>,
}

fn kind_tag(k: PeriodKind) -> u8 {
    match k {
        PeriodKind::Proposal => 0,
        PeriodKind::Exploration => 1,
        PeriodKind::Testing => 2,
        PeriodKind::Promotion => 3,
    }
}

fn addr_tag(k: AddrKind) -> u8 {
    match k {
        AddrKind::Implicit => 0,
        AddrKind::Originated => 1,
    }
}

impl Sidecar {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ColWriter::with_capacity(64 + self.trades.len() * 16);
        w.byte(SIDECAR_TAG);
        w.u64(self.trades.len() as u64);
        for t in &self.trades {
            w.i64(t.time.0);
            w.str(t.currency.currency.as_str());
            w.u64(t.currency.issuer.0);
            w.i128(t.iou_value);
            w.i64(t.drops);
            w.u64(t.maker.0);
        }
        w.u64(self.usernames.len() as u64);
        for (a, u) in &self.usernames {
            w.u64(a.0);
            w.str(u);
        }
        w.u64(self.parents.len() as u64);
        for (a, p) in &self.parents {
            w.u64(a.0);
            w.u64(p.0);
        }
        w.u64(self.eos_cpu_price.len() as u64);
        for (n, p) in &self.eos_cpu_price {
            w.u64(*n);
            w.f64(*p);
        }
        w.u64(self.eos_dropped_txs);
        w.u64(self.tezos_rolls.len() as u64);
        for (a, rolls) in &self.tezos_rolls {
            w.byte(addr_tag(a.kind));
            w.u64(a.id);
            w.u64(*rolls);
        }
        w.u64(self.governance_periods.len() as u64);
        for (k, p) in &self.governance_periods {
            w.byte(kind_tag(*k));
            w.i64(p.start.0);
            w.i64(p.end.0);
        }
        w.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> Result<Sidecar, String> {
        let mut r = ColReader::new(bytes);
        let fail = |e: txstat_types::colcodec::ColError| format!("archive sidecar: {e}");
        (|| -> Result<Sidecar, txstat_types::colcodec::ColError> {
            let tag = r.byte()?;
            if tag != SIDECAR_TAG {
                return Err(r.invalid(format!("bad sidecar tag {tag} (want {SIDECAR_TAG})")));
            }
            let mut s = Sidecar::default();
            for _ in 0..r.len(6)? {
                let time = ChainTime(r.i64()?);
                let currency = SymCode::new(r.str()?);
                let issuer = AccountId(r.u64()?);
                s.trades.push(TradeRecord {
                    time,
                    currency: IssuedCurrency { currency, issuer },
                    iou_value: r.i128()?,
                    drops: r.i64()?,
                    maker: AccountId(r.u64()?),
                });
            }
            for _ in 0..r.len(2)? {
                s.usernames.push((AccountId(r.u64()?), r.str()?.to_owned()));
            }
            for _ in 0..r.len(2)? {
                s.parents.push((AccountId(r.u64()?), AccountId(r.u64()?)));
            }
            for _ in 0..r.len(2)? {
                s.eos_cpu_price.push((r.u64()?, r.f64()?));
            }
            s.eos_dropped_txs = r.u64()?;
            for _ in 0..r.len(3)? {
                let tag = r.byte()?;
                let kind = match tag {
                    0 => AddrKind::Implicit,
                    1 => AddrKind::Originated,
                    _ => return Err(r.invalid(format!("bad address kind tag {tag}"))),
                };
                let addr = Address { kind, id: r.u64()? };
                s.tezos_rolls.push((addr, r.u64()?));
            }
            for _ in 0..r.len(3)? {
                let tag = r.byte()?;
                let kind = match tag {
                    0 => PeriodKind::Proposal,
                    1 => PeriodKind::Exploration,
                    2 => PeriodKind::Testing,
                    3 => PeriodKind::Promotion,
                    _ => return Err(r.invalid(format!("bad period kind tag {tag}"))),
                };
                let period = Period::new(ChainTime(r.i64()?), ChainTime(r.i64()?));
                s.governance_periods.push((kind, period));
            }
            r.finish()?;
            Ok(s)
        })()
        .map_err(fail)
    }
}

// ---- per-block wire-JSON codecs ---------------------------------------------

/// The canonical wire-JSON bytes of one EOS block — the same bytes the
/// NDJSON crawl replay moves and [`crate::eos_block_hash`] hashes, so a
/// stored block's content hash is `fnv1a64` of its archived bytes.
pub fn eos_block_bytes(b: &txstat_eos::Block) -> Vec<u8> {
    serde_json::to_vec(&txstat_eos::rpc_model::block_to_json(b)).expect("serializable")
}

pub fn tezos_block_bytes(b: &txstat_tezos::TezosBlock) -> Vec<u8> {
    serde_json::to_vec(&txstat_tezos::rpc_model::block_to_json(b)).expect("serializable")
}

pub fn xrp_block_bytes(b: &txstat_xrp::LedgerBlock) -> Vec<u8> {
    serde_json::to_vec(&txstat_xrp::rpc_model::ledger_to_json(b)).expect("serializable")
}

pub fn eos_block_parse(bytes: &[u8]) -> Result<txstat_eos::Block, String> {
    let wire: txstat_eos::rpc_model::BlockJson =
        serde_json::from_slice(bytes).map_err(|e| format!("archived eos block: {e}"))?;
    txstat_eos::rpc_model::block_from_json(&wire).map_err(|e| format!("archived eos block: {e}"))
}

pub fn tezos_block_parse(bytes: &[u8]) -> Result<txstat_tezos::TezosBlock, String> {
    let wire: txstat_tezos::rpc_model::BlockJson =
        serde_json::from_slice(bytes).map_err(|e| format!("archived tezos block: {e}"))?;
    txstat_tezos::rpc_model::block_from_json(&wire)
        .map_err(|e| format!("archived tezos block: {e}"))
}

pub fn xrp_block_parse(bytes: &[u8]) -> Result<txstat_xrp::LedgerBlock, String> {
    let v: serde_json::Value =
        serde_json::from_slice(bytes).map_err(|e| format!("archived xrp ledger: {e}"))?;
    txstat_xrp::rpc_model::ledger_from_json(&v).map_err(|e| format!("archived xrp ledger: {e}"))
}

// ---- segment assembly / replay ----------------------------------------------

/// Cut the three chains into contiguous `[start, end)` segments of
/// `segment_blocks` positions each (the final segment absorbs the
/// remainder of the position space).
pub fn segments_of(
    eos: &[txstat_eos::Block],
    tezos: &[txstat_tezos::TezosBlock],
    xrp: &[txstat_xrp::LedgerBlock],
    segment_blocks: u64,
) -> Vec<SegmentBlocks> {
    segments_of_from(eos, tezos, xrp, segment_blocks, 0)
}

/// [`segments_of`], but starting at position `from` instead of 0 — the
/// follow path uses this to re-seal only the tail that a reorg
/// invalidated. Segments tile `[from, total)` in `segment_blocks` steps.
pub fn segments_of_from(
    eos: &[txstat_eos::Block],
    tezos: &[txstat_tezos::TezosBlock],
    xrp: &[txstat_xrp::LedgerBlock],
    segment_blocks: u64,
    from: u64,
) -> Vec<SegmentBlocks> {
    let total = eos.len().max(tezos.len()).max(xrp.len()) as u64;
    let mut out = Vec::new();
    let mut start = from.min(total);
    while start < total {
        let end = (start + segment_blocks).min(total);
        let mut seg = SegmentBlocks::new(start, end);
        let take = |len: usize| (start as usize).min(len)..(end as usize).min(len);
        seg.eos = eos[take(eos.len())].iter().map(eos_block_bytes).collect();
        seg.tezos = tezos[take(tezos.len())].iter().map(tezos_block_bytes).collect();
        seg.xrp = xrp[take(xrp.len())].iter().map(xrp_block_bytes).collect();
        out.push(seg);
        start = end;
    }
    out
}

/// The three parsed chain vectors a segment replay decodes into.
pub type ReplayedChains =
    (Vec<txstat_eos::Block>, Vec<txstat_tezos::TezosBlock>, Vec<txstat_xrp::LedgerBlock>);

/// Parse replayed segments (contiguous, in position order) back into the
/// three chain vectors. The segments' first position must be the chains'
/// position `offset` (0 for a full replay).
pub fn chains_of(segments: &[SegmentBlocks]) -> Result<ReplayedChains, String> {
    let mut eos = Vec::new();
    let mut tezos = Vec::new();
    let mut xrp = Vec::new();
    for seg in segments {
        for b in &seg.eos {
            eos.push(eos_block_parse(b)?);
        }
        for b in &seg.tezos {
            tezos.push(tezos_block_parse(b)?);
        }
        for b in &seg.xrp {
            xrp.push(xrp_block_parse(b)?);
        }
    }
    Ok((eos, tezos, xrp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_roundtrip() {
        let s = Sidecar {
            trades: vec![TradeRecord {
                time: ChainTime(1_234),
                currency: IssuedCurrency {
                    currency: SymCode::new("BTC"),
                    issuer: AccountId(7),
                },
                iou_value: -5_000_000,
                drops: 42_000,
                maker: AccountId(9),
            }],
            usernames: vec![(AccountId(1), "Binance".to_owned())],
            parents: vec![(AccountId(2), AccountId(1))],
            eos_cpu_price: vec![(10, 1.25), (11, f64::MIN_POSITIVE), (12, -0.0)],
            eos_dropped_txs: 77,
            tezos_rolls: vec![
                (Address { kind: AddrKind::Implicit, id: 3 }, 12),
                (Address { kind: AddrKind::Originated, id: 4 }, 0),
            ],
            governance_periods: vec![(
                PeriodKind::Exploration,
                Period::new(ChainTime(0), ChainTime(100)),
            )],
        };
        let bytes = s.encode();
        let back = Sidecar::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Exact bit round-trip for the floats, including -0.0.
        assert_eq!(back.eos_cpu_price[2].1.to_bits(), (-0.0f64).to_bits());
        // Damage never panics: every truncation of the sidecar errors.
        for cut in 0..bytes.len() {
            assert!(Sidecar::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            meta: serde_json::json!({"mode": "small", "seed": 7}),
            segment_blocks: 256,
            lens: [100, 80, 120],
        };
        let s = m.to_string();
        let back = Manifest::parse(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_positions(), 120);
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("not json").is_err());
    }
}
