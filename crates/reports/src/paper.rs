//! Paper-vs-measured comparison: the scale-invariant metrics of every
//! exhibit, with the paper's published value next to our reproduction.
//! This feeds EXPERIMENTS.md.

use crate::pipeline::PipelineData;
use txstat_core::eos_analysis as eos;
use txstat_types::table::{Align, TextTable};
use txstat_xrp::amount::IssuedCurrency;

/// One comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    pub exhibit: &'static str,
    pub metric: &'static str,
    pub paper: String,
    pub measured: String,
    /// Whether the measured value lands inside the acceptance band used by
    /// the integration tests (shape reproduction, not exact numerics).
    pub within_band: bool,
}

fn row(
    exhibit: &'static str,
    metric: &'static str,
    paper: impl std::fmt::Display,
    measured: impl std::fmt::Display,
    within_band: bool,
) -> ComparisonRow {
    ComparisonRow {
        exhibit,
        metric,
        paper: paper.to_string(),
        measured: measured.to_string(),
        within_band,
    }
}

/// Compute every comparison row.
pub fn comparison(data: &PipelineData) -> Vec<ComparisonRow> {
    let period = data.scenario.period;
    let sweeps = data.sweeps();
    let mut rows = Vec::new();

    // --- Figure 1 shares ----------------------------------------------------
    let (eos_rows, eos_total) = sweeps.eos.action_distribution();
    let transfer_share = eos_rows
        .iter()
        .filter(|r| r.class == eos::EosActionClass::P2pTransaction)
        .map(|r| r.count)
        .sum::<u64>() as f64
        * 100.0
        / eos_total.max(1) as f64;
    rows.push(row(
        "Fig 1 (EOS)",
        "token transfers, % of actions",
        "91.6%",
        format!("{transfer_share:.1}%"),
        (80.0..=97.0).contains(&transfer_share),
    ));

    let (tz_rows, tz_total) = sweeps.tezos.op_distribution();
    let endorse_share = tz_rows
        .iter()
        .find(|r| r.kind == txstat_tezos::OperationKind::Endorsement)
        .map(|r| r.count)
        .unwrap_or(0) as f64
        * 100.0
        / tz_total.max(1) as f64;
    rows.push(row(
        "Fig 1 (Tezos)",
        "endorsements, % of operations",
        "81.7%",
        format!("{endorse_share:.1}%"),
        (65.0..=92.0).contains(&endorse_share),
    ));

    let (x_rows, x_total) = sweeps.xrp.tx_distribution();
    let share_of = |t: txstat_xrp::TxType| {
        x_rows.iter().find(|r| r.tx_type == t).map(|r| r.count).unwrap_or(0) as f64 * 100.0
            / x_total.max(1) as f64
    };
    let offer_share = share_of(txstat_xrp::TxType::OfferCreate);
    let payment_share = share_of(txstat_xrp::TxType::Payment);
    rows.push(row(
        "Fig 1 (XRP)",
        "OfferCreate, % of transactions",
        "50.4%",
        format!("{offer_share:.1}%"),
        (35.0..=65.0).contains(&offer_share),
    ));
    rows.push(row(
        "Fig 1 (XRP)",
        "Payment, % of transactions",
        "46.2%",
        format!("{payment_share:.1}%"),
        (30.0..=60.0).contains(&payment_share),
    ));

    // --- Headline TPS (normalized back to mainnet scale) ---------------------
    let eos_tps = sweeps.eos.tps() * data.scenario.eos_divisor;
    rows.push(row(
        "§1",
        "EOS TPS (divisor-normalized)",
        "~47 avg (20 'current')",
        format!("{eos_tps:.0}"),
        (20.0..=80.0).contains(&eos_tps),
    ));
    let tz_tps = sweeps.tezos.tps() * data.scenario.tezos_divisor;
    rows.push(row(
        "§1",
        "Tezos payment TPS (normalized)",
        "0.08",
        format!("{tz_tps:.3}"),
        (0.04..=0.16).contains(&tz_tps),
    ));
    let x_tps = sweeps.xrp.tps() * data.scenario.xrp_divisor;
    rows.push(row(
        "§1",
        "XRP TPS (normalized)",
        "19",
        format!("{x_tps:.0}"),
        (10.0..=30.0).contains(&x_tps),
    ));

    // --- Figure 3a spike ------------------------------------------------------
    let launch = txstat_workload::eidos_launch();
    if period.contains(launch) {
        let curated = eos::EosLabels::curated();
        let labels = sweeps.eos.labels(100, &|n| curated.get(n));
        let series = sweeps.eos.throughput_series(&labels);
        let launch_bucket = launch.bucket_index(period.start, txstat_types::SIX_HOURS).max(0) as usize;
        let tokens = txstat_eos::AppCategory::Tokens;
        let pre: u64 = (0..launch_bucket.min(series.bucket_count()))
            .map(|i| series.get(i, &tokens))
            .sum();
        let post: u64 = (launch_bucket..series.bucket_count())
            .map(|i| series.get(i, &tokens))
            .sum();
        let pre_rate = pre as f64 / launch_bucket.max(1) as f64;
        let post_rate = post as f64 / (series.bucket_count() - launch_bucket).max(1) as f64;
        let spike = post_rate / pre_rate.max(1e-9);
        rows.push(row(
            "Fig 3a",
            "token-category spike after Nov 1",
            ">10×",
            format!("{spike:.1}×"),
            spike >= 6.0,
        ));
    }

    // --- Figure 7 --------------------------------------------------------------
    let f = sweeps.xrp.funnel();
    rows.push(row(
        "Fig 7",
        "failed transactions, % of total",
        "10.7%",
        format!("{:.1}%", f.pct(f.failed)),
        (5.0..=18.0).contains(&f.pct(f.failed)),
    ));
    rows.push(row(
        "Fig 7",
        "payments with value, % of total",
        "2.1%",
        format!("{:.1}%", f.pct(f.payments_with_value)),
        (0.8..=6.0).contains(&f.pct(f.payments_with_value)),
    ));
    rows.push(row(
        "Fig 7",
        "economic value share of throughput",
        "2.3%",
        format!("{:.1}%", f.economic_share_pct()),
        (0.9..=7.0).contains(&f.economic_share_pct()),
    ));
    rows.push(row(
        "Fig 7 / §3.2",
        "1 valuable payment in N successful",
        "19",
        format!("{:.0}", f.valuable_payment_ratio()),
        (8.0..=40.0).contains(&f.valuable_payment_ratio()),
    ));
    rows.push(row(
        "Fig 7 / §3.2",
        "offers ever fulfilled, % of offers",
        "0.2%",
        format!("{:.2}%", f.offer_fulfillment_pct()),
        (0.02..=1.5).contains(&f.offer_fulfillment_pct()),
    ));

    // --- Figure 8 ----------------------------------------------------------------
    let active = sweeps.xrp.most_active(10, &data.cluster);
    if let Some(top) = active.first() {
        let offer_dom = top.offer_creates as f64 * 100.0 / top.total.max(1) as f64;
        rows.push(row(
            "Fig 8",
            "top account OfferCreate dominance",
            ">98%",
            format!("{offer_dom:.1}%"),
            offer_dom >= 90.0,
        ));
        let top10_share: f64 = active.iter().map(|a| a.share_pct).sum();
        rows.push(row(
            "Fig 8",
            "top-10 accounts, % of throughput",
            "~44%",
            format!("{top10_share:.1}%"),
            (25.0..=60.0).contains(&top10_share),
        ));
        let huobi_desc = active
            .iter()
            .filter(|a| {
                a.entity.as_deref().map(|e| e.contains("Huobi")).unwrap_or(false)
            })
            .count();
        rows.push(row(
            "Fig 8 / §3.3",
            "top accounts tied to Huobi",
            "9 of 10",
            format!("{huobi_desc} of {}", active.len()),
            huobi_desc >= 5,
        ));
    }

    // --- §3.3 concentration -------------------------------------------------------
    let conc = sweeps.xrp.concentration();
    rows.push(row(
        "§3.3",
        "accounts carrying half the XRP traffic",
        "18",
        conc.half_traffic_accounts,
        conc.half_traffic_accounts <= 120,
    ));

    // --- Figure 9 -----------------------------------------------------------------
    let curves = sweeps.tezos.governance_curves(&data.tezos_rolls);
    if let Some(exploration) = curves
        .iter()
        .find(|c| c.kind == txstat_tezos::PeriodKind::Exploration && !c.curves.is_empty())
    {
        rows.push(row(
            "Fig 9b",
            "exploration participation (rolls)",
            ">81%",
            format!("{:.1}%", exploration.participation_pct),
            exploration.participation_pct >= 75.0,
        ));
        let nay = exploration.curves.iter().find(|c| c.label == "nay").map(|c| c.total()).unwrap_or(0);
        rows.push(row(
            "Fig 9b",
            "exploration nay votes",
            "0",
            nay,
            nay == 0,
        ));
    }
    if let Some(promotion) = curves
        .iter()
        .find(|c| c.kind == txstat_tezos::PeriodKind::Promotion && !c.curves.is_empty())
    {
        let yay = promotion.curves.iter().find(|c| c.label == "yay").map(|c| c.total()).unwrap_or(0);
        let nay = promotion.curves.iter().find(|c| c.label == "nay").map(|c| c.total()).unwrap_or(0);
        let nay_share = nay as f64 * 100.0 / (yay + nay).max(1) as f64;
        rows.push(row(
            "Fig 9c",
            "promotion nay share of cast votes",
            "15%",
            format!("{nay_share:.1}%"),
            (5.0..=25.0).contains(&nay_share),
        ));
    }

    // --- Figure 11a ------------------------------------------------------------------
    let btc_bitstamp = data
        .oracle
        .rate(IssuedCurrency::new("BTC", txstat_workload::xrp::BITSTAMP));
    rows.push(row(
        "Fig 11a",
        "BTC IOU rate, Bitstamp (XRP)",
        "36,050",
        btc_bitstamp.map(|r| format!("{r:.0}")).unwrap_or_else(|| "untraded".into()),
        btc_bitstamp.map(|r| (30_000.0..=42_000.0).contains(&r)).unwrap_or(false),
    ));
    let btc_spam = data
        .oracle
        .rate(IssuedCurrency::new("BTC", txstat_workload::xrp::SPAMMER));
    rows.push(row(
        "Fig 11a",
        "BTC IOU rate, spam issuer",
        "0",
        btc_spam.map(|r| format!("{r:.1}")).unwrap_or_else(|| "untraded (no value)".into()),
        btc_spam.unwrap_or(0.0) == 0.0,
    ));

    // --- Figure 12 -----------------------------------------------------------------------
    let flow = sweeps.xrp.value_flow(&data.cluster);
    let xrp_vol_normalized = flow.xrp_payment_volume * data.scenario.xrp_divisor / 1e9;
    rows.push(row(
        "Fig 12",
        "XRP payment volume (normalized, B)",
        "43",
        format!("{xrp_vol_normalized:.1}"),
        (25.0..=65.0).contains(&xrp_vol_normalized),
    ));
    let binance_sent = flow
        .top_senders
        .iter()
        .find(|(e, _)| e == "Binance")
        .map(|(_, v)| v * data.scenario.xrp_divisor / 1e9)
        .unwrap_or(0.0);
    rows.push(row(
        "Fig 12",
        "Binance sent volume (normalized, B XRP)",
        "5.2",
        format!("{binance_sent:.2}"),
        (3.0..=8.0).contains(&binance_sent),
    ));

    // --- Case studies -----------------------------------------------------------------------
    let wash = sweeps.eos.wash_trading_report();
    rows.push(row(
        "§4.1",
        "trades involving top-5 accounts",
        ">70%",
        format!("{:.0}%", wash.top5_participation * 100.0),
        wash.top5_participation >= 0.55,
    ));
    if !wash.top_accounts.is_empty() {
        // Aggregate self-trade share across the top-5 accounts (stable
        // against count ties at small scales).
        let (selfs, trades): (f64, f64) = wash
            .top_accounts
            .iter()
            .fold((0.0, 0.0), |(s, t), (_, c, share)| (s + share * *c as f64, t + *c as f64));
        let share = selfs / trades.max(1.0);
        rows.push(row(
            "§4.1",
            "top-5 accounts' self-trade share",
            ">85%",
            format!("{:.0}%", share * 100.0),
            share >= 0.55,
        ));
    }
    let boomerang = sweeps.eos.boomerang_report();
    rows.push(row(
        "§4.1 / §6",
        "EIDOS share of transfer actions",
        "95%",
        format!("{:.0}%", boomerang.transfer_share * 100.0),
        boomerang.transfer_share >= 0.75,
    ));
    let gov_ops = sweeps.tezos.governance_op_count() as f64 * data.scenario.tezos_divisor;
    rows.push(row(
        "§4.2",
        "governance ops in window (normalized)",
        "245",
        format!("{gov_ops:.0}"),
        (60.0..=700.0).contains(&gov_ops),
    ));
    let spam_children = data.cluster.children_of(txstat_workload::xrp::SPAMMER) as f64;
    let target = txstat_workload::xrp::spam_children(data.scenario.xrp_divisor) as f64;
    rows.push(row(
        "§4.3",
        "spam children activated (soft-scaled)",
        "5,020 at full scale",
        format!("{spam_children:.0} (design target {target:.0})"),
        (0.8 * target..=1.2 * target).contains(&spam_children) && spam_children >= 24.0,
    ));

    rows
}

/// Render the comparison as a table.
pub fn render_comparison(rows: &[ComparisonRow]) -> String {
    let mut t = TextTable::new(&["Exhibit", "Metric", "Paper", "Measured", "Band"])
        .with_title("Paper vs measured (shape reproduction at scenario scale)")
        .with_aligns(&[Align::Left, Align::Left, Align::Right, Align::Right, Align::Left]);
    for r in rows {
        t.add_row(vec![
            r.exhibit.to_owned(),
            r.metric.to_owned(),
            r.paper.clone(),
            r.measured.clone(),
            if r.within_band { "ok".into() } else { "MISS".into() },
        ]);
    }
    t.render()
}
