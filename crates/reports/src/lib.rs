//! # txstat-reports — regenerating every exhibit of the paper
//!
//! [`pipeline`] assembles the dataset (directly or through the full RPC
//! crawl), [`exhibits`] renders each table and figure, [`paper`] produces
//! the paper-vs-measured comparison that EXPERIMENTS.md records, and
//! [`serve`] wraps it all in an epoch-swapped long-lived query service.

pub mod archive_io;
pub mod exhibits;
pub mod paper;
pub mod pipeline;
pub mod serve;

pub use exhibits::{
    comparison_section, render_all, render_report, report_sections, SECTIONS, SECTION_BREAK,
};
pub use paper::{comparison, render_comparison, ComparisonRow};
pub use serve::{EpochFollower, ServeSnapshot, StatsService};
pub use archive_io::{Manifest, SegmentFormat, Sidecar};
pub use pipeline::{
    create_archive_writer, eos_block_hash, generate, generate_with_crawl,
    generate_with_crawl_streamed, pipeline_from_archive, reduce_frames, reduce_frames_labeled,
    reduce_frames_labeled_into, reorg_data, scenario_from_meta, scenario_meta, shard_scenario,
    tezos_block_hash, write_archive, xrp_block_hash, ArchiveStats, ChainStreamInfo, ChainSweeps,
    CrawlOptions, PipelineData, ShardContext, StreamSummary, DEFAULT_SEGMENT_CACHE_MB,
};

#[cfg(test)]
mod tests;
