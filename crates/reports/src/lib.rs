//! # txstat-reports — regenerating every exhibit of the paper
//!
//! [`pipeline`] assembles the dataset (directly or through the full RPC
//! crawl), [`exhibits`] renders each table and figure, and [`paper`]
//! produces the paper-vs-measured comparison that EXPERIMENTS.md records.

pub mod exhibits;
pub mod paper;
pub mod pipeline;

pub use exhibits::render_all;
pub use paper::{comparison, render_comparison, ComparisonRow};
pub use pipeline::{
    generate, generate_with_crawl, generate_with_crawl_streamed, reduce_frames, scenario_from_meta,
    scenario_meta, shard_scenario, ChainStreamInfo, ChainSweeps, CrawlOptions, PipelineData,
    StreamSummary,
};

#[cfg(test)]
mod tests;
