//! EOS resource model: CPU/NET staking, REX rentals, the RAM market, and the
//! elastic CPU limit whose collapse is the paper's EIDOS congestion story.
//!
//! EOS has no per-transaction fees (§2.4): accounts stake EOS for CPU/NET
//! bandwidth and buy RAM from a Bancor-style market. Under light load the
//! chain lets accounts burst far beyond their staked share ("greedy" mode,
//! up to a large elastic multiplier); when blocks run hot the multiplier
//! contracts toward 1 and every account is clamped to its staked share —
//! *congestion mode*. The EIDOS airdrop (§4.1) pushed the chain into
//! sustained congestion and made CPU rental prices spike ~10,000%.

use crate::name::Name;
use crate::types::AssetRaw;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use txstat_types::time::ChainTime;

/// Static parameters of the resource model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// Sliding accounting window (mainnet: 24 h).
    pub window_secs: i64,
    /// Target CPU per block (µs); above this the elastic limit contracts.
    pub target_block_cpu_us: u64,
    /// Hard per-block CPU ceiling (µs).
    pub max_block_cpu_us: u64,
    /// Maximum elastic multiplier (mainnet: 1000×).
    pub max_multiplier: f64,
    /// Blocks per accounting window (depends on the scenario block interval).
    pub blocks_per_window: u64,
    /// Contraction ratio applied per hot block (mainnet: 99/100 per block).
    pub contract_ratio: f64,
    /// Expansion ratio applied per cool block (mainnet: 1000/999).
    pub expand_ratio: f64,
}

impl Default for ResourceConfig {
    fn default() -> Self {
        ResourceConfig {
            window_secs: 86_400,
            target_block_cpu_us: 200_000,
            max_block_cpu_us: 400_000,
            max_multiplier: 1000.0,
            blocks_per_window: 172_800, // 0.5 s blocks over 24 h
            contract_ratio: 0.99,
            expand_ratio: 1000.0 / 999.0,
        }
    }
}

/// Per-account decaying usage accumulator (linear window decay, like
/// eosio's `usage_accumulator`).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Usage {
    last: ChainTime,
    value_us: f64,
}

impl Usage {
    fn decayed(&self, now: ChainTime, window: i64) -> f64 {
        let dt = (now - self.last).max(0);
        if dt >= window {
            0.0
        } else {
            self.value_us * (window - dt) as f64 / window as f64
        }
    }

    fn add(&mut self, now: ChainTime, us: u64, window: i64) {
        self.value_us = self.decayed(now, window) + us as f64;
        self.last = now;
    }
}

/// An active REX CPU rental.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Rental {
    pub receiver: Name,
    /// Stake-equivalent CPU weight granted by the rental.
    pub cpu_weight: u64,
    pub expires: ChainTime,
}

/// Errors from resource operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// The account exhausted its CPU allowance (tx_cpu_usage_exceeded).
    CpuExceeded { account: Name, used_us: u64, limit_us: u64 },
    NetExceeded { account: Name },
    InsufficientStake { account: Name },
    InsufficientRam { account: Name, need: u64, have: u64 },
    BadAmount,
}

impl std::fmt::Display for ResourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceError::CpuExceeded { account, used_us, limit_us } => write!(
                f,
                "tx_cpu_usage_exceeded: {account} used {used_us}us of {limit_us}us"
            ),
            ResourceError::NetExceeded { account } => write!(f, "net exceeded for {account}"),
            ResourceError::InsufficientStake { account } => {
                write!(f, "insufficient stake for {account}")
            }
            ResourceError::InsufficientRam { account, need, have } => {
                write!(f, "{account} needs {need} RAM bytes, has {have}")
            }
            ResourceError::BadAmount => write!(f, "amount must be positive"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// Bancor-style RAM market (`rammarket` on mainnet): a connector pair of
/// RAM bytes against EOS. Buying RAM raises its price; a 0.5% fee applies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RamMarket {
    pub ram_reserve_bytes: u64,
    pub eos_reserve: AssetRaw,
    /// Fee in basis points charged on the EOS side of buys/sells.
    pub fee_bps: u32,
}

impl RamMarket {
    pub fn new(ram_reserve_bytes: u64, eos_reserve: AssetRaw) -> Self {
        RamMarket { ram_reserve_bytes, eos_reserve, fee_bps: 50 }
    }

    /// Bytes received for `eos_in`; updates reserves.
    pub fn buy_bytes(&mut self, eos_in: AssetRaw) -> Result<u64, ResourceError> {
        if eos_in <= 0 {
            return Err(ResourceError::BadAmount);
        }
        let fee = eos_in * self.fee_bps as i64 / 10_000;
        let net_in = eos_in - fee;
        let out = (self.ram_reserve_bytes as i128 * net_in as i128
            / (self.eos_reserve as i128 + net_in as i128)) as u64;
        self.eos_reserve += net_in;
        self.ram_reserve_bytes -= out;
        Ok(out)
    }

    /// EOS received for selling `bytes`; updates reserves.
    pub fn sell_bytes(&mut self, bytes: u64) -> Result<AssetRaw, ResourceError> {
        if bytes == 0 {
            return Err(ResourceError::BadAmount);
        }
        let gross = (self.eos_reserve as i128 * bytes as i128
            / (self.ram_reserve_bytes as i128 + bytes as i128)) as AssetRaw;
        let fee = gross * self.fee_bps as i64 / 10_000;
        self.ram_reserve_bytes += bytes;
        self.eos_reserve -= gross;
        Ok(gross - fee)
    }

    /// Marginal price in EOS sub-units per byte (×10⁴ fixed point of the
    /// connector ratio).
    pub fn price_per_kib(&self) -> f64 {
        self.eos_reserve as f64 / self.ram_reserve_bytes as f64 * 1024.0
    }
}

/// The chain-wide resource state.
#[derive(Debug, Clone)]
pub struct ResourceState {
    pub cfg: ResourceConfig,
    /// Elastic CPU multiplier, in `[1, max_multiplier]`.
    virtual_multiplier: f64,
    /// CPU-staked weight per receiver account (sub-units of EOS).
    cpu_stake: HashMap<Name, u64>,
    net_stake: HashMap<Name, u64>,
    total_cpu_stake: u64,
    rentals: Vec<Rental>,
    usage: HashMap<Name, Usage>,
    pub ram: RamMarket,
    ram_bytes: HashMap<Name, u64>,
    ram_used: HashMap<Name, u64>,
}

impl ResourceState {
    pub fn new(cfg: ResourceConfig) -> Self {
        let virtual_multiplier = cfg.max_multiplier;
        ResourceState {
            cfg,
            virtual_multiplier,
            cpu_stake: HashMap::new(),
            net_stake: HashMap::new(),
            total_cpu_stake: 0,
            rentals: Vec::new(),
            usage: HashMap::new(),
            ram: RamMarket::new(64 * 1024 * 1024 * 1024, 10_000_000_0000),
            ram_bytes: HashMap::new(),
            ram_used: HashMap::new(),
        }
    }

    // ---- staking -------------------------------------------------------

    pub fn delegate(&mut self, receiver: Name, net: AssetRaw, cpu: AssetRaw) -> Result<(), ResourceError> {
        if net < 0 || cpu < 0 || (net == 0 && cpu == 0) {
            return Err(ResourceError::BadAmount);
        }
        *self.cpu_stake.entry(receiver).or_insert(0) += cpu as u64;
        *self.net_stake.entry(receiver).or_insert(0) += net as u64;
        self.total_cpu_stake += cpu as u64;
        Ok(())
    }

    pub fn undelegate(&mut self, receiver: Name, net: AssetRaw, cpu: AssetRaw) -> Result<(), ResourceError> {
        if net < 0 || cpu < 0 || (net == 0 && cpu == 0) {
            return Err(ResourceError::BadAmount);
        }
        let c = self.cpu_stake.entry(receiver).or_insert(0);
        let n = self.net_stake.entry(receiver).or_insert(0);
        if *c < cpu as u64 || *n < net as u64 {
            return Err(ResourceError::InsufficientStake { account: receiver });
        }
        *c -= cpu as u64;
        *n -= net as u64;
        self.total_cpu_stake -= cpu as u64;
        Ok(())
    }

    /// REX `rentcpu`: the payment grants a stake-equivalent weight
    /// (10× leverage here, roughly mainnet's rental efficiency) for 30 days.
    pub fn rent_cpu(&mut self, receiver: Name, payment: AssetRaw, now: ChainTime) -> Result<(), ResourceError> {
        if payment <= 0 {
            return Err(ResourceError::BadAmount);
        }
        self.rentals.push(Rental {
            receiver,
            cpu_weight: payment as u64 * 10,
            expires: now + 30 * 86_400,
        });
        Ok(())
    }

    pub fn cpu_staked(&self, account: Name) -> u64 {
        self.cpu_stake.get(&account).copied().unwrap_or(0)
    }

    fn rented_weight(&self, account: Name, now: ChainTime) -> u64 {
        self.rentals
            .iter()
            .filter(|r| r.receiver == account && r.expires.secs() > now.secs())
            .map(|r| r.cpu_weight)
            .sum()
    }

    // ---- CPU accounting --------------------------------------------------

    /// Chain CPU capacity per accounting window, µs (the guaranteed pool).
    fn window_cpu_us(&self) -> f64 {
        self.cfg.target_block_cpu_us as f64 * self.cfg.blocks_per_window as f64
    }

    /// The account's CPU allowance over the window, µs: its staked share of
    /// the window capacity, multiplied by the elastic multiplier. Relaxed
    /// chain (multiplier = max): accounts burst far beyond their guarantee;
    /// congestion (multiplier → 1): exactly the staked share (§4.1).
    pub fn cpu_limit_us(&self, account: Name, now: ChainTime) -> u64 {
        if self.total_cpu_stake == 0 {
            return 0;
        }
        let weight = self.cpu_staked(account) + self.rented_weight(account, now);
        (self.window_cpu_us() * weight as f64 / self.total_cpu_stake as f64
            * self.virtual_multiplier) as u64
    }

    /// Current decayed usage, µs.
    pub fn cpu_used_us(&self, account: Name, now: ChainTime) -> u64 {
        self.usage
            .get(&account)
            .map(|u| u.decayed(now, self.cfg.window_secs) as u64)
            .unwrap_or(0)
    }

    /// Bill `us` of CPU to `account`; fails with `CpuExceeded` if the
    /// account is over its allowance.
    pub fn charge_cpu(&mut self, account: Name, us: u64, now: ChainTime) -> Result<(), ResourceError> {
        let limit = self.cpu_limit_us(account, now);
        let used = self.cpu_used_us(account, now);
        if used + us > limit {
            return Err(ResourceError::CpuExceeded { account, used_us: used + us, limit_us: limit });
        }
        self.usage
            .entry(account)
            .or_default()
            .add(now, us, self.cfg.window_secs);
        Ok(())
    }

    /// Elastic-limit controller, called once per produced block with the
    /// block's total CPU usage.
    pub fn on_block(&mut self, block_cpu_us: u64) {
        if block_cpu_us > self.cfg.target_block_cpu_us {
            self.virtual_multiplier = (self.virtual_multiplier * self.cfg.contract_ratio).max(1.0);
        } else {
            self.virtual_multiplier =
                (self.virtual_multiplier * self.cfg.expand_ratio).min(self.cfg.max_multiplier);
        }
    }

    /// Congestion mode: the elastic multiplier has collapsed to ~1×, so
    /// accounts can only use their staked share.
    pub fn congested(&self) -> bool {
        self.virtual_multiplier <= 1.0 + 1e-9
    }

    pub fn multiplier(&self) -> f64 {
        self.virtual_multiplier
    }

    /// Relative CPU price index: 1.0 when fully relaxed; equals
    /// `max_multiplier` (e.g. 1000×) when fully congested. The paper reports
    /// the EIDOS launch spiking CPU prices by ~10,000%.
    pub fn cpu_price_index(&self) -> f64 {
        self.cfg.max_multiplier / self.virtual_multiplier
    }

    // ---- RAM -------------------------------------------------------------

    pub fn buy_ram_eos(&mut self, receiver: Name, eos_in: AssetRaw) -> Result<u64, ResourceError> {
        let bytes = self.ram.buy_bytes(eos_in)?;
        *self.ram_bytes.entry(receiver).or_insert(0) += bytes;
        Ok(bytes)
    }

    pub fn grant_ram(&mut self, receiver: Name, bytes: u64) {
        *self.ram_bytes.entry(receiver).or_insert(0) += bytes;
    }

    pub fn use_ram(&mut self, account: Name, bytes: u64) -> Result<(), ResourceError> {
        let quota = self.ram_bytes.get(&account).copied().unwrap_or(0);
        let used = self.ram_used.entry(account).or_insert(0);
        if *used + bytes > quota {
            return Err(ResourceError::InsufficientRam { account, need: *used + bytes, have: quota });
        }
        *used += bytes;
        Ok(())
    }

    pub fn ram_quota(&self, account: Name) -> u64 {
        self.ram_bytes.get(&account).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_small() -> ResourceConfig {
        ResourceConfig {
            window_secs: 1000,
            target_block_cpu_us: 1000,
            max_block_cpu_us: 2000,
            max_multiplier: 100.0,
            blocks_per_window: 100,
            contract_ratio: 0.5,
            expand_ratio: 1.1,
        }
    }

    fn now() -> ChainTime {
        ChainTime::from_ymd(2019, 10, 1)
    }

    #[test]
    fn stake_and_limits() {
        let mut r = ResourceState::new(cfg_small());
        r.delegate(Name::new("alice"), 0, 100).unwrap();
        r.delegate(Name::new("bob"), 0, 300).unwrap();
        let la = r.cpu_limit_us(Name::new("alice"), now());
        let lb = r.cpu_limit_us(Name::new("bob"), now());
        assert_eq!(lb, la * 3, "limits proportional to stake");
        assert!(la > 0);
    }

    #[test]
    fn charge_and_decay() {
        let mut r = ResourceState::new(cfg_small());
        r.delegate(Name::new("alice"), 0, 100).unwrap();
        let t0 = now();
        let limit = r.cpu_limit_us(Name::new("alice"), t0);
        r.charge_cpu(Name::new("alice"), limit, t0).unwrap();
        // Fully used: next charge fails.
        assert!(matches!(
            r.charge_cpu(Name::new("alice"), 1, t0),
            Err(ResourceError::CpuExceeded { .. })
        ));
        // After half a window, half the usage has decayed.
        let t1 = t0 + 500;
        let used = r.cpu_used_us(Name::new("alice"), t1);
        assert!((used as i64 - (limit / 2) as i64).abs() <= 1, "used={used} limit={limit}");
        r.charge_cpu(Name::new("alice"), limit / 4, t1).unwrap();
        // After a full window from t0 the old usage is gone.
        let t2 = t0 + 1500;
        assert!(r.cpu_used_us(Name::new("alice"), t2) < limit / 2);
    }

    #[test]
    fn congestion_flips_under_sustained_load() {
        let mut r = ResourceState::new(cfg_small());
        assert!(!r.congested());
        assert_eq!(r.multiplier(), 100.0);
        for _ in 0..20 {
            r.on_block(1500); // hot blocks
        }
        assert!(r.congested(), "multiplier={}", r.multiplier());
        assert!(r.cpu_price_index() >= 99.0);
        // Recovery under cool blocks.
        for _ in 0..100 {
            r.on_block(100);
        }
        assert!(!r.congested());
    }

    #[test]
    fn congestion_shrinks_limits() {
        let mut r = ResourceState::new(cfg_small());
        r.delegate(Name::new("alice"), 0, 100).unwrap();
        let before = r.cpu_limit_us(Name::new("alice"), now());
        for _ in 0..20 {
            r.on_block(1500);
        }
        let after = r.cpu_limit_us(Name::new("alice"), now());
        assert!(after < before / 50, "before={before} after={after}");
    }

    #[test]
    fn rental_extends_limit_until_expiry() {
        let mut r = ResourceState::new(cfg_small());
        r.delegate(Name::new("alice"), 0, 100).unwrap();
        let base = r.cpu_limit_us(Name::new("alice"), now());
        r.rent_cpu(Name::new("alice"), 10, now()).unwrap();
        let with_rental = r.cpu_limit_us(Name::new("alice"), now());
        assert!(with_rental > base);
        let after_expiry = r.cpu_limit_us(Name::new("alice"), now() + 31 * 86_400);
        assert_eq!(after_expiry, base);
    }

    #[test]
    fn undelegate_checks_balance() {
        let mut r = ResourceState::new(cfg_small());
        r.delegate(Name::new("a"), 10, 10).unwrap();
        assert!(r.undelegate(Name::new("a"), 0, 20).is_err());
        r.undelegate(Name::new("a"), 10, 10).unwrap();
        assert_eq!(r.cpu_staked(Name::new("a")), 0);
    }

    #[test]
    fn ram_market_price_moves() {
        let mut m = RamMarket::new(1_000_000, 1_000_0000);
        let p0 = m.price_per_kib();
        let bytes = m.buy_bytes(100_0000).unwrap();
        assert!(bytes > 0);
        let p1 = m.price_per_kib();
        assert!(p1 > p0, "buying RAM raises price");
        // Selling everything back never mints EOS (fees burn value).
        let eos_back = m.sell_bytes(bytes).unwrap();
        assert!(eos_back < 100_0000);
    }

    #[test]
    fn ram_quota_enforced() {
        let mut r = ResourceState::new(cfg_small());
        r.grant_ram(Name::new("a"), 100);
        r.use_ram(Name::new("a"), 60).unwrap();
        assert!(matches!(
            r.use_ram(Name::new("a"), 50),
            Err(ResourceError::InsufficientRam { .. })
        ));
        r.use_ram(Name::new("a"), 40).unwrap();
    }
}
