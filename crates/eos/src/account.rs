//! EOS account registry: system vs regular accounts, permissions, and the
//! premium-name (`bidname`) auction.

use crate::name::Name;
use crate::types::AssetRaw;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use txstat_types::time::ChainTime;

/// Account classification (§2.3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountKind {
    /// `eosio`, `eosio.msig`, `eosio.wrap` — can bypass authorization.
    SystemPrivileged,
    /// Other `eosio.*` built-ins (eosio.token, eosio.ram, …).
    System,
    Regular,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Account {
    pub name: Name,
    pub kind: AccountKind,
    pub creator: Name,
    pub created_at: ChainTime,
    /// Named permissions (owner/active plus custom ones from `updateauth`).
    pub permissions: Vec<Name>,
    /// `linkauth` entries: (contract, action) → permission.
    pub links: Vec<(Name, Name, Name)>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccountError {
    AlreadyExists(Name),
    UnknownAccount(Name),
    UnknownCreator(Name),
    BidTooLow { newname: Name, high: AssetRaw },
    NotTopLevel(Name),
}

impl std::fmt::Display for AccountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccountError::AlreadyExists(n) => write!(f, "account {n} exists"),
            AccountError::UnknownAccount(n) => write!(f, "unknown account {n}"),
            AccountError::UnknownCreator(n) => write!(f, "unknown creator {n}"),
            AccountError::BidTooLow { newname, high } => {
                write!(f, "bid on {newname} below current high {high}")
            }
            AccountError::NotTopLevel(n) => write!(f, "{n} is not biddable (contains a dot)"),
        }
    }
}

impl std::error::Error for AccountError {}

/// State of one premium-name auction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NameBid {
    pub high_bidder: Name,
    pub high_bid: AssetRaw,
    pub last_bid_time: ChainTime,
}

#[derive(Debug, Clone, Default)]
pub struct AccountRegistry {
    accounts: HashMap<Name, Account>,
    bids: HashMap<Name, NameBid>,
}

impl AccountRegistry {
    /// Fresh registry pre-populated with the built-in system accounts that
    /// exist from chain instantiation (§2.3.1).
    pub fn with_system_accounts(genesis: ChainTime) -> Self {
        let mut r = AccountRegistry::default();
        let privileged = ["eosio", "eosio.msig", "eosio.wrap"];
        let system = [
            "eosio.token",
            "eosio.ram",
            "eosio.ramfee",
            "eosio.stake",
            "eosio.bpay",
            "eosio.vpay",
            "eosio.names",
            "eosio.saving",
            "eosio.rex",
            "eosio.null",
            "eosio.prods",
        ];
        for n in privileged {
            r.insert_raw(Name::new(n), AccountKind::SystemPrivileged, Name::new("eosio"), genesis);
        }
        for n in system {
            r.insert_raw(Name::new(n), AccountKind::System, Name::new("eosio"), genesis);
        }
        r
    }

    fn insert_raw(&mut self, name: Name, kind: AccountKind, creator: Name, at: ChainTime) {
        self.accounts.insert(
            name,
            Account {
                name,
                kind,
                creator,
                created_at: at,
                permissions: vec![Name::new("owner"), Name::new("active")],
                links: Vec::new(),
            },
        );
    }

    /// `newaccount`: create a regular account.
    pub fn create(&mut self, creator: Name, name: Name, at: ChainTime) -> Result<(), AccountError> {
        if self.accounts.contains_key(&name) {
            return Err(AccountError::AlreadyExists(name));
        }
        if !self.accounts.contains_key(&creator) {
            return Err(AccountError::UnknownCreator(creator));
        }
        self.insert_raw(name, AccountKind::Regular, creator, at);
        Ok(())
    }

    pub fn exists(&self, name: Name) -> bool {
        self.accounts.contains_key(&name)
    }

    pub fn get(&self, name: Name) -> Option<&Account> {
        self.accounts.get(&name)
    }

    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    pub fn is_privileged(&self, name: Name) -> bool {
        matches!(
            self.accounts.get(&name).map(|a| a.kind),
            Some(AccountKind::SystemPrivileged)
        )
    }

    /// `updateauth`: add (or refresh) a named permission.
    pub fn update_auth(&mut self, account: Name, permission: Name) -> Result<(), AccountError> {
        let a = self
            .accounts
            .get_mut(&account)
            .ok_or(AccountError::UnknownAccount(account))?;
        if !a.permissions.contains(&permission) {
            a.permissions.push(permission);
        }
        Ok(())
    }

    /// `linkauth`: route (contract, action) to a permission.
    pub fn link_auth(
        &mut self,
        account: Name,
        contract: Name,
        action: Name,
        permission: Name,
    ) -> Result<(), AccountError> {
        let a = self
            .accounts
            .get_mut(&account)
            .ok_or(AccountError::UnknownAccount(account))?;
        a.links.retain(|(c, act, _)| !(*c == contract && *act == action));
        a.links.push((contract, action, permission));
        Ok(())
    }

    /// `bidname`: bid on a premium (≤12-char, dot-free) name. A new bid must
    /// exceed the previous high by ≥10%.
    pub fn bid_name(
        &mut self,
        bidder: Name,
        newname: Name,
        bid: AssetRaw,
        at: ChainTime,
    ) -> Result<(), AccountError> {
        if newname.to_string_repr().contains('.') {
            return Err(AccountError::NotTopLevel(newname));
        }
        if self.accounts.contains_key(&newname) {
            return Err(AccountError::AlreadyExists(newname));
        }
        match self.bids.get_mut(&newname) {
            Some(b) => {
                if bid < b.high_bid + b.high_bid / 10 {
                    return Err(AccountError::BidTooLow { newname, high: b.high_bid });
                }
                b.high_bidder = bidder;
                b.high_bid = bid;
                b.last_bid_time = at;
            }
            None => {
                self.bids.insert(
                    newname,
                    NameBid { high_bidder: bidder, high_bid: bid, last_bid_time: at },
                );
            }
        }
        Ok(())
    }

    pub fn bid_for(&self, name: Name) -> Option<&NameBid> {
        self.bids.get(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> ChainTime {
        ChainTime::from_ymd(2019, 10, 1)
    }

    #[test]
    fn system_accounts_preloaded() {
        let r = AccountRegistry::with_system_accounts(t0());
        assert!(r.exists(Name::new("eosio")));
        assert!(r.exists(Name::new("eosio.token")));
        assert!(r.is_privileged(Name::new("eosio.wrap")));
        assert!(!r.is_privileged(Name::new("eosio.token")));
        assert_eq!(r.len(), 14);
    }

    #[test]
    fn create_accounts() {
        let mut r = AccountRegistry::with_system_accounts(t0());
        r.create(Name::new("eosio"), Name::new("alice"), t0()).unwrap();
        assert!(r.exists(Name::new("alice")));
        assert_eq!(
            r.create(Name::new("eosio"), Name::new("alice"), t0()),
            Err(AccountError::AlreadyExists(Name::new("alice")))
        );
        assert_eq!(
            r.create(Name::new("ghost"), Name::new("bob"), t0()),
            Err(AccountError::UnknownCreator(Name::new("ghost")))
        );
        let a = r.get(Name::new("alice")).unwrap();
        assert_eq!(a.creator, Name::new("eosio"));
        assert_eq!(a.kind, AccountKind::Regular);
    }

    #[test]
    fn auth_management() {
        let mut r = AccountRegistry::with_system_accounts(t0());
        r.create(Name::new("eosio"), Name::new("alice"), t0()).unwrap();
        r.update_auth(Name::new("alice"), Name::new("trading")).unwrap();
        r.link_auth(
            Name::new("alice"),
            Name::new("whaleextrust"),
            Name::new("verifytrade2"),
            Name::new("trading"),
        )
        .unwrap();
        let a = r.get(Name::new("alice")).unwrap();
        assert!(a.permissions.contains(&Name::new("trading")));
        assert_eq!(a.links.len(), 1);
        // Re-linking the same pair replaces, not duplicates.
        r.link_auth(
            Name::new("alice"),
            Name::new("whaleextrust"),
            Name::new("verifytrade2"),
            Name::new("active"),
        )
        .unwrap();
        assert_eq!(r.get(Name::new("alice")).unwrap().links.len(), 1);
    }

    #[test]
    fn name_auction_rules() {
        let mut r = AccountRegistry::with_system_accounts(t0());
        r.create(Name::new("eosio"), Name::new("alice"), t0()).unwrap();
        r.bid_name(Name::new("alice"), Name::new("bank"), 100_0000, t0()).unwrap();
        // Must outbid by 10%.
        assert!(matches!(
            r.bid_name(Name::new("alice"), Name::new("bank"), 105_0000, t0()),
            Err(AccountError::BidTooLow { .. })
        ));
        r.bid_name(Name::new("alice"), Name::new("bank"), 110_0000, t0()).unwrap();
        assert_eq!(r.bid_for(Name::new("bank")).unwrap().high_bid, 110_0000);
        // Dotted names aren't biddable.
        assert!(matches!(
            r.bid_name(Name::new("alice"), Name::new("a.b"), 1, t0()),
            Err(AccountError::NotTopLevel(_))
        ));
    }
}
