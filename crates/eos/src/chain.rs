//! The EOS chain state machine: DPoS production schedule, transaction
//! application (including inline actions from airdrop contracts), and the
//! block store the RPC endpoints serve.

use crate::account::{AccountError, AccountRegistry};
use crate::contract::ContractRegistry;
use crate::name::Name;
use crate::resources::{ResourceError, ResourceState};
use crate::token::{TokenError, TokenId, TokenLedger};
use crate::types::{Action, ActionData, Block, Receipt, Transaction};
use txstat_types::ids::fnv1a64;
use txstat_types::time::ChainTime;

/// Chain-level configuration.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    pub genesis_time: ChainTime,
    /// Simulated block interval in seconds. Mainnet is 0.5 s; scenarios use
    /// a widened interval so a 3-month window stays in memory (DESIGN.md §1).
    pub block_interval_secs: i64,
    /// First block number, so block indices can mirror the paper's dataset
    /// (EOS blocks 82,024,737–98,324,735).
    pub start_block_num: u64,
    pub resources: crate::resources::ResourceConfig,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            genesis_time: ChainTime::from_ymd(2019, 10, 1),
            block_interval_secs: 1,
            start_block_num: 82_024_737,
            resources: crate::resources::ResourceConfig::default(),
        }
    }
}

/// The 21-producer DPoS schedule (§2.2): blocks are produced in rounds of
/// 126 = 6 × 21; each producer gets 6 consecutive slots per round.
#[derive(Debug, Clone)]
pub struct ProducerSchedule {
    pub active: Vec<Name>,
    pub version: u32,
}

impl ProducerSchedule {
    pub const PRODUCERS: usize = 21;
    pub const SLOTS_PER_PRODUCER: u64 = 6;
    pub const ROUND_SLOTS: u64 = 126;

    /// A deterministic default set of 21 producers.
    pub fn default_producers() -> Self {
        let names = [
            "eosbpone1111", "eosbptwo1111", "eosbpthree11", "eosbpfour111", "eosbpfive111",
            "eosbpsix1111", "eosbpseven11", "eosbpeight11", "eosbpnine111", "eosbpten1111",
            "eosbpeleven1", "eosbptwelve1", "eosbpthirt11", "eosbpfourt11", "eosbpfift111",
            "eosbpsixt111", "eosbpsevent1", "eosbpeigteen", "eosbpninet11", "eosbptwenty1",
            "eosbptwone11",
        ];
        ProducerSchedule { active: names.iter().map(|n| Name::new(n)).collect(), version: 0 }
    }

    /// Producer for an absolute slot index.
    pub fn producer_for(&self, slot: u64) -> Name {
        let idx = (slot / Self::SLOTS_PER_PRODUCER) % self.active.len() as u64;
        self.active[idx as usize]
    }
}

/// Mutable chain state the transactions act on.
#[derive(Debug, Clone)]
pub struct State {
    pub accounts: AccountRegistry,
    pub tokens: TokenLedger,
    pub resources: ResourceState,
    pub contracts: ContractRegistry,
}

/// Why a transaction failed to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EosError {
    Token(TokenError),
    Resource(ResourceError),
    Account(AccountError),
    EmptyTransaction,
}

impl From<TokenError> for EosError {
    fn from(e: TokenError) -> Self {
        EosError::Token(e)
    }
}
impl From<ResourceError> for EosError {
    fn from(e: ResourceError) -> Self {
        EosError::Resource(e)
    }
}
impl From<AccountError> for EosError {
    fn from(e: AccountError) -> Self {
        EosError::Account(e)
    }
}

impl std::fmt::Display for EosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EosError::Token(e) => write!(f, "token: {e}"),
            EosError::Resource(e) => write!(f, "resource: {e}"),
            EosError::Account(e) => write!(f, "account: {e}"),
            EosError::EmptyTransaction => write!(f, "empty transaction"),
        }
    }
}

impl std::error::Error for EosError {}

/// The simulated EOS chain.
pub struct EosChain {
    pub config: ChainConfig,
    pub schedule: ProducerSchedule,
    pub state: State,
    blocks: Vec<Block>,
    /// Transactions rejected during production (CPU exhaustion etc.).
    pub dropped_txs: u64,
    /// History of (block num, cpu price index) snapshots, one per block —
    /// the EIDOS case-study series.
    pub cpu_price_history: Vec<(u64, f64)>,
}

impl EosChain {
    pub fn new(config: ChainConfig) -> Self {
        let genesis = config.genesis_time;
        let state = State {
            accounts: AccountRegistry::with_system_accounts(genesis),
            tokens: TokenLedger::new(),
            resources: ResourceState::new(config.resources.clone()),
            contracts: ContractRegistry::new(),
        };
        let mut chain = EosChain {
            config,
            schedule: ProducerSchedule::default_producers(),
            state,
            blocks: Vec::new(),
            dropped_txs: 0,
            cpu_price_history: Vec::new(),
        };
        // The system token exists from genesis.
        chain
            .state
            .tokens
            .create(TokenId::eos(), Name::new("eosio"), 10_000_000_000_0000)
            .expect("genesis EOS token");
        chain
            .state
            .tokens
            .issue(TokenId::eos(), 1_200_000_000_0000)
            .expect("genesis EOS issuance");
        chain
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    pub fn head_block_num(&self) -> u64 {
        self.config.start_block_num + self.blocks.len().saturating_sub(1) as u64
    }

    pub fn block_by_num(&self, num: u64) -> Option<&Block> {
        let idx = num.checked_sub(self.config.start_block_num)? as usize;
        self.blocks.get(idx)
    }

    /// Time of the next block to be produced.
    pub fn next_block_time(&self) -> ChainTime {
        self.config.genesis_time + self.blocks.len() as i64 * self.config.block_interval_secs
    }

    /// Apply one action against state, returning any inline actions it
    /// spawned (the EIDOS refund + payout pattern).
    fn apply_action(state: &mut State, action: &Action, now: ChainTime) -> Result<Vec<Action>, EosError> {
        let mut inline = Vec::new();
        match &action.data {
            ActionData::Transfer { from, to, symbol, amount } => {
                let token = TokenId { contract: action.contract, symbol: *symbol };
                state.tokens.transfer(token, *from, *to, *amount)?;
                // Airdrop hook: contract refunds EOS and pays its token.
                if token == TokenId::eos() {
                    if let Some(spec) = state.contracts.airdrop(*to).copied() {
                        let contract_acct = *to;
                        let miner = *from;
                        // Refund the boomeranged EOS.
                        state.tokens.transfer(token, contract_acct, miner, *amount)?;
                        inline.push(Action::token_transfer(
                            Name::new("eosio.token"),
                            contract_acct,
                            miner,
                            *symbol,
                            *amount,
                        ));
                        // Pay out payout_ppm of current holdings.
                        let holdings = state.tokens.balance(contract_acct, spec.token);
                        let payout = (holdings as i128 * spec.payout_ppm as i128 / 1_000_000) as i64;
                        if payout > 0 {
                            state.tokens.transfer(spec.token, contract_acct, miner, payout)?;
                            inline.push(Action::token_transfer(
                                spec.token.contract,
                                contract_acct,
                                miner,
                                spec.token.symbol,
                                payout,
                            ));
                        }
                    }
                }
            }
            ActionData::NewAccount { creator, name } => {
                state.accounts.create(*creator, *name, now)?;
                state.resources.grant_ram(*name, 4096);
            }
            ActionData::DelegateBw { receiver, net, cpu, .. } => {
                state.resources.delegate(*receiver, *net, *cpu)?;
            }
            ActionData::UndelegateBw { receiver, net, cpu, .. } => {
                state.resources.undelegate(*receiver, *net, *cpu)?;
            }
            ActionData::BuyRam { receiver, quant, .. } => {
                state.resources.buy_ram_eos(*receiver, *quant)?;
            }
            ActionData::BuyRamBytes { receiver, bytes, .. } => {
                state.resources.grant_ram(*receiver, *bytes);
            }
            ActionData::BidName { bidder, newname, bid } => {
                state.accounts.bid_name(*bidder, *newname, *bid, now)?;
            }
            ActionData::RentCpu { receiver, payment, .. } => {
                state.resources.rent_cpu(*receiver, *payment, now)?;
            }
            // Pure-signal actions: no ledger effect. WhaleEx `verifytrade2`
            // reports a trade without moving assets — which is precisely the
            // wash-trading signature of §4.1.
            ActionData::Trade { .. } | ActionData::VoteProducer { .. } | ActionData::Generic => {}
        }
        Ok(inline)
    }

    /// Apply a transaction: bill CPU to the payer, then execute actions.
    /// Inline actions spawned during execution (EIDOS refund/payout) have
    /// already taken effect inside `apply_action`; here they are
    /// only appended to the executed trace, right after their parent.
    pub fn apply_transaction(&mut self, tx: &mut Transaction, now: ChainTime) -> Result<Receipt, EosError> {
        let payer = tx.payer().ok_or(EosError::EmptyTransaction)?;
        self.state.resources.charge_cpu(payer, tx.cpu_us as u64, now)?;
        let mut trace = Vec::with_capacity(tx.actions.len());
        for action in &tx.actions {
            let inline = Self::apply_action(&mut self.state, action, now)?;
            trace.push(action.clone());
            trace.extend(inline);
        }
        tx.actions = trace;
        Ok(Receipt { tx_id: tx.id, executed_actions: tx.actions.len() })
    }

    /// Produce the next block from candidate transactions. Transactions that
    /// fail (CPU exhaustion, overdrawn balances) are dropped and counted —
    /// EOS does not include failed transactions in blocks.
    pub fn produce_block(&mut self, candidate_txs: Vec<Transaction>) -> &Block {
        let slot = self.blocks.len() as u64;
        let num = self.config.start_block_num + slot;
        let time = self.config.genesis_time + slot as i64 * self.config.block_interval_secs;
        let producer = self.schedule.producer_for(slot);

        let mut included = Vec::with_capacity(candidate_txs.len());
        let mut block_cpu: u64 = 0;
        for (idx, mut tx) in candidate_txs.into_iter().enumerate() {
            tx.id = fnv1a64(&[num.to_le_bytes(), (idx as u64).to_le_bytes()].concat());
            // NET usage is billed in 8-byte words on EOS; normalize so the
            // wire encoding (net_usage_words) is lossless.
            tx.net_bytes = tx.net_bytes.div_ceil(8) * 8;
            match self.apply_transaction(&mut tx, time) {
                Ok(_) => {
                    block_cpu += tx.cpu_us as u64;
                    included.push(tx);
                }
                Err(_) => self.dropped_txs += 1,
            }
        }
        self.state.resources.on_block(block_cpu);
        self.cpu_price_history.push((num, self.state.resources.cpu_price_index()));
        self.blocks.push(Block { num, time, producer, transactions: included });
        self.blocks.last().expect("just pushed")
    }

    /// Total transactions across all blocks.
    pub fn tx_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.transactions.len() as u64).sum()
    }

    /// Total actions across all blocks.
    pub fn action_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.action_count() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{AirdropSpec, AppCategory, ContractMeta};
    use txstat_types::amount::SymCode;

    fn test_chain() -> EosChain {
        let mut cfg = ChainConfig::default();
        cfg.resources.blocks_per_window = 1000;
        cfg.resources.target_block_cpu_us = 100_000;
        cfg.resources.max_block_cpu_us = 200_000;
        let mut chain = EosChain::new(cfg);
        // Fund a couple of users.
        for (name, amount) in [("alice", 1_000_0000i64), ("bob", 1_000_0000), ("eidosonecoin", 1_0000)] {
            chain
                .state
                .accounts
                .create(Name::new("eosio"), Name::new(name), chain.config.genesis_time)
                .unwrap();
            chain
                .state
                .tokens
                .transfer(TokenId::eos(), Name::new("eosio"), Name::new(name), amount)
                .unwrap();
            chain.state.resources.delegate(Name::new(name), 10_0000, 10_0000).unwrap();
        }
        chain
    }

    fn transfer_tx(from: &str, to: &str, amount: i64) -> Transaction {
        Transaction {
            id: 0,
            actions: vec![Action::token_transfer(
                Name::new("eosio.token"),
                Name::new(from),
                Name::new(to),
                SymCode::new("EOS"),
                amount,
            )],
            cpu_us: 200,
            net_bytes: 128,
        }
    }

    #[test]
    fn produce_blocks_with_schedule() {
        let mut chain = test_chain();
        for _ in 0..260 {
            chain.produce_block(vec![]);
        }
        let b0 = &chain.blocks()[0];
        let b5 = &chain.blocks()[5];
        let b6 = &chain.blocks()[6];
        assert_eq!(b0.producer, b5.producer, "6 consecutive slots per producer");
        assert_ne!(b5.producer, b6.producer, "producer rotates after 6 slots");
        // After a full round (126 slots) the first producer returns.
        assert_eq!(chain.blocks()[126].producer, b0.producer);
        assert_eq!(chain.head_block_num(), 82_024_737 + 259);
        assert_eq!(chain.block_by_num(82_024_740).unwrap().num, 82_024_740);
        assert!(chain.block_by_num(1).is_none());
    }

    #[test]
    fn transfers_apply_and_conserve() {
        let mut chain = test_chain();
        chain.produce_block(vec![transfer_tx("alice", "bob", 50_0000)]);
        assert_eq!(
            chain.state.tokens.balance(Name::new("bob"), TokenId::eos()),
            1_050_0000
        );
        chain.state.tokens.check_conservation().unwrap();
        assert_eq!(chain.tx_count(), 1);
        assert_eq!(chain.dropped_txs, 0);
    }

    #[test]
    fn overdrawn_transfer_is_dropped() {
        let mut chain = test_chain();
        chain.produce_block(vec![transfer_tx("alice", "bob", 999_999_0000)]);
        assert_eq!(chain.tx_count(), 0);
        assert_eq!(chain.dropped_txs, 1);
        chain.state.tokens.check_conservation().unwrap();
    }

    #[test]
    fn eidos_boomerang_mints_three_action_trace() {
        let mut chain = test_chain();
        let eidos = TokenId::new(Name::new("eidosonecoin"), "EIDOS");
        chain
            .state
            .tokens
            .create(eidos, Name::new("eidosonecoin"), 1_000_000_000_0000)
            .unwrap();
        chain.state.tokens.issue(eidos, 1_000_000_000_0000).unwrap();
        chain.state.contracts.deploy(ContractMeta {
            account: Name::new("eidosonecoin"),
            category: AppCategory::Tokens,
            token: Some(eidos),
            description: "EIDOS",
        });
        chain
            .state
            .contracts
            .attach_airdrop(Name::new("eidosonecoin"), AirdropSpec { token: eidos, payout_ppm: 100 });

        chain.produce_block(vec![transfer_tx("alice", "eidosonecoin", 1_0000)]);
        let block = chain.blocks().last().unwrap();
        let tx = &block.transactions[0];
        // user→contract EOS, contract→user EOS refund, contract→user EIDOS.
        assert_eq!(tx.actions.len(), 3);
        // Alice's EOS balance unchanged (boomerang).
        assert_eq!(
            chain.state.tokens.balance(Name::new("alice"), TokenId::eos()),
            1_000_0000
        );
        // Alice received 0.01% of holdings.
        let got = chain.state.tokens.balance(Name::new("alice"), eidos);
        assert_eq!(got, 1_000_000_000_0000 / 10_000);
        chain.state.tokens.check_conservation().unwrap();
    }

    #[test]
    fn cpu_exhaustion_drops_transactions_under_congestion() {
        let mut chain = test_chain();
        // Collapse the elastic multiplier with hot blocks.
        for _ in 0..2000 {
            chain.state.resources.on_block(150_000);
        }
        assert!(chain.state.resources.congested());
        // Alice holds 1/3 of the stake; her congested window share is
        // 100k µs × 1000 blocks / 3 ≈ 33M µs — a bigger bill must fail.
        let mut tx = transfer_tx("alice", "bob", 1_0000);
        tx.cpu_us = 40_000_000;
        chain.produce_block(vec![tx]);
        assert_eq!(chain.dropped_txs, 1);
        assert_eq!(chain.tx_count(), 0);
    }

    #[test]
    fn new_account_action() {
        let mut chain = test_chain();
        let tx = Transaction {
            id: 0,
            actions: vec![Action::new(
                Name::new("eosio"),
                Name::new("newaccount"),
                Name::new("alice"),
                ActionData::NewAccount { creator: Name::new("alice"), name: Name::new("carol") },
            )],
            cpu_us: 400,
            net_bytes: 256,
        };
        chain.produce_block(vec![tx]);
        assert!(chain.state.accounts.exists(Name::new("carol")));
        assert_eq!(chain.state.resources.ram_quota(Name::new("carol")), 4096);
    }

    #[test]
    fn cpu_price_history_tracks_congestion() {
        let mut chain = test_chain();
        for _ in 0..5 {
            chain.produce_block(vec![]);
        }
        assert_eq!(chain.cpu_price_history.len(), 5);
        // Relaxed chain: price index near 1.
        assert!(chain.cpu_price_history.last().unwrap().1 < 2.0);
    }
}
