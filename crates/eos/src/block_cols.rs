//! Columnar block codec — archive segment payload schema v2.
//!
//! Encodes a run of EOS blocks as struct-of-arrays columns over
//! [`txstat_types::colcodec`]: an interned name table (producers,
//! contracts, actors — via [`ColKey`]), an interned symbol table, then
//! per-block header columns and flattened transaction/action streams.
//! Canonical LEB128 throughout; decoding is strict and typed — every
//! failure is a [`ColError`] carrying a byte offset, never a panic.
//!
//! The decode of an encode is exactly what the wire-JSON round trip
//! produces (`block_from_json(block_to_json(b))`): action payloads whose
//! wire name would not reconstruct them degrade to [`ActionData::Generic`]
//! at encode time, and `net_bytes` travels as `net_usage_words`
//! (`net_bytes / 8`), mirroring the RPC model's lossy spots bit for bit.
//! That keeps every downstream consumer — reports, reorg marks, follow
//! verification — byte-identical whichever segment schema fed it.

use crate::name::Name;
use crate::types::{Action, ActionData, Block, Transaction};
use std::collections::HashMap;
use txstat_types::amount::SymCode;
use txstat_types::colcodec::{ColError, ColKey, ColReader, ColWriter};
use txstat_types::time::ChainTime;

/// Leading schema tag of an EOS column blob.
const SCHEMA_TAG: u8 = 1;

/// Action-payload tags (order fixed by the on-disk format).
const DATA_GENERIC: u8 = 0;
const DATA_TRANSFER: u8 = 1;
const DATA_TRADE: u8 = 2;
const DATA_NEW_ACCOUNT: u8 = 3;
const DATA_DELEGATE_BW: u8 = 4;
const DATA_UNDELEGATE_BW: u8 = 5;
const DATA_BUY_RAM: u8 = 6;
const DATA_BUY_RAM_BYTES: u8 = 7;
const DATA_BID_NAME: u8 = 8;
const DATA_VOTE_PRODUCER: u8 = 9;
const DATA_RENT_CPU: u8 = 10;

/// Interned tables collected in first-seen order over a canonical walk,
/// so two encodes of the same blocks are byte-identical.
#[derive(Default)]
struct Tables {
    names: Vec<Name>,
    name_ids: HashMap<u64, u32>,
    syms: Vec<SymCode>,
    sym_ids: HashMap<SymCode, u32>,
}

impl Tables {
    fn name(&mut self, n: Name) -> u32 {
        *self.name_ids.entry(n.0).or_insert_with(|| {
            self.names.push(n);
            (self.names.len() - 1) as u32
        })
    }

    fn sym(&mut self, s: SymCode) -> u32 {
        *self.sym_ids.entry(s).or_insert_with(|| {
            self.syms.push(s);
            (self.syms.len() - 1) as u32
        })
    }
}

/// What the wire-JSON round trip would leave of this action's payload:
/// the structured data survives only when the action's wire `name` is the
/// one `action_data_from_json` dispatches that variant on.
fn normalized(a: &Action) -> ActionData {
    let name = a.name.to_string_repr();
    let keeps = matches!(
        (&a.data, name.as_str()),
        (ActionData::Transfer { .. }, "transfer")
            | (ActionData::Trade { .. }, "trade" | "verifytrade2")
            | (ActionData::NewAccount { .. }, "newaccount")
            | (ActionData::DelegateBw { .. }, "delegatebw")
            | (ActionData::UndelegateBw { .. }, "undelegatebw")
            | (ActionData::BuyRam { .. }, "buyram")
            | (ActionData::BuyRamBytes { .. }, "buyrambytes")
            | (ActionData::BidName { .. }, "bidname")
            | (ActionData::VoteProducer { .. }, "voteproducer")
            | (ActionData::RentCpu { .. }, "rentcpu")
    );
    if keeps {
        a.data.clone()
    } else {
        ActionData::Generic
    }
}

fn encode_data(w: &mut ColWriter, t: &mut Tables, data: &ActionData) {
    match data {
        ActionData::Generic => w.byte(DATA_GENERIC),
        ActionData::Transfer { from, to, symbol, amount } => {
            w.byte(DATA_TRANSFER);
            w.u32(t.name(*from));
            w.u32(t.name(*to));
            w.u32(t.sym(*symbol));
            w.i64(*amount);
        }
        ActionData::Trade {
            buyer,
            seller,
            base_symbol,
            base_amount,
            quote_symbol,
            quote_amount,
        } => {
            w.byte(DATA_TRADE);
            w.u32(t.name(*buyer));
            w.u32(t.name(*seller));
            w.u32(t.sym(*base_symbol));
            w.i64(*base_amount);
            w.u32(t.sym(*quote_symbol));
            w.i64(*quote_amount);
        }
        ActionData::NewAccount { creator, name } => {
            w.byte(DATA_NEW_ACCOUNT);
            w.u32(t.name(*creator));
            w.u32(t.name(*name));
        }
        ActionData::DelegateBw { from, receiver, net, cpu } => {
            w.byte(DATA_DELEGATE_BW);
            w.u32(t.name(*from));
            w.u32(t.name(*receiver));
            w.i64(*net);
            w.i64(*cpu);
        }
        ActionData::UndelegateBw { from, receiver, net, cpu } => {
            w.byte(DATA_UNDELEGATE_BW);
            w.u32(t.name(*from));
            w.u32(t.name(*receiver));
            w.i64(*net);
            w.i64(*cpu);
        }
        ActionData::BuyRam { payer, receiver, quant } => {
            w.byte(DATA_BUY_RAM);
            w.u32(t.name(*payer));
            w.u32(t.name(*receiver));
            w.i64(*quant);
        }
        ActionData::BuyRamBytes { payer, receiver, bytes } => {
            w.byte(DATA_BUY_RAM_BYTES);
            w.u32(t.name(*payer));
            w.u32(t.name(*receiver));
            w.u64(*bytes);
        }
        ActionData::BidName { bidder, newname, bid } => {
            w.byte(DATA_BID_NAME);
            w.u32(t.name(*bidder));
            w.u32(t.name(*newname));
            w.i64(*bid);
        }
        ActionData::VoteProducer { voter, producer_count } => {
            w.byte(DATA_VOTE_PRODUCER);
            w.u32(t.name(*voter));
            w.byte(*producer_count);
        }
        ActionData::RentCpu { from, receiver, payment } => {
            w.byte(DATA_RENT_CPU);
            w.u32(t.name(*from));
            w.u32(t.name(*receiver));
            w.i64(*payment);
        }
    }
}

/// Encode a contiguous run of blocks into one column blob.
pub fn encode_blocks(blocks: &[Block]) -> Vec<u8> {
    // Pass 1: the body, interning as it walks (the tables are a prefix of
    // the final blob, so the body is buffered separately).
    let mut t = Tables::default();
    let mut body = ColWriter::with_capacity(blocks.len() * 64);
    body.u64(blocks.len() as u64);
    for b in blocks {
        body.u64(b.num);
        body.i64(b.time.0);
        body.u32(t.name(b.producer));
        body.u64(b.transactions.len() as u64);
        for tx in &b.transactions {
            body.u64(tx.id);
            body.u32(tx.cpu_us);
            body.u32(tx.net_bytes / 8); // net_usage_words, as on the wire
            body.u64(tx.actions.len() as u64);
            for a in &tx.actions {
                body.u32(t.name(a.contract));
                body.u32(t.name(a.name));
                body.u32(t.name(a.actor));
                encode_data(&mut body, &mut t, &normalized(a));
            }
        }
    }
    let body = body.into_bytes();
    let mut w = ColWriter::with_capacity(16 + t.names.len() * 8 + body.len());
    w.byte(SCHEMA_TAG);
    w.u64(t.names.len() as u64);
    for n in &t.names {
        n.encode_key(&mut w);
    }
    w.u64(t.syms.len() as u64);
    for s in &t.syms {
        w.str(s.as_str());
    }
    let mut out = w.into_bytes();
    out.extend_from_slice(&body);
    out
}

fn read_name(r: &mut ColReader<'_>, names: &[Name]) -> Result<Name, ColError> {
    let i = r.u32()? as usize;
    names
        .get(i)
        .copied()
        .ok_or_else(|| r.invalid(format!("name ref {i} out of table (len {})", names.len())))
}

fn read_sym(r: &mut ColReader<'_>, syms: &[SymCode]) -> Result<SymCode, ColError> {
    let i = r.u32()? as usize;
    syms.get(i)
        .copied()
        .ok_or_else(|| r.invalid(format!("symbol ref {i} out of table (len {})", syms.len())))
}

fn decode_data(
    r: &mut ColReader<'_>,
    names: &[Name],
    syms: &[SymCode],
) -> Result<ActionData, ColError> {
    let tag = r.byte()?;
    Ok(match tag {
        DATA_GENERIC => ActionData::Generic,
        DATA_TRANSFER => ActionData::Transfer {
            from: read_name(r, names)?,
            to: read_name(r, names)?,
            symbol: read_sym(r, syms)?,
            amount: r.i64()?,
        },
        DATA_TRADE => ActionData::Trade {
            buyer: read_name(r, names)?,
            seller: read_name(r, names)?,
            base_symbol: read_sym(r, syms)?,
            base_amount: r.i64()?,
            quote_symbol: read_sym(r, syms)?,
            quote_amount: r.i64()?,
        },
        DATA_NEW_ACCOUNT => ActionData::NewAccount {
            creator: read_name(r, names)?,
            name: read_name(r, names)?,
        },
        DATA_DELEGATE_BW => ActionData::DelegateBw {
            from: read_name(r, names)?,
            receiver: read_name(r, names)?,
            net: r.i64()?,
            cpu: r.i64()?,
        },
        DATA_UNDELEGATE_BW => ActionData::UndelegateBw {
            from: read_name(r, names)?,
            receiver: read_name(r, names)?,
            net: r.i64()?,
            cpu: r.i64()?,
        },
        DATA_BUY_RAM => ActionData::BuyRam {
            payer: read_name(r, names)?,
            receiver: read_name(r, names)?,
            quant: r.i64()?,
        },
        DATA_BUY_RAM_BYTES => ActionData::BuyRamBytes {
            payer: read_name(r, names)?,
            receiver: read_name(r, names)?,
            bytes: r.u64()?,
        },
        DATA_BID_NAME => ActionData::BidName {
            bidder: read_name(r, names)?,
            newname: read_name(r, names)?,
            bid: r.i64()?,
        },
        DATA_VOTE_PRODUCER => ActionData::VoteProducer {
            voter: read_name(r, names)?,
            producer_count: r.byte()?,
        },
        DATA_RENT_CPU => ActionData::RentCpu {
            from: read_name(r, names)?,
            receiver: read_name(r, names)?,
            payment: r.i64()?,
        },
        other => return Err(r.invalid(format!("bad action data tag {other}"))),
    })
}

/// Decode a column blob back into blocks. Strict: trailing bytes, forged
/// counts, and out-of-table references are all typed errors.
pub fn decode_blocks(bytes: &[u8]) -> Result<Vec<Block>, ColError> {
    let mut r = ColReader::new(bytes);
    let tag = r.byte()?;
    if tag != SCHEMA_TAG {
        return Err(r.invalid(format!("bad eos column schema tag {tag} (want {SCHEMA_TAG})")));
    }
    let mut names = Vec::new();
    for _ in 0..r.len(1)? {
        names.push(Name::decode_key(&mut r)?);
    }
    let mut syms = Vec::new();
    for _ in 0..r.len(1)? {
        let s = r.str()?;
        syms.push(
            SymCode::try_new(s).map_err(|e| r.invalid(format!("symbol table: {e}")))?,
        );
    }
    let mut blocks = Vec::new();
    for _ in 0..r.len(4)? {
        let num = r.u64()?;
        let time = ChainTime(r.i64()?);
        let producer = read_name(&mut r, &names)?;
        let mut transactions = Vec::new();
        for _ in 0..r.len(3)? {
            let id = r.u64()?;
            let cpu_us = r.u32()?;
            let net_words = r.u32()?;
            if net_words > u32::MAX / 8 {
                return Err(r.invalid(format!("net_usage_words {net_words} overflows net_bytes")));
            }
            let mut actions = Vec::new();
            for _ in 0..r.len(4)? {
                let contract = read_name(&mut r, &names)?;
                let name = read_name(&mut r, &names)?;
                let actor = read_name(&mut r, &names)?;
                let data = decode_data(&mut r, &names, &syms)?;
                actions.push(Action { contract, name, actor, data });
            }
            transactions.push(Transaction {
                id,
                actions,
                cpu_us,
                net_bytes: net_words * 8,
            });
        }
        blocks.push(Block { num, time, producer, transactions });
    }
    r.finish()?;
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc_model::{block_from_json, block_to_json};

    fn sample() -> Vec<Block> {
        vec![
            Block {
                num: 82_024_737,
                time: ChainTime::from_ymd_hms(2019, 10, 1, 0, 0, 30),
                producer: Name::new("eosbpone1111"),
                transactions: vec![Transaction {
                    id: 0xdeadbeef,
                    actions: vec![
                        Action::token_transfer(
                            Name::new("eosio.token"),
                            Name::new("alice"),
                            Name::new("bob"),
                            SymCode::new("EOS"),
                            9_5000,
                        ),
                        Action::new(
                            Name::new("betdicetasks"),
                            Name::new("removetask"),
                            Name::new("betdicegroup"),
                            ActionData::Generic,
                        ),
                        // Structured data under the wrong wire name: the
                        // JSON round trip degrades this to Generic, so the
                        // columns must too.
                        Action::new(
                            Name::new("eosio.token"),
                            Name::new("notransfer"),
                            Name::new("alice"),
                            ActionData::Transfer {
                                from: Name::new("alice"),
                                to: Name::new("bob"),
                                symbol: SymCode::new("EOS"),
                                amount: 1,
                            },
                        ),
                    ],
                    cpu_us: 250,
                    net_bytes: 164, // not a multiple of 8: wire rounds to 160
                }],
            },
            Block {
                num: 82_024_738,
                time: ChainTime::from_ymd_hms(2019, 10, 1, 0, 0, 31),
                producer: Name::new("eosbptwo2222"),
                transactions: vec![],
            },
        ]
    }

    #[test]
    fn roundtrip_matches_wire_json_oracle() {
        let blocks = sample();
        let bytes = encode_blocks(&blocks);
        let decoded = decode_blocks(&bytes).unwrap();
        let oracle: Vec<Block> = blocks
            .iter()
            .map(|b| block_from_json(&block_to_json(b)).unwrap())
            .collect();
        assert_eq!(decoded, oracle);
        // Second encode of the decoded blocks is byte-identical (the
        // normalization is idempotent).
        assert_eq!(encode_blocks(&decoded), bytes);
    }

    #[test]
    fn truncation_and_damage_are_typed() {
        let bytes = encode_blocks(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_blocks(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode_blocks(&bad), Err(ColError::Invalid { .. })));
    }

    #[test]
    fn empty_run_roundtrips() {
        let bytes = encode_blocks(&[]);
        assert_eq!(decode_blocks(&bytes).unwrap(), Vec::<Block>::new());
    }
}
