//! Contract metadata: the dApp landscape the paper's EOS analysis labels.
//!
//! §3.2: *"we manually label the top 100 contracts by grouping them into
//! different categories"*. The simulator carries a ground-truth category per
//! deployed contract; the analytics side builds its own (possibly partial)
//! label map, mimicking the manual-labeling methodology.

use crate::name::Name;
use crate::token::TokenId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's Figure 3a application categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppCategory {
    Exchange,
    Betting,
    Games,
    Pornography,
    Tokens,
    Others,
}

impl AppCategory {
    pub const ALL: [AppCategory; 6] = [
        AppCategory::Exchange,
        AppCategory::Betting,
        AppCategory::Games,
        AppCategory::Pornography,
        AppCategory::Tokens,
        AppCategory::Others,
    ];

    pub const fn label(self) -> &'static str {
        match self {
            AppCategory::Exchange => "Exchange",
            AppCategory::Betting => "Betting",
            AppCategory::Games => "Games",
            AppCategory::Pornography => "Pornography",
            AppCategory::Tokens => "Tokens",
            AppCategory::Others => "Others",
        }
    }
}

impl std::fmt::Display for AppCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Ground-truth metadata for one deployed contract.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContractMeta {
    pub account: Name,
    pub category: AppCategory,
    /// Token hosted by this contract, if it is a token contract.
    pub token: Option<TokenId>,
    pub description: &'static str,
}

/// Airdrop behaviour attached to a contract account (the EIDOS mechanism,
/// §4.1): on receiving EOS it refunds the full amount and pays out a fixed
/// fraction of its own token holdings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AirdropSpec {
    pub token: TokenId,
    /// Payout as parts-per-million of current holdings (EIDOS: 0.01% = 100 ppm).
    pub payout_ppm: u64,
}

#[derive(Debug, Clone, Default)]
pub struct ContractRegistry {
    metas: HashMap<Name, ContractMeta>,
    airdrops: HashMap<Name, AirdropSpec>,
}

impl ContractRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn deploy(&mut self, meta: ContractMeta) {
        self.metas.insert(meta.account, meta);
    }

    pub fn attach_airdrop(&mut self, account: Name, spec: AirdropSpec) {
        self.airdrops.insert(account, spec);
    }

    pub fn meta(&self, account: Name) -> Option<&ContractMeta> {
        self.metas.get(&account)
    }

    pub fn airdrop(&self, account: Name) -> Option<&AirdropSpec> {
        self.airdrops.get(&account)
    }

    pub fn category_of(&self, account: Name) -> Option<AppCategory> {
        self.metas.get(&account).map(|m| m.category)
    }

    pub fn contracts(&self) -> impl Iterator<Item = &ContractMeta> {
        self.metas.values()
    }

    pub fn len(&self) -> usize {
        self.metas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let mut r = ContractRegistry::new();
        r.deploy(ContractMeta {
            account: Name::new("betdicetasks"),
            category: AppCategory::Betting,
            token: None,
            description: "betting game bookkeeping",
        });
        r.deploy(ContractMeta {
            account: Name::new("eidosonecoin"),
            category: AppCategory::Tokens,
            token: Some(TokenId::new(Name::new("eidosonecoin"), "EIDOS")),
            description: "EIDOS airdrop token",
        });
        r.attach_airdrop(
            Name::new("eidosonecoin"),
            AirdropSpec {
                token: TokenId::new(Name::new("eidosonecoin"), "EIDOS"),
                payout_ppm: 100,
            },
        );
        assert_eq!(r.category_of(Name::new("betdicetasks")), Some(AppCategory::Betting));
        assert_eq!(r.airdrop(Name::new("eidosonecoin")).unwrap().payout_ppm, 100);
        assert!(r.airdrop(Name::new("betdicetasks")).is_none());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn category_labels_match_paper() {
        let labels: Vec<&str> = AppCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["Exchange", "Betting", "Games", "Pornography", "Tokens", "Others"]
        );
    }
}
