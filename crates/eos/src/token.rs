//! eosio.token-style multi-token ledger.
//!
//! Tokens on EOS are identified by `(contract, symbol)`. The system token
//! (EOS) lives on `eosio.token`; app tokens (EIDOS, DICE, …) live on their
//! own contracts but share the standardized transfer interface — which is
//! exactly why the paper can classify token transfers uniformly (§2.3.1).

use crate::name::Name;
use crate::types::AssetRaw;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use txstat_types::amount::SymCode;

/// Identity of a token: the contract it lives on plus its symbol code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId {
    pub contract: Name,
    pub symbol: SymCode,
}

impl TokenId {
    pub fn new(contract: Name, symbol: &str) -> Self {
        TokenId { contract, symbol: SymCode::new(symbol) }
    }

    /// The system token: EOS on eosio.token.
    pub fn eos() -> Self {
        TokenId::new(Name::new("eosio.token"), "EOS")
    }
}

/// Supply bookkeeping for one token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenStats {
    pub issuer: Name,
    pub supply: AssetRaw,
    pub max_supply: AssetRaw,
}

/// Errors from token operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    UnknownToken(TokenId),
    AlreadyCreated(TokenId),
    NonPositiveAmount,
    Overdrawn { account: Name, have: AssetRaw, need: AssetRaw },
    ExceedsMaxSupply,
    SelfTransfer,
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::UnknownToken(id) => write!(f, "unknown token {}@{}", id.symbol, id.contract),
            TokenError::AlreadyCreated(id) => write!(f, "token {}@{} exists", id.symbol, id.contract),
            TokenError::NonPositiveAmount => write!(f, "amount must be positive"),
            TokenError::Overdrawn { account, have, need } => {
                write!(f, "{account} overdrawn: has {have}, needs {need}")
            }
            TokenError::ExceedsMaxSupply => write!(f, "issuance exceeds max supply"),
            TokenError::SelfTransfer => write!(f, "cannot transfer to self"),
        }
    }
}

impl std::error::Error for TokenError {}

/// The multi-token ledger.
#[derive(Debug, Clone, Default)]
pub struct TokenLedger {
    stats: HashMap<TokenId, TokenStats>,
    balances: HashMap<(Name, TokenId), AssetRaw>,
}

impl TokenLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// `create`: register a token with a max supply.
    pub fn create(&mut self, id: TokenId, issuer: Name, max_supply: AssetRaw) -> Result<(), TokenError> {
        if max_supply <= 0 {
            return Err(TokenError::NonPositiveAmount);
        }
        if self.stats.contains_key(&id) {
            return Err(TokenError::AlreadyCreated(id));
        }
        self.stats.insert(id, TokenStats { issuer, supply: 0, max_supply });
        Ok(())
    }

    /// `issue`: mint `amount` to the issuer's balance.
    pub fn issue(&mut self, id: TokenId, amount: AssetRaw) -> Result<(), TokenError> {
        if amount <= 0 {
            return Err(TokenError::NonPositiveAmount);
        }
        let stats = self.stats.get_mut(&id).ok_or(TokenError::UnknownToken(id))?;
        if stats.supply + amount > stats.max_supply {
            return Err(TokenError::ExceedsMaxSupply);
        }
        stats.supply += amount;
        let issuer = stats.issuer;
        *self.balances.entry((issuer, id)).or_insert(0) += amount;
        Ok(())
    }

    /// `transfer`: move `amount` from `from` to `to`.
    pub fn transfer(
        &mut self,
        id: TokenId,
        from: Name,
        to: Name,
        amount: AssetRaw,
    ) -> Result<(), TokenError> {
        if amount <= 0 {
            return Err(TokenError::NonPositiveAmount);
        }
        if from == to {
            return Err(TokenError::SelfTransfer);
        }
        if !self.stats.contains_key(&id) {
            return Err(TokenError::UnknownToken(id));
        }
        let have = self.balance(from, id);
        if have < amount {
            return Err(TokenError::Overdrawn { account: from, have, need: amount });
        }
        *self.balances.entry((from, id)).or_insert(0) -= amount;
        *self.balances.entry((to, id)).or_insert(0) += amount;
        Ok(())
    }

    pub fn balance(&self, account: Name, id: TokenId) -> AssetRaw {
        self.balances.get(&(account, id)).copied().unwrap_or(0)
    }

    pub fn stats(&self, id: TokenId) -> Option<&TokenStats> {
        self.stats.get(&id)
    }

    pub fn token_ids(&self) -> impl Iterator<Item = &TokenId> {
        self.stats.keys()
    }

    /// Invariant check: for every token, Σ balances == supply, and no
    /// balance is negative. Used by tests and debug assertions.
    pub fn check_conservation(&self) -> Result<(), String> {
        let mut sums: HashMap<TokenId, AssetRaw> = HashMap::new();
        for ((acct, id), bal) in &self.balances {
            if *bal < 0 {
                return Err(format!("negative balance {bal} for {acct} on {id:?}"));
            }
            *sums.entry(*id).or_insert(0) += bal;
        }
        for (id, stats) in &self.stats {
            let sum = sums.get(id).copied().unwrap_or(0);
            if sum != stats.supply {
                return Err(format!(
                    "token {:?}: balances sum {} != supply {}",
                    id, sum, stats.supply
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (TokenLedger, TokenId) {
        let mut l = TokenLedger::new();
        let id = TokenId::eos();
        l.create(id, Name::new("eosio"), 10_000_0000).unwrap();
        l.issue(id, 1_000_0000).unwrap();
        l.transfer(id, Name::new("eosio"), Name::new("alice"), 500_0000).unwrap();
        (l, id)
    }

    #[test]
    fn create_issue_transfer() {
        let (l, id) = setup();
        assert_eq!(l.balance(Name::new("alice"), id), 500_0000);
        assert_eq!(l.balance(Name::new("eosio"), id), 500_0000);
        l.check_conservation().unwrap();
    }

    #[test]
    fn rejects_overdraw() {
        let (mut l, id) = setup();
        let err = l
            .transfer(id, Name::new("alice"), Name::new("bob"), 600_0000)
            .unwrap_err();
        assert!(matches!(err, TokenError::Overdrawn { .. }));
        l.check_conservation().unwrap();
    }

    #[test]
    fn rejects_bad_amounts_and_self() {
        let (mut l, id) = setup();
        assert_eq!(
            l.transfer(id, Name::new("alice"), Name::new("alice"), 1),
            Err(TokenError::SelfTransfer)
        );
        assert_eq!(
            l.transfer(id, Name::new("alice"), Name::new("bob"), 0),
            Err(TokenError::NonPositiveAmount)
        );
        assert_eq!(
            l.transfer(id, Name::new("alice"), Name::new("bob"), -5),
            Err(TokenError::NonPositiveAmount)
        );
    }

    #[test]
    fn max_supply_enforced() {
        let (mut l, id) = setup();
        assert_eq!(l.issue(id, 9_000_0001), Err(TokenError::ExceedsMaxSupply));
        l.issue(id, 9_000_0000).unwrap();
        assert_eq!(l.stats(id).unwrap().supply, 10_000_0000);
    }

    #[test]
    fn unknown_token() {
        let mut l = TokenLedger::new();
        let id = TokenId::new(Name::new("nobody"), "NOPE");
        assert_eq!(l.issue(id, 5), Err(TokenError::UnknownToken(id)));
        assert_eq!(
            l.transfer(id, Name::new("a"), Name::new("b"), 5),
            Err(TokenError::UnknownToken(id))
        );
    }

    #[test]
    fn multiple_tokens_are_independent() {
        let mut l = TokenLedger::new();
        let eos = TokenId::eos();
        let eidos = TokenId::new(Name::new("eidosonecoin"), "EIDOS");
        l.create(eos, Name::new("eosio"), 1_000).unwrap();
        l.create(eidos, Name::new("eidosonecoin"), 9_999).unwrap();
        l.issue(eos, 100).unwrap();
        l.issue(eidos, 999).unwrap();
        assert_eq!(l.balance(Name::new("eosio"), eos), 100);
        assert_eq!(l.balance(Name::new("eosio"), eidos), 0);
        assert_eq!(l.balance(Name::new("eidosonecoin"), eidos), 999);
        l.check_conservation().unwrap();
    }

    proptest! {
        /// Random valid transfer sequences preserve conservation and
        /// non-negativity.
        #[test]
        fn prop_conservation(ops in proptest::collection::vec((0usize..4, 0usize..4, 1i64..1000), 0..60)) {
            let accounts = [Name::new("a"), Name::new("b"), Name::new("c"), Name::new("d")];
            let mut l = TokenLedger::new();
            let id = TokenId::eos();
            l.create(id, accounts[0], 1_000_000).unwrap();
            l.issue(id, 500_000).unwrap();
            for (f, t, amt) in ops {
                // Ignore expected business errors; ledger must stay consistent.
                let _ = l.transfer(id, accounts[f], accounts[t], amt);
                prop_assert!(l.check_conservation().is_ok());
            }
        }
    }
}
