//! EOS account/action name codec.
//!
//! EOS packs names ("eosio.token", "betdicetasks", "transfer") into a `u64`:
//! up to 12 characters from the 32-symbol alphabet `.12345a-z` at 5 bits
//! each, plus an optional 13th character restricted to the first 16 symbols.
//! We implement the exact production encoding so simulated identifiers have
//! the same value space, ordering, and string forms as mainnet's.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The EOS name alphabet, in symbol-index order.
const CHARMAP: &[u8; 32] = b".12345abcdefghijklmnopqrstuvwxyz";

/// A base32-packed EOS name (account, action, permission, table…).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(into = "String", try_from = "String")]
pub struct Name(pub u64);

/// Errors from parsing an EOS name string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    TooLong,
    BadChar(char),
    Bad13thChar(char),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::TooLong => write!(f, "name longer than 13 characters"),
            NameError::BadChar(c) => write!(f, "character {c:?} not in .12345a-z"),
            NameError::Bad13thChar(c) => {
                write!(f, "13th character {c:?} must be one of .12345a-j")
            }
        }
    }
}

impl std::error::Error for NameError {}

fn char_to_symbol(c: u8) -> Option<u64> {
    match c {
        b'.' => Some(0),
        b'1'..=b'5' => Some((c - b'1') as u64 + 1),
        b'a'..=b'z' => Some((c - b'a') as u64 + 6),
        _ => None,
    }
}

impl Name {
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Parse a name string (≤13 chars, alphabet `.12345a-z`, 13th ≤ 'j').
    pub fn parse(s: &str) -> Result<Name, NameError> {
        let bytes = s.as_bytes();
        if bytes.len() > 13 {
            return Err(NameError::TooLong);
        }
        let mut value: u64 = 0;
        for (i, &b) in bytes.iter().enumerate() {
            let sym = char_to_symbol(b).ok_or(NameError::BadChar(b as char))?;
            if i < 12 {
                value |= (sym & 0x1f) << (64 - 5 * (i + 1));
            } else {
                // 13th character: only 4 bits available.
                if sym > 0x0f {
                    return Err(NameError::Bad13thChar(b as char));
                }
                value |= sym;
            }
        }
        Ok(Name(value))
    }

    /// Parse, panicking on invalid input — for the workspace's many
    /// compile-time-constant names.
    pub fn new(s: &str) -> Name {
        Self::parse(s).unwrap_or_else(|e| panic!("invalid EOS name {s:?}: {e}"))
    }

    /// Render back to the canonical (trailing-dot-trimmed) string.
    pub fn to_string_repr(self) -> String {
        let mut chars = [b'.'; 13];
        let mut v = self.0;
        for i in (0..13).rev() {
            let sym = if i == 12 { v & 0x0f } else { v & 0x1f };
            chars[i] = CHARMAP[sym as usize];
            v >>= if i == 12 { 4 } else { 5 };
        }
        let s: &str = std::str::from_utf8(&chars).expect("charmap is ASCII");
        s.trim_end_matches('.').to_owned()
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl txstat_types::colcodec::ColKey for Name {
    /// Wire column form: the packed `u64` (the production encoding is
    /// already canonical — one name, one value).
    fn encode_key(&self, w: &mut txstat_types::colcodec::ColWriter) {
        w.u64(self.0);
    }

    fn decode_key(
        r: &mut txstat_types::colcodec::ColReader<'_>,
    ) -> Result<Self, txstat_types::colcodec::ColError> {
        Ok(Name(r.u64()?))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_repr())
    }
}

impl FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.to_string_repr()
    }
}

impl TryFrom<String> for Name {
    type Error = NameError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        Name::parse(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_mainnet_values() {
        // Values cross-checked against the production `eosio::name` codec.
        assert_eq!(Name::new("eosio").raw(), 0x5530_EA00_0000_0000);
        assert_eq!(Name::new("eosio.token").raw(), 0x5530_EA03_3482_A600);
        assert_eq!(Name::new("transfer").raw(), 0xCDCD_3C2D_5700_0000);
        assert_eq!(Name::new("").raw(), 0);
    }

    #[test]
    fn roundtrip_paper_accounts() {
        for s in [
            "eosio.token",
            "pornhashbaby",
            "betdicetasks",
            "betdicegroup",
            "whaleextrust",
            "eossanguoone",
            "mykeypostman",
            "bluebetproxy",
            "eidosonecoin",
            "eosio.msig",
            "eosio.wrap",
            "verifytrade2",
            "removetask",
            "delegatebw",
            "buyrambytes",
            "voteproducer",
        ] {
            assert_eq!(Name::new(s).to_string_repr(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn thirteenth_char() {
        let n = Name::new("aaaaaaaaaaaaj");
        assert_eq!(n.to_string_repr(), "aaaaaaaaaaaaj");
        assert_eq!(Name::parse("aaaaaaaaaaaak"), Err(NameError::Bad13thChar('k')));
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(Name::parse("aaaaaaaaaaaaaa"), Err(NameError::TooLong));
        assert_eq!(Name::parse("UPPER"), Err(NameError::BadChar('U')));
        assert_eq!(Name::parse("has space"), Err(NameError::BadChar(' ')));
        assert_eq!(Name::parse("nine9"), Err(NameError::BadChar('9')));
    }

    #[test]
    fn ordering_matches_string_ordering_for_same_length() {
        // EOS name u64 ordering is the on-chain table ordering.
        let a = Name::new("alice");
        let b = Name::new("bob");
        assert!(a < b);
    }

    #[test]
    fn serde_as_string() {
        let n = Name::new("eosio.token");
        let j = serde_json::to_string(&n).unwrap();
        assert_eq!(j, "\"eosio.token\"");
        let back: Name = serde_json::from_str(&j).unwrap();
        assert_eq!(back, n);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(s in "[a-z1-5.]{1,12}") {
            // Canonical form trims trailing dots; compare trimmed.
            let n = Name::parse(&s).unwrap();
            let canon = s.trim_end_matches('.');
            prop_assert_eq!(n.to_string_repr(), canon);
        }

        #[test]
        fn prop_raw_roundtrip_is_stable(s in "[a-z]{1,12}") {
            let n = Name::parse(&s).unwrap();
            let n2 = Name::parse(&n.to_string_repr()).unwrap();
            prop_assert_eq!(n.raw(), n2.raw());
        }
    }
}
