//! Core EOS chain datatypes: actions, transactions, blocks.
//!
//! The paper counts *actions* for Figure 1 ("we counted all the actions
//! included in a single transaction") and *transactions* for Figure 2, so
//! both levels are first-class here.

use crate::name::Name;
use serde::{Deserialize, Serialize};
use txstat_types::amount::SymCode;
use txstat_types::time::ChainTime;

/// EOS core token symbol (4 decimals).
pub const EOS_DECIMALS: u8 = 4;

/// An asset quantity on EOS: integer sub-units of a 4-decimal symbol.
pub type AssetRaw = i64;

/// Structured payload of the action kinds the analytics must see through;
/// everything else is `Generic`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionData {
    /// `transfer(from, to, quantity, memo)` on an eosio.token-style contract.
    Transfer {
        from: Name,
        to: Name,
        symbol: SymCode,
        /// Sub-units at 4 decimals.
        amount: AssetRaw,
    },
    /// A settled DEX trade (WhaleEx `verifytrade2`-style): the contract
    /// reports a matched buy/sell pair.
    Trade {
        buyer: Name,
        seller: Name,
        base_symbol: SymCode,
        base_amount: AssetRaw,
        quote_symbol: SymCode,
        quote_amount: AssetRaw,
    },
    /// `newaccount(creator, name)`.
    NewAccount { creator: Name, name: Name },
    /// `delegatebw(from, receiver, stake_net, stake_cpu)`.
    DelegateBw { from: Name, receiver: Name, net: AssetRaw, cpu: AssetRaw },
    /// `undelegatebw(from, receiver, unstake_net, unstake_cpu)`.
    UndelegateBw { from: Name, receiver: Name, net: AssetRaw, cpu: AssetRaw },
    /// `buyram(payer, receiver, quant)` — EOS spent on RAM.
    BuyRam { payer: Name, receiver: Name, quant: AssetRaw },
    /// `buyrambytes(payer, receiver, bytes)`.
    BuyRamBytes { payer: Name, receiver: Name, bytes: u64 },
    /// `bidname(bidder, newname, bid)`.
    BidName { bidder: Name, newname: Name, bid: AssetRaw },
    /// `voteproducer(voter, producers)`.
    VoteProducer { voter: Name, producer_count: u8 },
    /// REX `rentcpu(from, receiver, loan_payment)`.
    RentCpu { from: Name, receiver: Name, payment: AssetRaw },
    /// Anything else — app-defined actions; payload irrelevant to analytics.
    Generic,
}

/// One action: a call of `name` on `contract`, authorized by `actor`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// The contract account the action executes on (the paper's "receiver").
    pub contract: Name,
    /// Action name (e.g. `transfer`, `verifytrade2`, `removetask`).
    pub name: Name,
    /// First authorizer (the paper's "sender").
    pub actor: Name,
    pub data: ActionData,
}

impl Action {
    pub fn new(contract: Name, name: Name, actor: Name, data: ActionData) -> Self {
        Action { contract, name, actor, data }
    }

    /// Convenience for the ubiquitous token transfer.
    pub fn token_transfer(
        token_contract: Name,
        from: Name,
        to: Name,
        symbol: SymCode,
        amount: AssetRaw,
    ) -> Self {
        Action {
            contract: token_contract,
            name: Name::new("transfer"),
            actor: from,
            data: ActionData::Transfer { from, to, symbol, amount },
        }
    }
}

/// A transaction: one or more actions sharing a single billing envelope.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Stable id (FNV of block/slot/index assigned at production time).
    pub id: u64,
    pub actions: Vec<Action>,
    /// CPU microseconds billed to the first authorizer.
    pub cpu_us: u32,
    /// Network bytes billed.
    pub net_bytes: u32,
}

impl Transaction {
    /// Billing payer: first authorizer of the first action.
    pub fn payer(&self) -> Option<Name> {
        self.actions.first().map(|a| a.actor)
    }
}

/// A produced block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    pub num: u64,
    pub time: ChainTime,
    pub producer: Name,
    pub transactions: Vec<Transaction>,
}

impl Block {
    pub fn action_count(&self) -> usize {
        self.transactions.iter().map(|t| t.actions.len()).sum()
    }
}

/// Receipt of applying a transaction to chain state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    pub tx_id: u64,
    pub executed_actions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_constructor() {
        let a = Action::token_transfer(
            Name::new("eosio.token"),
            Name::new("alice"),
            Name::new("bob"),
            SymCode::new("EOS"),
            12_345,
        );
        assert_eq!(a.name, Name::new("transfer"));
        assert_eq!(a.actor, Name::new("alice"));
        match a.data {
            ActionData::Transfer { from, to, amount, .. } => {
                assert_eq!(from, Name::new("alice"));
                assert_eq!(to, Name::new("bob"));
                assert_eq!(amount, 12_345);
            }
            _ => panic!("expected transfer"),
        }
    }

    #[test]
    fn block_action_count() {
        let t = |n: usize| Transaction {
            id: n as u64,
            actions: vec![
                Action::new(
                    Name::new("x"),
                    Name::new("doit"),
                    Name::new("y"),
                    ActionData::Generic
                );
                n
            ],
            cpu_us: 100,
            net_bytes: 128,
        };
        let b = Block {
            num: 1,
            time: ChainTime::from_ymd(2019, 10, 1),
            producer: Name::new("eosbpone"),
            transactions: vec![t(2), t(3)],
        };
        assert_eq!(b.action_count(), 5);
        assert_eq!(b.transactions[0].payer(), Some(Name::new("y")));
    }
}
