//! # txstat-eos — EOS ledger simulator
//!
//! A from-scratch model of the EOS blockchain as the paper describes it
//! (§2.2–2.4): Delegated Proof-of-Stake with 21 producers in rounds of 126
//! blocks, fee-less transactions billed against staked CPU/NET and a Bancor
//! RAM market, a standardized multi-token ledger (`eosio.token`), system vs
//! regular accounts, and pluggable app contracts — including the EIDOS
//! airdrop behaviour whose "boomerang" transactions drove 95% of observed
//! throughput (§4.1).
//!
//! The [`chain::EosChain`] state machine validates and applies transactions;
//! [`rpc_model`] serializes blocks into the `get_block` wire shape the
//! measurement crawler consumes.

// EOS asset amounts are 4-decimal fixed point; literals group as
// <whole>_<4 decimals> on purpose.
#![allow(clippy::inconsistent_digit_grouping)]

pub mod account;
pub mod block_cols;
pub mod chain;
pub mod contract;
pub mod name;
pub mod resources;
pub mod rpc_model;
pub mod token;
pub mod types;

pub use account::{AccountKind, AccountRegistry};
pub use chain::{ChainConfig, EosChain, EosError, ProducerSchedule, State};
pub use contract::{AirdropSpec, AppCategory, ContractMeta, ContractRegistry};
pub use name::Name;
pub use resources::{RamMarket, ResourceConfig, ResourceState};
pub use token::{TokenId, TokenLedger};
pub use types::{Action, ActionData, Block, Transaction};
