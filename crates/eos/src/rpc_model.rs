//! JSON wire model of the EOS node RPC (`/v1/chain/get_info`,
//! `/v1/chain/get_block`) — the surface the paper's crawler consumed (§3.1).
//!
//! The shapes mirror nodeos responses closely enough that the crawler-side
//! parser faces the same structure (wrapped `trx`, asset strings like
//! `"1.0000 EOS"`, ISO timestamps).

use crate::name::Name;
use crate::types::{Action, ActionData, AssetRaw, Block, Transaction};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use txstat_types::amount::SymCode;
use txstat_types::time::ChainTime;

/// Render an EOS asset string: `"12.3456 EOS"` (4 decimals).
pub fn format_asset(amount: AssetRaw, symbol: SymCode) -> String {
    let neg = amount < 0;
    let mag = amount.unsigned_abs();
    format!(
        "{}{}.{:04} {}",
        if neg { "-" } else { "" },
        mag / 10_000,
        mag % 10_000,
        symbol
    )
}

/// Parse an EOS asset string back to `(amount, symbol)`.
pub fn parse_asset(s: &str) -> Option<(AssetRaw, SymCode)> {
    let (num, sym) = s.split_once(' ')?;
    let symbol = SymCode::try_new(sym).ok()?;
    let neg = num.starts_with('-');
    let num = num.trim_start_matches('-');
    let (ip, fp) = num.split_once('.')?;
    if fp.len() != 4 {
        return None;
    }
    let ip: u64 = ip.parse().ok()?;
    let fp: u64 = fp.parse().ok()?;
    let raw = (ip * 10_000 + fp) as i64;
    Some((if neg { -raw } else { raw }, symbol))
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GetInfoJson {
    pub chain_id: String,
    pub head_block_num: u64,
    pub head_block_time: String,
    pub last_irreversible_block_num: u64,
    pub server_version_string: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuthJson {
    pub actor: String,
    pub permission: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActionJson {
    pub account: String,
    pub name: String,
    pub authorization: Vec<AuthJson>,
    pub data: Value,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxBodyJson {
    pub actions: Vec<ActionJson>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrxJson {
    pub id: String,
    pub transaction: TxBodyJson,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxWrapperJson {
    pub status: String,
    pub cpu_usage_us: u32,
    pub net_usage_words: u32,
    pub trx: TrxJson,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockJson {
    pub block_num: u64,
    pub timestamp: String,
    pub producer: String,
    pub transactions: Vec<TxWrapperJson>,
}

fn action_data_to_json(data: &ActionData) -> Value {
    match data {
        ActionData::Transfer { from, to, symbol, amount } => json!({
            "from": from.to_string_repr(),
            "to": to.to_string_repr(),
            "quantity": format_asset(*amount, *symbol),
            "memo": "",
        }),
        ActionData::Trade { buyer, seller, base_symbol, base_amount, quote_symbol, quote_amount } => {
            json!({
                "buyer": buyer.to_string_repr(),
                "seller": seller.to_string_repr(),
                "base": format_asset(*base_amount, *base_symbol),
                "quote": format_asset(*quote_amount, *quote_symbol),
            })
        }
        ActionData::NewAccount { creator, name } => json!({
            "creator": creator.to_string_repr(),
            "name": name.to_string_repr(),
        }),
        ActionData::DelegateBw { from, receiver, net, cpu } => json!({
            "from": from.to_string_repr(),
            "receiver": receiver.to_string_repr(),
            "stake_net_quantity": format_asset(*net, SymCode::new("EOS")),
            "stake_cpu_quantity": format_asset(*cpu, SymCode::new("EOS")),
        }),
        ActionData::UndelegateBw { from, receiver, net, cpu } => json!({
            "from": from.to_string_repr(),
            "receiver": receiver.to_string_repr(),
            "unstake_net_quantity": format_asset(*net, SymCode::new("EOS")),
            "unstake_cpu_quantity": format_asset(*cpu, SymCode::new("EOS")),
        }),
        ActionData::BuyRam { payer, receiver, quant } => json!({
            "payer": payer.to_string_repr(),
            "receiver": receiver.to_string_repr(),
            "quant": format_asset(*quant, SymCode::new("EOS")),
        }),
        ActionData::BuyRamBytes { payer, receiver, bytes } => json!({
            "payer": payer.to_string_repr(),
            "receiver": receiver.to_string_repr(),
            "bytes": bytes,
        }),
        ActionData::BidName { bidder, newname, bid } => json!({
            "bidder": bidder.to_string_repr(),
            "newname": newname.to_string_repr(),
            "bid": format_asset(*bid, SymCode::new("EOS")),
        }),
        ActionData::VoteProducer { voter, producer_count } => json!({
            "voter": voter.to_string_repr(),
            "producer_count": producer_count,
        }),
        ActionData::RentCpu { from, receiver, payment } => json!({
            "from": from.to_string_repr(),
            "receiver": receiver.to_string_repr(),
            "loan_payment": format_asset(*payment, SymCode::new("EOS")),
        }),
        ActionData::Generic => json!({}),
    }
}

fn name_field(v: &Value, key: &str) -> Option<Name> {
    Name::parse(v.get(key)?.as_str()?).ok()
}

fn asset_field(v: &Value, key: &str) -> Option<(AssetRaw, SymCode)> {
    parse_asset(v.get(key)?.as_str()?)
}

/// Reconstruct structured action data from the wire JSON. Unknown shapes
/// degrade to `Generic` — exactly how the paper treats "user-defined"
/// actions it cannot interpret.
pub fn action_data_from_json(action_name: &str, v: &Value) -> ActionData {
    match action_name {
        "transfer" => {
            if let (Some(from), Some(to), Some((amount, symbol))) = (
                name_field(v, "from"),
                name_field(v, "to"),
                asset_field(v, "quantity"),
            ) {
                return ActionData::Transfer { from, to, symbol, amount };
            }
            ActionData::Generic
        }
        "verifytrade2" | "trade" => {
            if let (Some(buyer), Some(seller), Some((ba, bs)), Some((qa, qs))) = (
                name_field(v, "buyer"),
                name_field(v, "seller"),
                asset_field(v, "base"),
                asset_field(v, "quote"),
            ) {
                return ActionData::Trade {
                    buyer,
                    seller,
                    base_symbol: bs,
                    base_amount: ba,
                    quote_symbol: qs,
                    quote_amount: qa,
                };
            }
            ActionData::Generic
        }
        "newaccount" => {
            if let (Some(creator), Some(name)) = (name_field(v, "creator"), name_field(v, "name")) {
                return ActionData::NewAccount { creator, name };
            }
            ActionData::Generic
        }
        "delegatebw" => {
            if let (Some(from), Some(receiver), Some((net, _)), Some((cpu, _))) = (
                name_field(v, "from"),
                name_field(v, "receiver"),
                asset_field(v, "stake_net_quantity"),
                asset_field(v, "stake_cpu_quantity"),
            ) {
                return ActionData::DelegateBw { from, receiver, net, cpu };
            }
            ActionData::Generic
        }
        "undelegatebw" => {
            if let (Some(from), Some(receiver), Some((net, _)), Some((cpu, _))) = (
                name_field(v, "from"),
                name_field(v, "receiver"),
                asset_field(v, "unstake_net_quantity"),
                asset_field(v, "unstake_cpu_quantity"),
            ) {
                return ActionData::UndelegateBw { from, receiver, net, cpu };
            }
            ActionData::Generic
        }
        "buyram" => {
            if let (Some(payer), Some(receiver), Some((quant, _))) = (
                name_field(v, "payer"),
                name_field(v, "receiver"),
                asset_field(v, "quant"),
            ) {
                return ActionData::BuyRam { payer, receiver, quant };
            }
            ActionData::Generic
        }
        "buyrambytes" => {
            if let (Some(payer), Some(receiver), Some(bytes)) = (
                name_field(v, "payer"),
                name_field(v, "receiver"),
                v.get("bytes").and_then(Value::as_u64),
            ) {
                return ActionData::BuyRamBytes { payer, receiver, bytes };
            }
            ActionData::Generic
        }
        "bidname" => {
            if let (Some(bidder), Some(newname), Some((bid, _))) = (
                name_field(v, "bidder"),
                name_field(v, "newname"),
                asset_field(v, "bid"),
            ) {
                return ActionData::BidName { bidder, newname, bid };
            }
            ActionData::Generic
        }
        "voteproducer" => {
            if let (Some(voter), Some(n)) = (
                name_field(v, "voter"),
                v.get("producer_count").and_then(Value::as_u64),
            ) {
                return ActionData::VoteProducer { voter, producer_count: n as u8 };
            }
            ActionData::Generic
        }
        "rentcpu" => {
            if let (Some(from), Some(receiver), Some((payment, _))) = (
                name_field(v, "from"),
                name_field(v, "receiver"),
                asset_field(v, "loan_payment"),
            ) {
                return ActionData::RentCpu { from, receiver, payment };
            }
            ActionData::Generic
        }
        _ => ActionData::Generic,
    }
}

/// Serialize a block for the RPC endpoint.
pub fn block_to_json(block: &Block) -> BlockJson {
    BlockJson {
        block_num: block.num,
        timestamp: block.time.iso_string(),
        producer: block.producer.to_string_repr(),
        transactions: block
            .transactions
            .iter()
            .map(|tx| TxWrapperJson {
                status: "executed".to_owned(),
                cpu_usage_us: tx.cpu_us,
                net_usage_words: tx.net_bytes / 8,
                trx: TrxJson {
                    id: format!("{:016x}", tx.id),
                    transaction: TxBodyJson {
                        actions: tx
                            .actions
                            .iter()
                            .map(|a| ActionJson {
                                account: a.contract.to_string_repr(),
                                name: a.name.to_string_repr(),
                                authorization: vec![AuthJson {
                                    actor: a.actor.to_string_repr(),
                                    permission: "active".to_owned(),
                                }],
                                data: action_data_to_json(&a.data),
                            })
                            .collect(),
                    },
                },
            })
            .collect(),
    }
}

/// Errors from decoding wire blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    BadTimestamp(String),
    BadName(String),
    BadTxId(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadTimestamp(s) => write!(f, "bad timestamp {s:?}"),
            DecodeError::BadName(s) => write!(f, "bad name {s:?}"),
            DecodeError::BadTxId(s) => write!(f, "bad tx id {s:?}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Parse a wire block back into the chain model (crawler side).
pub fn block_from_json(json: &BlockJson) -> Result<Block, DecodeError> {
    let time = ChainTime::parse_iso(&json.timestamp)
        .ok_or_else(|| DecodeError::BadTimestamp(json.timestamp.clone()))?;
    let producer =
        Name::parse(&json.producer).map_err(|_| DecodeError::BadName(json.producer.clone()))?;
    let mut transactions = Vec::with_capacity(json.transactions.len());
    for w in &json.transactions {
        let id = u64::from_str_radix(&w.trx.id, 16)
            .map_err(|_| DecodeError::BadTxId(w.trx.id.clone()))?;
        let mut actions = Vec::with_capacity(w.trx.transaction.actions.len());
        for aj in &w.trx.transaction.actions {
            let contract =
                Name::parse(&aj.account).map_err(|_| DecodeError::BadName(aj.account.clone()))?;
            let name = Name::parse(&aj.name).map_err(|_| DecodeError::BadName(aj.name.clone()))?;
            let actor = aj
                .authorization
                .first()
                .map(|auth| Name::parse(&auth.actor).map_err(|_| DecodeError::BadName(auth.actor.clone())))
                .transpose()?
                .unwrap_or_default();
            let data = action_data_from_json(&aj.name, &aj.data);
            actions.push(Action { contract, name, actor, data });
        }
        transactions.push(Transaction {
            id,
            actions,
            cpu_us: w.cpu_usage_us,
            net_bytes: w.net_usage_words * 8,
        });
    }
    Ok(Block { num: json.block_num, time, producer, transactions })
}

/// The canonical wire bytes of one block: compact JSON of
/// [`block_to_json`]. The NDJSON crawl replay, the archive's wire-JSON
/// segments, and the follow layer's reorg content hashes all move exactly
/// these bytes — this is their one shared definition.
pub fn block_bytes(b: &Block) -> Vec<u8> {
    serde_json::to_vec(&block_to_json(b)).expect("serializable")
}

/// Inverse of [`block_bytes`].
pub fn block_parse(bytes: &[u8]) -> Result<Block, String> {
    let wire: BlockJson =
        serde_json::from_slice(bytes).map_err(|e| format!("eos wire block: {e}"))?;
    block_from_json(&wire).map_err(|e| format!("eos wire block: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asset_roundtrip() {
        for (raw, sym) in [(12_3456i64, "EOS"), (0, "EIDOS"), (-5_0001, "DICE"), (1, "EOS")] {
            let s = format_asset(raw, SymCode::new(sym));
            let (r2, s2) = parse_asset(&s).unwrap();
            assert_eq!((r2, s2.as_str()), (raw, sym), "via {s}");
        }
        assert_eq!(format_asset(1_0000, SymCode::new("EOS")), "1.0000 EOS");
        assert!(parse_asset("1.00 EOS").is_none(), "wrong precision");
        assert!(parse_asset("junk").is_none());
    }

    #[test]
    fn block_json_roundtrip() {
        let block = Block {
            num: 82_024_737,
            time: ChainTime::from_ymd_hms(2019, 10, 1, 0, 0, 30),
            producer: Name::new("eosbpone1111"),
            transactions: vec![Transaction {
                id: 0xdeadbeef,
                actions: vec![
                    Action::token_transfer(
                        Name::new("eosio.token"),
                        Name::new("alice"),
                        Name::new("bob"),
                        SymCode::new("EOS"),
                        9_5000,
                    ),
                    Action::new(
                        Name::new("betdicetasks"),
                        Name::new("removetask"),
                        Name::new("betdicegroup"),
                        ActionData::Generic,
                    ),
                ],
                cpu_us: 250,
                net_bytes: 160,
            }],
        };
        let wire = block_to_json(&block);
        let text = serde_json::to_string(&wire).unwrap();
        assert!(text.contains("\"9.5000 EOS\""));
        assert!(text.contains("2019-10-01T00:00:30"));
        let parsed: BlockJson = serde_json::from_str(&text).unwrap();
        let back = block_from_json(&parsed).unwrap();
        assert_eq!(back, block);
    }

    #[test]
    fn unknown_action_data_degrades_to_generic() {
        let v = json!({"weird": true});
        assert_eq!(action_data_from_json("whaleextrust", &v), ActionData::Generic);
        // Known name but missing fields also degrades.
        assert_eq!(action_data_from_json("transfer", &v), ActionData::Generic);
    }

    #[test]
    fn trade_roundtrip() {
        let data = ActionData::Trade {
            buyer: Name::new("whale1"),
            seller: Name::new("whale1"),
            base_symbol: SymCode::new("PLA"),
            base_amount: 100_0000,
            quote_symbol: SymCode::new("EOS"),
            quote_amount: 3_0000,
        };
        let v = action_data_to_json(&data);
        assert_eq!(action_data_from_json("verifytrade2", &v), data);
    }

    #[test]
    fn bad_wire_data_is_rejected() {
        let mut wire = block_to_json(&Block {
            num: 1,
            time: ChainTime::from_ymd(2019, 10, 1),
            producer: Name::new("p"),
            transactions: vec![],
        });
        wire.timestamp = "not-a-time".to_owned();
        assert!(matches!(block_from_json(&wire), Err(DecodeError::BadTimestamp(_))));
    }
}
