//! Reorg-safe chain following on top of range-marked checkpoints.
//!
//! [`ChainFollow`] wraps a [`Checkpoint`] with the bookkeeping `follow`
//! mode needs to survive a chain reorganization: after every observed
//! batch it seals a [`RangeMark`] (a chained content hash over the batch's
//! blocks) and snapshots the checkpoint into a bounded ring. When the
//! upstream chain is re-read — [`ChainFollow::resync`] — the marks are
//! re-verified positionally against the chain's *current* content; the
//! first mismatching mark locates the divergence point, and the follower
//! rolls back to the newest snapshot whose marks all still agree. Only the
//! invalidated suffix is re-swept; if the divergence is deeper than the
//! snapshot window, the follower rebuilds from its initial (empty) state,
//! which is the same as a from-scratch sweep.
//!
//! Rollback activity is exported through the process-global telemetry
//! registry as `txstat_follow_rollbacks_total`,
//! `txstat_follow_marks_invalidated_total`, and
//! `txstat_follow_rebuilds_total`, all labeled by chain.

use crate::checkpoint::Checkpoint;
use crate::IngestError;
use std::collections::VecDeque;
use std::sync::Arc;
use txstat_telemetry::{registry, Counter};
use txstat_types::ids::{fnv1a64, fnv1a64_extend};

/// Default number of post-batch snapshots retained for rollback. A reorg
/// touching at most the last `window` batches rolls back surgically;
/// anything deeper falls back to a full rebuild.
pub const DEFAULT_SNAPSHOT_WINDOW: usize = 8;

/// Chained content hash over a batch of blocks, in observation order.
/// This is what a [`RangeMark`] seals and what [`ChainFollow::resync`]
/// recomputes against the current chain content.
///
/// [`RangeMark`]: crate::checkpoint::RangeMark
pub fn range_hash<B>(blocks: &[B], hash_block: impl Fn(&B) -> u64) -> u64 {
    let mut h = fnv1a64(b"range");
    for b in blocks {
        h = fnv1a64_extend(h, &hash_block(b).to_le_bytes());
    }
    h
}

/// Outcome of a [`ChainFollow::resync`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resync {
    /// Sealed marks that still match the chain's current content.
    pub agreed: usize,
    /// Sealed marks invalidated by the divergence (0 = no reorg seen).
    pub invalidated: usize,
    /// True when the divergence was deeper than the snapshot window and
    /// the follower reset to its initial state (full re-sweep ahead).
    pub rebuilt: bool,
    /// Blocks already covered after the rollback; the caller resumes
    /// observation at `blocks[resume..]` of the current chain.
    pub resume: u64,
}

/// A checkpointed follower for one chain: seals a content mark per batch,
/// keeps a bounded snapshot ring, and rolls back to the last agreeing
/// mark when the chain's history changes under it.
pub struct ChainFollow<A> {
    chain: String,
    initial: Checkpoint<A>,
    cp: Checkpoint<A>,
    snapshots: VecDeque<Checkpoint<A>>,
    window: usize,
    rollbacks: Arc<Counter>,
    invalidated: Arc<Counter>,
    rebuilds: Arc<Counter>,
}

/// Eagerly register the follow metric families for the standard chains so
/// they render from `/metrics` (at zero) before any follower runs.
pub fn register_metrics() {
    for chain in ["eos", "tezos", "xrp"] {
        for (name, help) in FAMILIES {
            registry().counter_with(name, help, &[("chain", chain)]).add(0);
        }
    }
}

const FAMILIES: [(&str, &str); 3] = [
    ("txstat_follow_rollbacks_total", "Reorg rollbacks performed by follow resync"),
    (
        "txstat_follow_marks_invalidated_total",
        "Sealed range marks invalidated by chain divergence",
    ),
    (
        "txstat_follow_rebuilds_total",
        "Follow resyncs that reset to the initial state (reorg deeper than the snapshot window)",
    ),
];

impl<A: Clone> ChainFollow<A> {
    /// Start following from `cp` (typically [`Checkpoint::new`] at the
    /// chain's first block), retaining up to `window` rollback snapshots.
    pub fn new(chain: &str, cp: Checkpoint<A>, window: usize) -> Self {
        let labels = &[("chain", chain)][..];
        let reg = registry();
        let ctr = |i: usize| reg.counter_with(FAMILIES[i].0, FAMILIES[i].1, labels);
        ChainFollow {
            chain: chain.to_owned(),
            initial: cp.clone(),
            cp,
            snapshots: VecDeque::new(),
            window: window.max(1),
            rollbacks: ctr(0),
            invalidated: ctr(1),
            rebuilds: ctr(2),
        }
    }

    /// The chain label this follower reports under.
    pub fn chain(&self) -> &str {
        &self.chain
    }

    /// The live checkpoint (read-only; mutate only through `advance`).
    pub fn checkpoint(&self) -> &Checkpoint<A> {
        &self.cp
    }

    /// Blocks observed so far — the positional resume point into the
    /// chain's block vector.
    pub fn observed(&self) -> u64 {
        self.cp.observed()
    }

    /// Observe one batch: fold `slice` into the checkpoint, seal a content
    /// mark over it, and snapshot for rollback. An empty slice is a no-op.
    /// On error the checkpoint is restored from the newest snapshot (a
    /// partially-absorbed batch would otherwise poison it).
    pub fn advance<B>(
        &mut self,
        slice: &[B],
        num: impl Fn(&B) -> u64,
        observe: impl Fn(&mut A, u64, &B),
        hash_block: impl Fn(&B) -> u64,
    ) -> Result<u64, IngestError> {
        let appended = match self
            .cp
            .observe_tail(slice.iter().map(|b| (num(b), b)), |a, n, b| observe(a, n, b))
        {
            Ok(n) => n,
            Err(e) => {
                self.cp =
                    self.snapshots.back().cloned().unwrap_or_else(|| self.initial.clone());
                return Err(e);
            }
        };
        if appended > 0 {
            self.cp.seal_mark(range_hash(slice, hash_block));
            self.snapshots.push_back(self.cp.clone());
            while self.snapshots.len() > self.window {
                self.snapshots.pop_front();
            }
        }
        Ok(appended)
    }

    /// Re-verify the sealed marks against the chain's current content and
    /// roll back past any divergence. `blocks` is the full current chain
    /// in observation order, starting at the same origin the follower
    /// started from; each mark covers the next `mark.blocks` positions.
    ///
    /// Returns where to resume: `blocks[resume..]` is the unswept suffix.
    pub fn resync<B>(&mut self, blocks: &[B], hash_block: impl Fn(&B) -> u64) -> Resync {
        let mut cursor = 0usize;
        let mut agreed = 0usize;
        for m in &self.cp.marks {
            let end = cursor + m.blocks as usize;
            if end > blocks.len() || range_hash(&blocks[cursor..end], &hash_block) != m.hash {
                break;
            }
            agreed += 1;
            cursor = end;
        }
        let invalidated = self.cp.marks.len() - agreed;
        if invalidated == 0 {
            return Resync { agreed, invalidated: 0, rebuilt: false, resume: self.cp.observed() };
        }
        self.rollbacks.inc();
        self.invalidated.add(invalidated as u64);
        // Restore the newest snapshot whose whole mark list still agrees.
        let rebuilt = match self.snapshots.iter().position(|s| s.marks.len() == agreed) {
            Some(i) if agreed > 0 => {
                self.cp = self.snapshots[i].clone();
                self.snapshots.truncate(i + 1);
                false
            }
            _ => {
                // Divergence predates the snapshot window (or reaches the
                // very first batch): start over from the initial state.
                self.cp = self.initial.clone();
                self.snapshots.clear();
                self.rebuilds.inc();
                true
            }
        };
        Resync { agreed, invalidated, rebuilt, resume: self.cp.observed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sum-of-values accumulator; the "block" is a bare u64 whose content
    /// hash is itself, so mutating a value IS a reorg.
    #[derive(Debug, Clone, PartialEq)]
    struct Sum(u64);

    fn follower(chain: &[u64], window: usize) -> ChainFollow<Sum> {
        let _ = chain;
        ChainFollow::new("test", Checkpoint::new(vec![Sum(0); 3], 1), window)
    }

    fn drive(f: &mut ChainFollow<Sum>, chain: &[u64], batch: usize) {
        let mut off = f.observed() as usize;
        while off < chain.len() {
            let hi = (off + batch).min(chain.len());
            // Block numbers are positional (1-based), like the pipeline's.
            let nums: Vec<(u64, u64)> =
                chain[off..hi].iter().enumerate().map(|(i, v)| ((off + i + 1) as u64, *v)).collect();
            f.advance(&nums, |b| b.0, |a, _n, b| a.0 += b.1, |b| b.1).expect("tail extends");
            off = hi;
        }
    }

    fn from_scratch(chain: &[u64]) -> u64 {
        chain.iter().sum()
    }

    fn merged(f: &ChainFollow<Sum>) -> u64 {
        f.checkpoint().merged(|a, b| a.0 += b.0).0
    }

    #[test]
    fn clean_resync_is_a_no_op() {
        let chain: Vec<u64> = (1..=100).collect();
        let mut f = follower(&chain, 4);
        drive(&mut f, &chain, 10);
        let blocks: Vec<(u64, u64)> =
            chain.iter().enumerate().map(|(i, v)| ((i + 1) as u64, *v)).collect();
        let r = f.resync(&blocks, |b| b.1);
        assert_eq!(r, Resync { agreed: 10, invalidated: 0, rebuilt: false, resume: 100 });
        assert_eq!(merged(&f), from_scratch(&chain));
    }

    #[test]
    fn shallow_reorg_rolls_back_suffix_only() {
        let chain: Vec<u64> = (1..=100).collect();
        let mut f = follower(&chain, 4);
        drive(&mut f, &chain, 10);
        // Reorg the last two batches: values at positions 85.. change.
        let mut reorged = chain.clone();
        for v in &mut reorged[85..] {
            *v += 1000;
        }
        let blocks: Vec<(u64, u64)> =
            reorged.iter().enumerate().map(|(i, v)| ((i + 1) as u64, *v)).collect();
        let r = f.resync(&blocks, |b| b.1);
        assert_eq!(r.agreed, 8);
        assert_eq!(r.invalidated, 2);
        assert!(!r.rebuilt, "divergence is inside the snapshot window");
        assert_eq!(r.resume, 80, "resumes at the first invalidated mark");
        // Re-sweep the suffix: must equal a from-scratch fold of the
        // reorged chain.
        drive(&mut f, &reorged, 10);
        assert_eq!(merged(&f), from_scratch(&reorged));
    }

    #[test]
    fn deep_reorg_rebuilds_from_scratch() {
        let chain: Vec<u64> = (1..=100).collect();
        let mut f = follower(&chain, 2); // tiny window
        drive(&mut f, &chain, 10);
        let mut reorged = chain.clone();
        reorged[5] += 7; // diverges in the very first batch
        let blocks: Vec<(u64, u64)> =
            reorged.iter().enumerate().map(|(i, v)| ((i + 1) as u64, *v)).collect();
        let r = f.resync(&blocks, |b| b.1);
        assert_eq!(r.agreed, 0);
        assert_eq!(r.invalidated, 10);
        assert!(r.rebuilt);
        assert_eq!(r.resume, 0);
        drive(&mut f, &reorged, 10);
        assert_eq!(merged(&f), from_scratch(&reorged));
    }

    #[test]
    fn failed_advance_restores_the_last_snapshot() {
        let chain: Vec<u64> = (1..=30).collect();
        let mut f = follower(&chain, 4);
        drive(&mut f, &chain, 10);
        let before = merged(&f);
        // A batch that re-observes block 5 fails mid-fold; the follower
        // must come back unpoisoned.
        let bad = vec![(31u64, 1u64), (5u64, 1u64)];
        assert!(f.advance(&bad, |b| b.0, |a, _n, b| a.0 += b.1, |b| b.1).is_err());
        assert_eq!(merged(&f), before);
        assert_eq!(f.observed(), 30);
    }
}
