//! # txstat-ingest — streaming ingestion from crawler to accumulator
//!
//! The paper's statistics are a pure fold over block streams, so nothing
//! about them requires the chain to exist in memory. This crate connects
//! block *sources* (the loopback RPC crawler, NDJSON captures, in-memory
//! scenarios) directly to the sweep algebra of `txstat_core`
//! (`identity / observe / merge`) through bounded channels:
//!
//! ```text
//!   source workers                    shard channels            reducer
//!  ┌──────────────┐   Sink::send    ┌─────────────┐
//!  │ RPC crawl ×K │ ──(n, block)──▶ │ ch[n % S] ──┼─▶ worker s: observe()
//!  │ NDJSON replay│    (bounded,    │   …         │        │
//!  │ MemorySource │     gauged)     └─────────────┘        ▼
//!  └──────────────┘                              merge shards in order ─▶ sweep ─▶ report
//! ```
//!
//! - [`channel`] — the bounded, gauged MPSC channel (the backpressure and
//!   memory-bounding primitive).
//! - [`shard`] — the sharded worker pool: `S` private accumulators fed by
//!   residue-class routing, merged in shard order at end of stream.
//! - [`source`] — the [`source::BlockSource`] trait plus in-memory and
//!   NDJSON-replay adapters.
//! - [`crawl`] — streaming RPC crawl sources for the three chains, with
//!   crawl-time exchange-rate resolution for XRP.
//! - [`checkpoint`] — range-keyed frozen shard states for incremental
//!   re-sweep (append a tail without re-observing the prefix).
//! - [`reduce`] — the distributed shard/merge boundary: [`ShardWorker`]
//!   folds a block range into `txstat_wire` frames in one process,
//!   [`ReduceSession`] validates and remap-merges them in another.
//!
//! Peak memory of a streamed sweep is `O(shards × (accumulator +
//! channel_capacity × block))` — independent of chain length. Equivalence
//! with the materializing `par_sweep` path is pinned by
//! `tests/property_suite.rs` for random shard counts and capacities.

pub mod channel;
pub mod checkpoint;
pub mod crawl;
pub mod epoch;
pub mod fleet;
pub mod follow;
pub mod reduce;
pub mod shard;
pub mod source;

pub use channel::{bounded, ChannelGauge, GaugeSnapshot};
pub use checkpoint::{Checkpoint, RangeMark};
pub use epoch::EpochCell;
pub use crawl::{EosCrawlSource, RateCache, TezosCrawlSource, XrpCrawlSource};
pub use fleet::{reduce_fleet, serve_assignments, FleetConfig, FleetError};
pub use follow::{ChainFollow, Resync};
pub use reduce::{ReduceError, ReduceSession, ShardWorker};
pub use shard::{spawn_sharded, IngestOptions, IngestOutcome, ShardPoolHandle, Sink};
pub use source::{BlockSource, MemorySource, NdjsonReplay};

use txstat_crawler::CrawlError;

/// Ingestion failures.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying crawl failed.
    Crawl(CrawlError),
    /// An NDJSON replay line did not parse.
    Replay { line: usize, error: String },
    /// The shard pool was torn down while producers were still sending.
    SinkClosed,
    /// A checkpoint tail tried to re-observe an already-covered block.
    RangeRegression { n: u64, high: u64 },
    /// A serialized checkpoint was malformed.
    Checkpoint(String),
    /// A serialized checkpoint carries a different schema version than
    /// this build writes (`found` is `None` when the field is absent —
    /// pre-versioning checkpoints).
    CheckpointSchema { found: Option<u64>, expected: u64 },
    /// A serialized checkpoint's content hash does not match its payload:
    /// the shard state was corrupted or hand-edited.
    CheckpointCorrupt { expected: u64, found: u64 },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Crawl(e) => write!(f, "crawl: {e}"),
            IngestError::Replay { line, error } => write!(f, "replay line {line}: {error}"),
            IngestError::SinkClosed => write!(f, "shard pool closed mid-stream"),
            IngestError::RangeRegression { n, high } => {
                write!(f, "block {n} is not past the checkpoint high-water mark {high}")
            }
            IngestError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
            IngestError::CheckpointSchema { found, expected } => match found {
                Some(v) => write!(f, "checkpoint schema version {v}, this build writes {expected}"),
                None => write!(f, "checkpoint has no schema version (expected {expected})"),
            },
            IngestError::CheckpointCorrupt { expected, found } => write!(
                f,
                "checkpoint content hash mismatch: recorded {expected:#018x}, payload hashes to {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<CrawlError> for IngestError {
    fn from(e: CrawlError) -> Self {
        IngestError::Crawl(e)
    }
}

impl From<IngestError> for CrawlError {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Crawl(c) => c,
            other => CrawlError::Protocol(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txstat_types::time::{ChainTime, Period};

    fn window() -> Period {
        Period::new(ChainTime::from_ymd(2019, 10, 26), ChainTime::from_ymd(2019, 11, 7))
    }

    /// NDJSON round trip: chain → capture → replayed stream → sweep equals
    /// the materialized parallel sweep, with crawl-grade byte accounting.
    #[test]
    fn ndjson_replay_sweep_equals_materialized() {
        let mut sc = txstat_workload::Scenario::small(11);
        sc.period = window();
        let chain = txstat_workload::eos::build_eos(&sc);
        let blocks = chain.blocks();
        let period = sc.period;
        let direct = txstat_core::EosSweep::compute(blocks, period);

        let text = source::eos_to_ndjson(blocks);
        let (streamed, stats) = tokio::runtime::block_on(async {
            let opts = IngestOptions { shards: 3, channel_capacity: 16, label: "" };
            let (sink, pool) = spawn_sharded(
                opts,
                move || txstat_core::EosSweep::new(period),
                |acc: &mut txstat_core::EosSweep, _n, b: &txstat_eos::Block| acc.observe(b),
            );
            let producer = tokio::spawn(source::eos_replay(text).produce(sink));
            let outcome = pool.finish().await;
            let stats = producer.await.expect("producer").expect("replay parses");
            (outcome.merged(|a, b| a.merge(b)), stats)
        });
        assert_eq!(stats.blocks, blocks.len() as u64);
        assert!(stats.wire_bytes > 0);
        let (rows, total) = streamed.action_distribution();
        let (drows, dtotal) = direct.action_distribution();
        assert_eq!(total, dtotal);
        assert_eq!(rows.len(), drows.len());
        for (a, b) in rows.iter().zip(&drows) {
            assert_eq!((a.class, &a.action, a.count), (b.class, &b.action, b.count));
        }
        assert_eq!(streamed.tps(), direct.tps());
    }

    /// Backpressure, virtual-clock style (no wall-clock sleeps): the
    /// consumer refuses to drain until the producer has provably filled the
    /// channel and parked; the high-water mark must never exceed capacity.
    #[test]
    fn slow_consumer_stalls_producer_without_buffering() {
        tokio::runtime::block_on(async {
            const CAPACITY: usize = 4;
            const TOTAL: u64 = 200;
            let (tx, mut rx, gauge) = bounded::<u64>(CAPACITY);
            let producer = tokio::spawn(async move {
                for n in 0..TOTAL {
                    tx.send(n).await.expect("receiver alive");
                }
            });
            // Gate on the channel being full *and* a blocked send recorded —
            // the deterministic signal that the producer is parked on the
            // bounded channel rather than allocating.
            loop {
                let snap = gauge.snapshot();
                if snap.blocked_sends > 0 && gauge.queued() == CAPACITY {
                    break;
                }
                std::thread::yield_now();
            }
            let mut received = 0u64;
            while rx.recv().await.is_some() {
                received += 1;
                // Memory stays bounded the whole way through.
                assert!(gauge.snapshot().high_water <= CAPACITY as u64);
            }
            producer.await.expect("producer");
            let snap = gauge.snapshot();
            assert_eq!(received, TOTAL);
            assert_eq!(snap.sent, TOTAL);
            assert!(
                snap.high_water <= CAPACITY as u64,
                "queue grew past capacity: {}",
                snap.high_water
            );
            assert!(snap.blocked_sends > 0, "producer never hit backpressure");
        });
    }
}
