//! Bounded MPSC block channel with backpressure instrumentation.
//!
//! This is the memory-bounding primitive of the ingestion subsystem: a
//! producer that outruns its consumer parks on [`Sender::send`] instead of
//! growing a buffer, so the crawl stalls rather than materializing the
//! chain. Under the workspace's thread-per-task tokio shim every task owns
//! an OS thread, so the channel blocks on a condvar inside its async
//! methods — the same execution model the shim uses for socket I/O.
//!
//! Every channel carries a [`ChannelGauge`]: capacity, high-water mark of
//! queued items, number of sends that had to wait for space, and total
//! items routed. Tests assert `high_water <= capacity` to prove the
//! pipeline's peak memory is O(capacity), not O(stream).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    metrics: Metrics,
}

#[derive(Debug, Default)]
struct Metrics {
    capacity: u64,
    high_water: AtomicU64,
    blocked_sends: AtomicU64,
    sent: AtomicU64,
}

/// A point-in-time snapshot of one channel's backpressure counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Configured queue bound.
    pub capacity: u64,
    /// Most items ever queued at once (always `<= capacity`).
    pub high_water: u64,
    /// Sends that found the queue full and had to wait (backpressure hits).
    pub blocked_sends: u64,
    /// Total items that passed through.
    pub sent: u64,
}

/// Live handle onto one channel's metrics.
#[derive(Clone)]
pub struct ChannelGauge<T> {
    shared: Arc<Shared<T>>,
}

impl<T> ChannelGauge<T> {
    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            capacity: self.shared.metrics.capacity,
            high_water: self.shared.metrics.high_water.load(Ordering::Relaxed),
            blocked_sends: self.shared.metrics.blocked_sends.load(Ordering::Relaxed),
            sent: self.shared.metrics.sent.load(Ordering::Relaxed),
        }
    }

    /// Items currently queued (racy; for tests that gate on fullness).
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half. Cloneable — crawl workers share one sender per shard.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half (single consumer: one shard worker).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel with `capacity >= 1`.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>, ChannelGauge<T>) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        metrics: Metrics { capacity: capacity as u64, ..Metrics::default() },
    });
    (
        Sender { shared: shared.clone() },
        Receiver { shared: shared.clone() },
        ChannelGauge { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake the receiver so it can observe end-of-stream.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receiver_alive = false;
        // Unblock any parked senders; their sends will fail.
        self.shared.not_full.notify_all();
    }
}

impl<T> Sender<T> {
    /// Enqueue one item, waiting for space when the channel is full.
    /// `Err` returns the item if the receiver is gone.
    pub async fn send(&self, value: T) -> Result<(), T> {
        let capacity = self.shared.metrics.capacity as usize;
        let mut st = self.shared.lock();
        if st.queue.len() >= capacity {
            self.shared.metrics.blocked_sends.fetch_add(1, Ordering::Relaxed);
            while st.queue.len() >= capacity && st.receiver_alive {
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if !st.receiver_alive {
            return Err(value);
        }
        st.queue.push_back(value);
        let depth = st.queue.len() as u64;
        self.shared.metrics.high_water.fetch_max(depth, Ordering::Relaxed);
        self.shared.metrics.sent.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// This channel's gauge.
    pub fn gauge(&self) -> ChannelGauge<T> {
        ChannelGauge { shared: self.shared.clone() }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next item; `None` once every sender has dropped and the
    /// queue is drained (end of stream).
    pub async fn recv(&mut self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(v);
            }
            if st.senders == 0 {
                return None;
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_end_of_stream() {
        tokio::runtime::block_on(async {
            let (tx, mut rx, gauge) = bounded(8);
            for i in 0..5 {
                tx.send(i).await.unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            let snap = gauge.snapshot();
            assert_eq!(snap.sent, 5);
            assert_eq!(snap.high_water, 5);
            assert_eq!(snap.blocked_sends, 0);
        });
    }

    #[test]
    fn capacity_bounds_queue_and_counts_blocked_sends() {
        tokio::runtime::block_on(async {
            let (tx, mut rx, gauge) = bounded(2);
            // Producer on its own task; it must stall after 2 items.
            let producer = tokio::spawn(async move {
                for i in 0..20u64 {
                    tx.send(i).await.unwrap();
                }
            });
            // Consume everything.
            let mut n = 0;
            while rx.recv().await.is_some() {
                n += 1;
            }
            producer.await.unwrap();
            assert_eq!(n, 20);
            let snap = gauge.snapshot();
            assert!(snap.high_water <= 2, "high_water={}", snap.high_water);
            assert!(snap.blocked_sends > 0, "producer never stalled");
        });
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        tokio::runtime::block_on(async {
            let (tx, rx, _) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(7u32).await, Err(7));
        });
    }
}
