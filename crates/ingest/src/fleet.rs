//! Fault-tolerant socket shard fleet: the reducer side that drives remote
//! [`ShardWorker`] processes over TCP, and the worker side that serves
//! range assignments.
//!
//! ```text
//!              ┌───────────── chunk queue (VecDeque) ─────────────┐
//!   reducer ──▶│ [0,a) [a,b) [b,c) …                              │
//!              └──┬─────────────┬──────────────┬──────────────────┘
//!                 ▼             ▼              ▼
//!           worker thread  worker thread  worker thread   (one per --connect)
//!           addr A         addr B         addr C
//!             │ connect-per-request, deadline = socket timeout
//!             │ retry × budget with exponential backoff + jitter
//!             │ budget exhausted → push chunk BACK (re-dispatch),
//!             │                    mark worker dead, thread exits
//!             ▼
//!           (chunk id, origin addr, frames) → sorted merge
//! ```
//!
//! Liveness: a thread holding a chunk either completes it (decrementing
//! the outstanding count) or dies and re-queues it; idle threads poll the
//! queue while any chunk is outstanding. So either every chunk completes,
//! or all threads exit and the chunks left over surface as a typed
//! [`FleetError::Exhausted`] naming every worker failure — the driver can
//! stall only while some worker is inside its bounded retry loop.
//!
//! Double-delivery is impossible by construction downstream: a re-dispatched
//! range that somehow also arrived from the original worker would overlap
//! in `ReduceSession` and be rejected. All activity is exported through
//! the `txstat_fleet_*` telemetry families.
//!
//! [`ShardWorker`]: crate::reduce::ShardWorker

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txstat_telemetry::{registry, static_counter, static_histogram};
use txstat_types::rng::subseed_n;
use txstat_wire::fleet::{
    read_assignment, read_response, write_assignment, write_error, write_frames, Assignment,
    ProtocolError,
};
use txstat_wire::{PayloadFormat, ShardFrame};

/// How the fleet drives its workers: addresses, chunking, deadlines, and
/// retry policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker addresses (`host:port`), one driver thread each.
    pub workers: Vec<String>,
    /// Number of block-range chunks to tile the sweep into. More chunks
    /// than workers keeps the fleet load-balanced and makes re-dispatch
    /// granular.
    pub chunks: usize,
    /// Per-request deadline: connect, write, and read each get this long.
    pub timeout: Duration,
    /// Consecutive failed attempts a worker may burn on one chunk before
    /// the chunk is re-dispatched and the worker is declared dead.
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt (plus
    /// deterministic jitter), capped at [`FleetConfig::BACKOFF_CAP_MS`].
    pub backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl FleetConfig {
    /// Ceiling on a single backoff sleep.
    pub const BACKOFF_CAP_MS: u64 = 2_000;

    pub fn new(workers: Vec<String>) -> Self {
        FleetConfig {
            workers,
            chunks: 0,
            timeout: Duration::from_secs(10),
            retries: 4,
            backoff_ms: 50,
            seed: 0,
        }
    }

    /// Chunk count actually used: the configured one, or 3 chunks per
    /// worker when left at 0.
    fn effective_chunks(&self) -> usize {
        if self.chunks > 0 {
            self.chunks
        } else {
            (self.workers.len() * 3).max(1)
        }
    }
}

/// Fleet-level failures (per-request failures are retried internally and
/// only surface here once every recovery path is spent).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// No worker addresses were given.
    NoWorkers,
    /// Every worker died and `pending` chunks still had no frames. Each
    /// entry of `failures` names a worker address and its final error.
    Exhausted { pending: usize, failures: Vec<String> },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoWorkers => write!(f, "fleet has no worker addresses"),
            FleetError::Exhausted { pending, failures } => {
                write!(f, "fleet exhausted with {pending} range(s) unswept; worker failures: ")?;
                for (i, w) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Eagerly register the `txstat_fleet_*` families (at zero) so they are
/// rendered by `/metrics` before any fleet runs.
pub fn register_metrics() {
    let reg = registry();
    for result in ["ok", "error"] {
        reg.counter_with(
            "txstat_fleet_requests_total",
            "Fleet range requests by outcome",
            &[("result", result)],
        )
        .add(0);
    }
    reg.counter("txstat_fleet_retries_total", "Fleet request attempts after a failure").add(0);
    reg.counter(
        "txstat_fleet_reconnects_total",
        "Fleet connections re-established after at least one failure",
    )
    .add(0);
    reg.counter(
        "txstat_fleet_redispatch_total",
        "Range chunks re-dispatched after a worker exhausted its retry budget",
    )
    .add(0);
    reg.counter("txstat_fleet_workers_failed_total", "Workers declared dead by the reducer").add(0);
    reg.counter("txstat_fleet_served_total", "Assignments served successfully by this worker")
        .add(0);
    reg.histogram_with("txstat_fleet_request_us", "Fleet request latency", &[]);
}

/// Tile block positions `[0, total)` into `chunks` contiguous ranges (the
/// last absorbs the remainder). `total == 0` yields one empty chunk so a
/// degenerate sweep still validates provenance end to end.
pub fn tile(total: u64, chunks: usize) -> Vec<(u64, u64)> {
    let chunks = (chunks.max(1) as u64).min(total.max(1));
    let size = total / chunks;
    let mut out = Vec::with_capacity(chunks as usize);
    for i in 0..chunks {
        let start = i * size;
        let end = if i + 1 == chunks { total } else { start + size };
        out.push((start, end));
    }
    out
}

/// One queued unit of work.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    id: usize,
    start: u64,
    end: u64,
}

struct Shared {
    queue: Mutex<VecDeque<Chunk>>,
    /// Chunks not yet completed (queued OR currently held by a thread).
    outstanding: AtomicUsize,
    results: Mutex<Vec<(usize, String, Vec<ShardFrame>)>>,
    failures: Mutex<Vec<String>>,
}

/// One connect/request/response exchange against `addr` with `timeout`
/// applied to the connect, the write, and the read independently.
pub fn request_frames(
    addr: &str,
    a: &Assignment,
    timeout: Duration,
) -> Result<Vec<ShardFrame>, ProtocolError> {
    let io = |what: &str, e: std::io::Error| ProtocolError::Io(format!("{addr}: {what}: {e}"));
    let sa = addr
        .to_socket_addrs()
        .map_err(|e| io("resolve", e))?
        .next()
        .ok_or_else(|| ProtocolError::Io(format!("{addr}: resolves to no address")))?;
    let mut stream = TcpStream::connect_timeout(&sa, timeout).map_err(|e| io("connect", e))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| io("set read timeout", e))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| io("set write timeout", e))?;
    write_assignment(&mut stream, a)?;
    read_response(&mut stream)
}

/// Deterministic exponential backoff with jitter: `base << attempt`,
/// capped, plus a seed-derived jitter in `[0, base)`.
fn backoff(cfg: &FleetConfig, addr: &str, attempt: u32) -> Duration {
    let base = cfg.backoff_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(16)).min(FleetConfig::BACKOFF_CAP_MS);
    let jitter = subseed_n(cfg.seed, addr, attempt as u64) % base;
    Duration::from_millis(exp + jitter)
}

/// Request `chunk` from `addr`, retrying with backoff up to the budget.
/// Counts every attempt into the `txstat_fleet_*` families.
fn request_with_retry(
    cfg: &FleetConfig,
    addr: &str,
    a: &Assignment,
) -> Result<Vec<ShardFrame>, ProtocolError> {
    let mut last = ProtocolError::Io("no attempt made".to_owned());
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            static_counter!(RETRIES, "txstat_fleet_retries_total", "Fleet request attempts after a failure").inc();
            std::thread::sleep(backoff(cfg, addr, attempt - 1));
        }
        let started = Instant::now();
        match request_frames(addr, a, cfg.timeout) {
            Ok(frames) => {
                static_histogram!(LAT, "txstat_fleet_request_us", "Fleet request latency")
                    .record(started.elapsed());
                static_counter!(
                    OK,
                    "txstat_fleet_requests_total",
                    "Fleet range requests by outcome",
                    "result" => "ok"
                )
                .inc();
                if attempt > 0 {
                    static_counter!(
                        RECONN,
                        "txstat_fleet_reconnects_total",
                        "Fleet connections re-established after at least one failure"
                    )
                    .inc();
                }
                return Ok(frames);
            }
            Err(e) => {
                static_counter!(
                    ERR,
                    "txstat_fleet_requests_total",
                    "Fleet range requests by outcome",
                    "result" => "error"
                )
                .inc();
                last = e;
            }
        }
    }
    Err(last)
}

/// Drive the worker fleet over the block positions `[0, total)` and return
/// every produced frame tagged with the address of the worker that swept
/// it, in ascending chunk order.
///
/// Each worker address gets one driver thread pulling chunks off a shared
/// queue. A worker that exhausts its retry budget on a chunk pushes the
/// chunk back for the survivors (re-dispatch) and is not used again. The
/// call returns [`FleetError::Exhausted`] — naming every worker's final
/// error — if the whole fleet dies with work left.
pub fn reduce_fleet(
    cfg: &FleetConfig,
    total: u64,
    shards: usize,
    payload: PayloadFormat,
    meta: serde::Value,
) -> Result<Vec<(String, ShardFrame)>, FleetError> {
    if cfg.workers.is_empty() {
        return Err(FleetError::NoWorkers);
    }
    let chunks: Vec<Chunk> = tile(total, cfg.effective_chunks())
        .into_iter()
        .enumerate()
        .map(|(id, (start, end))| Chunk { id, start, end })
        .collect();
    let shared = Arc::new(Shared {
        outstanding: AtomicUsize::new(chunks.len()),
        queue: Mutex::new(chunks.into_iter().collect()),
        results: Mutex::new(Vec::new()),
        failures: Mutex::new(Vec::new()),
    });

    let handles: Vec<_> = cfg
        .workers
        .iter()
        .map(|addr| {
            let addr = addr.clone();
            let cfg = cfg.clone();
            let meta = meta.clone();
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                worker_loop(&cfg, &addr, shards, payload, meta, &shared)
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    if shared.outstanding.load(Ordering::SeqCst) > 0 {
        let queue = shared.queue.lock();
        return Err(FleetError::Exhausted {
            pending: queue.len(),
            failures: shared.failures.lock().clone(),
        });
    }
    let mut results = std::mem::take(&mut *shared.results.lock());
    results.sort_by_key(|(id, _, _)| *id);
    Ok(results
        .into_iter()
        .flat_map(|(_, addr, frames)| frames.into_iter().map(move |f| (addr.clone(), f)))
        .collect())
}

fn worker_loop(
    cfg: &FleetConfig,
    addr: &str,
    shards: usize,
    payload: PayloadFormat,
    meta: serde::Value,
    shared: &Shared,
) {
    loop {
        if shared.outstanding.load(Ordering::SeqCst) == 0 {
            return; // all work completed (possibly by other threads)
        }
        let chunk = shared.queue.lock().pop_front();
        let Some(chunk) = chunk else {
            // Nothing queued but some chunk is still held by another
            // thread; it may yet come back for re-dispatch.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let a = Assignment {
            start: chunk.start,
            end: chunk.end,
            shards,
            payload,
            meta: meta.clone(),
        };
        match request_with_retry(cfg, addr, &a) {
            Ok(frames) => {
                shared.results.lock().push((chunk.id, addr.to_owned(), frames));
                shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
            Err(e) => {
                // Budget spent: hand the chunk to the survivors and die.
                static_counter!(
                    REDISPATCH,
                    "txstat_fleet_redispatch_total",
                    "Range chunks re-dispatched after a worker exhausted its retry budget"
                )
                .inc();
                static_counter!(
                    DEAD,
                    "txstat_fleet_workers_failed_total",
                    "Workers declared dead by the reducer"
                )
                .inc();
                shared.queue.lock().push_back(chunk);
                shared.failures.lock().push(format!(
                    "worker {addr} gave up on range [{}, {}): {e}",
                    chunk.start, chunk.end
                ));
                return;
            }
        }
    }
}

/// Worker-side accept loop: serve range assignments sequentially until the
/// listener errors or `max_requests` assignments have been answered
/// successfully (the deterministic way to kill a worker mid-reduction in
/// tests and CI). Returns the number of assignments served.
///
/// Malformed requests get a best-effort error response and do not count;
/// handler failures are shipped back as typed remote errors.
pub fn serve_assignments(
    listener: &TcpListener,
    max_requests: Option<u64>,
    timeout: Duration,
    mut handler: impl FnMut(&Assignment) -> Result<Vec<ShardFrame>, String>,
) -> std::io::Result<u64> {
    let mut served = 0u64;
    while max_requests.is_none_or(|m| served < m) {
        let (mut stream, _) = listener.accept()?;
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let a = match read_assignment(&mut stream) {
            Ok(a) => a,
            Err(e) => {
                let _ = write_error(&mut stream, &e.to_string());
                continue;
            }
        };
        match handler(&a) {
            Ok(frames) => {
                if write_frames(&mut stream, &frames).is_ok() {
                    served += 1;
                    static_counter!(
                        SERVED,
                        "txstat_fleet_served_total",
                        "Assignments served successfully by this worker"
                    )
                    .inc();
                }
            }
            Err(msg) => {
                let _ = write_error(&mut stream, &msg);
            }
        }
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::io::Write;

    fn test_cfg(workers: Vec<String>) -> FleetConfig {
        FleetConfig {
            workers,
            chunks: 6,
            timeout: Duration::from_millis(500),
            retries: 1,
            backoff_ms: 1,
            seed: 42,
        }
    }

    /// A worker that answers every assignment with one synthetic frame
    /// echoing its range, until `max_requests` (None = forever-ish).
    fn spawn_echo_worker(max_requests: Option<u64>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            let _ = serve_assignments(&listener, max_requests, Duration::from_secs(2), |a| {
                Ok(vec![ShardFrame::from_columns(
                    "eos",
                    a.start,
                    a.end,
                    a.end - a.start,
                    a.meta.clone(),
                    vec![],
                )])
            });
        });
        addr
    }

    /// A peer that accepts and writes garbage — every exchange against it
    /// must fail typed, never hang past the deadline.
    fn spawn_garbage_peer() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let _ = s.write_all(b"not the fleet protocol at all");
            }
        });
        addr
    }

    fn assert_covers_all(frames: &[(String, ShardFrame)], total: u64) {
        let mut ranges: Vec<(u64, u64)> =
            frames.iter().map(|(_, f)| (f.header.start, f.header.end)).collect();
        ranges.sort_unstable();
        ranges.dedup();
        let mut cursor = 0;
        for (s, e) in ranges {
            assert_eq!(s, cursor, "gap or overlap at {s}");
            cursor = e;
        }
        assert_eq!(cursor, total, "tail uncovered");
    }

    #[test]
    fn tiling_covers_exactly() {
        assert_eq!(tile(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(tile(2, 5), vec![(0, 1), (1, 2)], "never more chunks than blocks");
        assert_eq!(tile(0, 4), vec![(0, 0)]);
    }

    #[test]
    fn healthy_fleet_covers_every_chunk() {
        let workers = vec![spawn_echo_worker(None), spawn_echo_worker(None)];
        let cfg = test_cfg(workers);
        let frames =
            reduce_fleet(&cfg, 120, 2, PayloadFormat::Bin, json!({"t": 1})).expect("fleet ok");
        assert_eq!(frames.len(), 6, "one frame per chunk");
        assert_covers_all(&frames, 120);
    }

    #[test]
    fn dead_worker_redispatches_to_the_survivor() {
        // One real worker, one address with nothing listening: every chunk
        // the dead address claims comes back and the survivor sweeps it.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr").to_string();
            drop(l); // port is now closed — connects are refused
            addr
        };
        let cfg = test_cfg(vec![spawn_echo_worker(None), dead.clone()]);
        let frames =
            reduce_fleet(&cfg, 90, 1, PayloadFormat::Bin, json!({"t": 2})).expect("fleet ok");
        assert_covers_all(&frames, 90);
        assert!(
            frames.iter().all(|(origin, _)| *origin != dead),
            "no frame can come from the dead address"
        );
    }

    #[test]
    fn worker_killed_mid_run_is_survivable() {
        // The first worker answers exactly one request, then exits — the
        // fleet must still cover everything through the second.
        let cfg = test_cfg(vec![spawn_echo_worker(Some(1)), spawn_echo_worker(None)]);
        let frames =
            reduce_fleet(&cfg, 60, 1, PayloadFormat::Bin, json!({"t": 3})).expect("fleet ok");
        assert_covers_all(&frames, 60);
    }

    #[test]
    fn garbage_peer_is_typed_and_survivable() {
        let cfg = test_cfg(vec![spawn_garbage_peer(), spawn_echo_worker(None)]);
        let frames =
            reduce_fleet(&cfg, 40, 1, PayloadFormat::Bin, json!({"t": 4})).expect("fleet ok");
        assert_covers_all(&frames, 40);
    }

    #[test]
    fn fleet_of_the_dead_exhausts_with_provenance() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr").to_string();
            drop(l);
            addr
        };
        let mut cfg = test_cfg(vec![dead.clone()]);
        cfg.chunks = 2;
        let err = reduce_fleet(&cfg, 40, 1, PayloadFormat::Bin, json!({"t": 5}))
            .expect_err("no healthy worker");
        match err {
            FleetError::Exhausted { pending, failures } => {
                assert_eq!(pending, 2);
                assert!(failures.iter().any(|f| f.contains(&dead)), "{failures:?}");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }
}
