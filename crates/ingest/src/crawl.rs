//! Streaming crawl sources: the §3.1 reverse-chronological block fetchers,
//! emitting into a bounded [`Sink`] instead of materializing `Vec<Block>`.
//!
//! Each source runs `concurrency` fetch workers against the shortlisted
//! endpoint pool, exactly like `txstat_crawler::chains::crawl_*`, but every
//! decoded block is handed straight to the sharded sweep workers. The
//! [`CrawlStats`] accounting (wire bytes, index-keyed compression sampling,
//! per-block transaction counts) is identical to the materializing crawl,
//! so Figure 2 renders bit-for-bit the same numbers from either path.
//!
//! Backpressure: a fetch worker that cannot `send` (all shard channels
//! full) parks before issuing its next RPC, so a slow consumer stalls the
//! crawler — and, transitively, the loopback endpoints — instead of growing
//! a buffer.
//!
//! The XRP source additionally resolves exchange rates *during* the crawl:
//! before a ledger is emitted, every issued currency it references is
//! ensured in the shared [`RateCache`] (one `exchange_rates` query per new
//! token, the paper's Data-API usage). Consumers can therefore value
//! payments at observe time — the final oracle equals the one the
//! materializing pipeline fetches after its crawl.

use crate::shard::Sink;
use crate::source::BlockSource;
use crate::IngestError;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;
use txstat_crawler::{
    fetch_eos_block, fetch_exchange_rate, fetch_tezos_block, fetch_xrp_ledger, ClientConfig,
    CrawlError, CrawlStats, RotatingPool,
};
use txstat_types::time::ChainTime;
use txstat_xrp::amount::{Asset, IssuedCurrency};
use txstat_xrp::rates::RateOracle;
use txstat_xrp::tx::TxPayload;

/// Generic streaming reverse-order fetch: descend from `high` to `low`
/// inclusive with `concurrency` workers, emitting each decoded block into
/// the sink. Returns merged crawl accounting.
async fn stream_range<B, F, Fut>(
    high: u64,
    low: u64,
    concurrency: usize,
    sink: Sink<B>,
    fetch: F,
) -> Result<CrawlStats, IngestError>
where
    B: Send + 'static,
    F: Fn(u64) -> Fut + Send + Sync + Clone + 'static,
    Fut: std::future::Future<Output = Result<(B, Vec<u8>, u64), CrawlError>> + Send,
{
    let started = Instant::now();
    let counter = Arc::new(AtomicI64::new(high as i64));
    let stats = Arc::new(Mutex::new(CrawlStats::default()));
    let mut workers = Vec::new();
    for _ in 0..concurrency.max(1) {
        let counter = counter.clone();
        let stats = stats.clone();
        let fetch = fetch.clone();
        let sink = sink.clone();
        workers.push(tokio::spawn(async move {
            loop {
                let n = counter.fetch_sub(1, Ordering::SeqCst);
                if n < low as i64 {
                    return Ok::<(), IngestError>(());
                }
                let n = n as u64;
                let (block, payload, txs) = fetch(n).await?;
                {
                    let mut s = stats.lock().unwrap_or_else(PoisonError::into_inner);
                    s.record_payload(n, &payload);
                    s.blocks += 1;
                    s.transactions += txs;
                }
                // The send is the backpressure point: full shard channels
                // park this worker before its next fetch.
                sink.send(n, block).await.map_err(|_| IngestError::SinkClosed)?;
            }
        }));
    }
    // The clones above keep the stream open; this drop means the last
    // worker to finish closes it.
    drop(sink);
    for w in workers {
        w.await
            .map_err(|e| IngestError::Crawl(CrawlError::Protocol(format!("worker panicked: {e}"))))??;
    }
    let mut stats = stats.lock().unwrap_or_else(PoisonError::into_inner).clone();
    stats.elapsed = started.elapsed();
    Ok(stats)
}

/// Streaming EOS crawler over `[low, high]`.
pub struct EosCrawlSource {
    pub pool: Arc<RotatingPool>,
    pub cfg: ClientConfig,
    pub low: u64,
    pub high: u64,
    pub concurrency: usize,
}

impl BlockSource for EosCrawlSource {
    type Block = txstat_eos::Block;
    type Stats = CrawlStats;

    async fn produce(self, sink: Sink<txstat_eos::Block>) -> Result<CrawlStats, IngestError> {
        let EosCrawlSource { pool, cfg, low, high, concurrency } = self;
        stream_range(high, low, concurrency, sink, move |n| {
            let pool = pool.clone();
            let cfg = cfg.clone();
            async move {
                let (block, payload) = fetch_eos_block(&pool, &cfg, n).await?;
                let txs = block.transactions.len() as u64;
                Ok((block, payload, txs))
            }
        })
        .await
    }
}

/// Streaming Tezos crawler over `[low, high]`.
pub struct TezosCrawlSource {
    pub pool: Arc<RotatingPool>,
    pub cfg: ClientConfig,
    pub low: u64,
    pub high: u64,
    pub concurrency: usize,
}

impl BlockSource for TezosCrawlSource {
    type Block = txstat_tezos::TezosBlock;
    type Stats = CrawlStats;

    async fn produce(
        self,
        sink: Sink<txstat_tezos::TezosBlock>,
    ) -> Result<CrawlStats, IngestError> {
        let TezosCrawlSource { pool, cfg, low, high, concurrency } = self;
        stream_range(high, low, concurrency, sink, move |n| {
            let pool = pool.clone();
            let cfg = cfg.clone();
            async move {
                let (block, payload) = fetch_tezos_block(&pool, &cfg, n).await?;
                let txs = block.operations.len() as u64;
                Ok((block, payload, txs))
            }
        })
        .await
    }
}

/// Shared issued-currency → rate map, filled lazily during the XRP crawl.
///
/// `ensure` is idempotent: concurrent workers may race on a fresh token,
/// but the endpoint's answer for a `(currency, issuer, date)` triple is
/// deterministic, so duplicate fetches insert the same value.
pub struct RateCache {
    /// `None` means the token was queried and has never traded.
    rates: Mutex<std::collections::HashMap<IssuedCurrency, Option<f64>>>,
    /// The paper's query date (the observation-window end).
    pub date: ChainTime,
}

impl RateCache {
    pub fn new(date: ChainTime) -> Self {
        RateCache { rates: Mutex::new(std::collections::HashMap::new()), date }
    }

    fn lock(
        &self,
    ) -> std::sync::MutexGuard<'_, std::collections::HashMap<IssuedCurrency, Option<f64>>> {
        self.rates.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fetch-and-insert the rate for `ic` if unseen.
    pub async fn ensure(
        &self,
        pool: &Arc<RotatingPool>,
        cfg: &ClientConfig,
        ic: IssuedCurrency,
    ) -> Result<(), CrawlError> {
        if self.lock().contains_key(&ic) {
            return Ok(());
        }
        let rate = fetch_exchange_rate(pool, cfg, ic.currency.as_str(), ic.issuer, self.date).await?;
        self.lock().insert(ic, rate);
        Ok(())
    }

    /// The cached rate: `None` = never queried, `Some(None)` = unrated.
    pub fn lookup(&self, ic: IssuedCurrency) -> Option<Option<f64>> {
        self.lock().get(&ic).copied()
    }

    /// Every token queried so far, sorted (the legacy pipeline's `iou_list`).
    pub fn currencies(&self) -> Vec<IssuedCurrency> {
        let mut out: Vec<IssuedCurrency> = self.lock().keys().copied().collect();
        out.sort();
        out
    }

    /// Build the final oracle from every rated token.
    pub fn oracle(&self) -> RateOracle {
        RateOracle::from_rates(
            self.lock().iter().filter_map(|(ic, r)| r.map(|rate| (*ic, rate))),
        )
    }
}

/// The issued currencies a ledger references, exactly as the materializing
/// pipeline collects them (payment amounts and offer legs).
pub fn ledger_ious(b: &txstat_xrp::LedgerBlock) -> impl Iterator<Item = IssuedCurrency> + '_ {
    b.transactions.iter().flat_map(|tx| {
        let mut out: [Option<IssuedCurrency>; 2] = [None, None];
        match &tx.tx.payload {
            TxPayload::Payment { amount, .. } => {
                if let Asset::Iou(ic) = amount.asset {
                    out[0] = Some(ic);
                }
            }
            TxPayload::OfferCreate { gets, pays } => {
                for (slot, a) in out.iter_mut().zip([gets, pays]) {
                    if let Asset::Iou(ic) = a.asset {
                        *slot = Some(ic);
                    }
                }
            }
            _ => {}
        }
        out.into_iter().flatten()
    })
}

/// Streaming XRP crawler over `[low, high]`, rate-resolving as it goes.
pub struct XrpCrawlSource {
    pub pool: Arc<RotatingPool>,
    pub cfg: ClientConfig,
    pub low: u64,
    pub high: u64,
    pub concurrency: usize,
    pub rates: Arc<RateCache>,
}

impl BlockSource for XrpCrawlSource {
    type Block = txstat_xrp::LedgerBlock;
    type Stats = CrawlStats;

    async fn produce(
        self,
        sink: Sink<txstat_xrp::LedgerBlock>,
    ) -> Result<CrawlStats, IngestError> {
        let XrpCrawlSource { pool, cfg, low, high, concurrency, rates } = self;
        stream_range(high, low, concurrency, sink, move |n| {
            let pool = pool.clone();
            let cfg = cfg.clone();
            let rates = rates.clone();
            async move {
                let (block, payload) = fetch_xrp_ledger(&pool, &cfg, n).await?;
                // Resolve every referenced token before the ledger reaches
                // a consumer, so observe-time valuation never misses.
                for ic in ledger_ious(&block).collect::<std::collections::HashSet<_>>() {
                    rates.ensure(&pool, &cfg, ic).await?;
                }
                let txs = block.transactions.len() as u64;
                Ok((block, payload, txs))
            }
        })
        .await
    }
}
