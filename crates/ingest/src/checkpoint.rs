//! Range-keyed checkpoints of per-shard accumulators — the groundwork for
//! incremental re-sweep.
//!
//! A [`Checkpoint`] freezes the state of a sharded ingestion run: the
//! per-shard accumulators (still unmerged, in shard order), the inclusive
//! block range they observed, and the per-shard observation counts. Because
//! the sweep algebra is a commutative monoid, appending new blocks only
//! requires routing the *tail* (`n > high`) through [`Checkpoint::observe_tail`]
//! — the already-observed prefix is never re-scanned — and
//! [`Checkpoint::merged`] re-merges the shards into a full accumulator in
//! O(shards) instead of O(chain).
//!
//! Checkpoints serialize to a JSON envelope keyed by their range
//! ([`Checkpoint::range_key`]), so a cache of per-range shard states can be
//! persisted between runs and looked up by block range. The serialized
//! form is versioned ([`CHECKPOINT_SCHEMA_VERSION`]) and carries a content
//! hash over its payload; [`Checkpoint::from_json`] rejects version skew
//! and corruption with typed errors instead of deserializing stale state
//! silently.
//!
//! Schema v3 moves the shard *content* to the binary column path: each
//! shard state is its `WireState::to_wire_bytes` column sections,
//! hex-embedded in the JSON envelope — decoding a month-scale checkpoint
//! is column reads, not a JSON value-tree walk, and the shard payload is
//! byte-identical to what the same accumulator ships in a v2 wire frame.
//!
//! Schema v4 adds per-range content marks ([`RangeMark`]): after each
//! observed batch the follower seals a mark recording the batch's high
//! block, block count, and a chained content hash over the blocks it
//! covered. A later pass over the (possibly reorged) chain can then find
//! the exact mark where history diverged — a mismatched mark invalidates
//! only the checkpoint's suffix, not the whole sweep.

use crate::shard::IngestOutcome;
use crate::IngestError;
use serde_json::{json, Value};
use txstat_core::WireState;
use txstat_types::colcodec;
use txstat_types::ids::fnv1a64;

/// Schema version of the serialized checkpoint layout. v1 had no version
/// discipline beyond a constant; v2 added the content hash and canonical
/// JSON shard trees; v3 switched shard content to hex-embedded binary
/// column sections; v4 adds the per-range content marks. Anything else is
/// rejected.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 4;

/// One sealed observation range: the batch's high block number, how many
/// blocks it covered, and a chained content hash over those blocks. Marks
/// accumulate in observation order, so comparing them against a chain's
/// current content locates the first reorged range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeMark {
    /// Highest block number observed when the mark was sealed.
    pub high: u64,
    /// Blocks covered by this mark (since the previous mark).
    pub blocks: u64,
    /// Content hash over the covered blocks, in observation order.
    pub hash: u64,
}

/// Frozen sharded sweep state over the inclusive block range `[low, high]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<A> {
    /// Per-shard accumulators, in shard-index order. Block `n` lives in
    /// shard `n % shards.len()`.
    pub shards: Vec<A>,
    /// Per-shard observed-block counts (same order).
    pub counts: Vec<u64>,
    /// Inclusive observed block range.
    pub low: u64,
    pub high: u64,
    /// Sealed per-range content marks, in observation order (empty unless
    /// the owner seals them — see [`Checkpoint::seal_mark`]).
    pub marks: Vec<RangeMark>,
}

impl<A> Checkpoint<A> {
    /// An empty checkpoint poised to observe from block `low` upward: no
    /// marks, zero counts, `high` one below `low` so the first tail block
    /// at `low` clears the high-water check.
    pub fn new(shards: Vec<A>, low: u64) -> Self {
        let counts = vec![0u64; shards.len()];
        Checkpoint { shards, counts, low, high: low.saturating_sub(1), marks: Vec::new() }
    }

    /// Freeze an ingestion outcome over the range it streamed.
    pub fn from_outcome(outcome: IngestOutcome<A>, low: u64, high: u64) -> Self {
        Checkpoint {
            counts: outcome.observed.clone(),
            shards: outcome.shards,
            low,
            high,
            marks: Vec::new(),
        }
    }

    /// Seal everything observed since the last mark under `hash` (the
    /// caller computes it over the covered blocks' content). No-op when
    /// nothing new was observed — empty marks would be indistinguishable
    /// from each other during divergence search.
    pub fn seal_mark(&mut self, hash: u64) {
        let marked: u64 = self.marks.iter().map(|m| m.blocks).sum();
        let blocks = self.observed() - marked;
        if blocks == 0 {
            return;
        }
        self.marks.push(RangeMark { high: self.high, blocks, hash });
    }

    /// The cache key: range plus shard layout (a checkpoint with a
    /// different shard count routes blocks differently and cannot be
    /// extended in place).
    pub fn range_key(&self) -> String {
        format!("{}..={}/{}", self.low, self.high, self.shards.len())
    }

    /// Total blocks observed.
    pub fn observed(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold an appended tail of blocks into the existing shard
    /// accumulators, extending the range. The tail may arrive in any order
    /// (crawl sources emit reverse-chronologically) as long as every block
    /// is strictly above the high-water mark the checkpoint had when the
    /// call started and appears at most once — anything already covered, or
    /// repeated within the tail, would double-count and is rejected. On
    /// `Err` the checkpoint has absorbed an unspecified prefix of the tail
    /// and must be discarded.
    pub fn observe_tail<B>(
        &mut self,
        tail: impl IntoIterator<Item = (u64, B)>,
        observe: impl Fn(&mut A, u64, &B),
    ) -> Result<u64, IngestError> {
        let shards = self.shards.len() as u64;
        let floor = self.high;
        let mut seen = std::collections::HashSet::new();
        let mut appended = 0u64;
        for (n, block) in tail {
            if n <= floor || !seen.insert(n) {
                return Err(IngestError::RangeRegression { n, high: floor });
            }
            let shard = (n % shards) as usize;
            observe(&mut self.shards[shard], n, &block);
            self.counts[shard] += 1;
            self.high = self.high.max(n);
            appended += 1;
        }
        Ok(appended)
    }

    /// Merge the shard accumulators (cloned, so the checkpoint stays
    /// extendable) in shard-index order.
    pub fn merged(&self, mut merge: impl FnMut(&mut A, A)) -> A
    where
        A: Clone,
    {
        let mut it = self.shards.iter().cloned();
        let mut acc = it.next().expect("at least one shard");
        for other in it {
            merge(&mut acc, other);
        }
        acc
    }
}

/// The content hash over the payload fields, computed incrementally in a
/// fixed field order (no composite value is materialized: the shard state
/// tree can be month-scale).
fn payload_hash(low: u64, high: u64, counts: &Value, shards: &Value, marks: &Value) -> u64 {
    use txstat_types::ids::fnv1a64_extend;
    let mut h = fnv1a64(&low.to_le_bytes());
    h = fnv1a64_extend(h, &high.to_le_bytes());
    let text = |v: &Value| serde_json::to_string(v).expect("payload field serializes");
    h = fnv1a64_extend(h, text(counts).as_bytes());
    h = fnv1a64_extend(h, text(shards).as_bytes());
    fnv1a64_extend(h, text(marks).as_bytes())
}

fn marks_to_value(marks: &[RangeMark]) -> Value {
    Value::Array(
        marks
            .iter()
            .map(|m| json!([m.high, m.blocks, m.hash]))
            .collect(),
    )
}

fn marks_from_value(v: &Value) -> Result<Vec<RangeMark>, IngestError> {
    let bad = |m: &str| IngestError::Checkpoint(m.to_owned());
    v.as_array()
        .ok_or_else(|| bad("marks must be an array"))?
        .iter()
        .map(|m| {
            let triple = m.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                bad("each mark must be a [high, blocks, hash] triple")
            })?;
            let u = |i: usize| triple[i].as_u64().ok_or_else(|| bad("non-integer mark field"));
            Ok(RangeMark { high: u(0)?, blocks: u(1)?, hash: u(2)? })
        })
        .collect()
}

impl<A: WireState> Checkpoint<A> {
    /// Serialize to a self-describing JSON envelope: schema version,
    /// content hash over the payload fields, then the payload — shard
    /// states as hex-embedded binary column sections.
    pub fn to_json(&self) -> Value {
        let counts = serde::Serialize::serialize(&self.counts);
        let shards = Value::Array(
            self.shards
                .iter()
                .map(|s| Value::String(colcodec::to_hex(&s.to_wire_bytes())))
                .collect(),
        );
        let marks = marks_to_value(&self.marks);
        json!({
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "content_hash": payload_hash(self.low, self.high, &counts, &shards, &marks),
            "low": self.low,
            "high": self.high,
            "counts": counts,
            "shards": shards,
            "marks": marks,
        })
    }

    /// Parse a serialized checkpoint, validating schema version, content
    /// hash, and the layout invariants. v1 (`"version"`-keyed) and v2
    /// (JSON shard trees) checkpoints are typed rejections, not silent
    /// misreads.
    pub fn from_json(v: &Value) -> Result<Self, IngestError> {
        let bad = |m: &str| IngestError::Checkpoint(m.to_owned());
        let found = v.get("schema_version").and_then(Value::as_u64);
        if found != Some(CHECKPOINT_SCHEMA_VERSION) {
            // Pre-versioning checkpoints carried "version" instead.
            let found = found.or_else(|| v.get("version").and_then(Value::as_u64));
            return Err(IngestError::CheckpointSchema {
                found,
                expected: CHECKPOINT_SCHEMA_VERSION,
            });
        }
        let recorded = v
            .get("content_hash")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("missing content_hash"))?;
        let low = v.get("low").and_then(Value::as_u64).ok_or_else(|| bad("missing low"))?;
        let high = v.get("high").and_then(Value::as_u64).ok_or_else(|| bad("missing high"))?;
        let raw_counts = v.get("counts").ok_or_else(|| bad("missing counts"))?;
        let raw_shards = v.get("shards").ok_or_else(|| bad("missing shards"))?;
        let raw_marks = v.get("marks").ok_or_else(|| bad("missing marks"))?;
        // Verify the payload hash before interpreting any shard state.
        let computed = payload_hash(low, high, raw_counts, raw_shards, raw_marks);
        if computed != recorded {
            return Err(IngestError::CheckpointCorrupt { expected: recorded, found: computed });
        }
        let counts: Vec<u64> = raw_counts
            .as_array()
            .ok_or_else(|| bad("counts must be an array"))?
            .iter()
            .map(|c| c.as_u64().ok_or_else(|| bad("non-integer count")))
            .collect::<Result<_, _>>()?;
        let shards: Vec<A> = raw_shards
            .as_array()
            .ok_or_else(|| bad("shards must be an array"))?
            .iter()
            .map(|s| {
                let hex = s.as_str().ok_or_else(|| bad("shard state must be a hex string"))?;
                let bytes = colcodec::from_hex(hex)
                    .map_err(|e| bad(&format!("bad shard state hex: {e}")))?;
                A::from_wire_bytes(&bytes).map_err(|e| bad(&format!("bad shard state: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if shards.is_empty() || shards.len() != counts.len() {
            return Err(bad("shard/count arity mismatch"));
        }
        let marks = marks_from_value(raw_marks)?;
        Ok(Checkpoint { shards, counts, low, high, marks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txstat_types::colcodec::{ColError, ColReader, ColWriter};

    /// A miniature mergeable accumulator with the same shape as the chain
    /// sweeps: counters plus a bucketed series.
    #[derive(Debug, Clone, PartialEq)]
    struct MiniAcc {
        blocks: u64,
        weight: u64,
        buckets: Vec<u64>,
    }

    impl WireState for MiniAcc {
        fn encode_columns(&self, w: &mut ColWriter) {
            w.u64(self.blocks);
            w.u64(self.weight);
            w.u64(self.buckets.len() as u64);
            for b in &self.buckets {
                w.u64(*b);
            }
        }

        fn decode_columns(r: &mut ColReader<'_>) -> Result<Self, ColError> {
            let blocks = r.u64()?;
            let weight = r.u64()?;
            let n = r.len(1)?;
            let mut buckets = Vec::with_capacity(n);
            for _ in 0..n {
                buckets.push(r.u64()?);
            }
            Ok(MiniAcc { blocks, weight, buckets })
        }
    }

    impl MiniAcc {
        fn identity() -> Self {
            MiniAcc { blocks: 0, weight: 0, buckets: vec![0; 4] }
        }

        fn observe(&mut self, n: u64, w: &u64) {
            self.blocks += 1;
            self.weight += *w;
            self.buckets[(n % 4) as usize] += *w;
        }

        fn merge(&mut self, other: MiniAcc) {
            self.blocks += other.blocks;
            self.weight += other.weight;
            for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
                *a += b;
            }
        }
    }

    /// Build a checkpoint by folding `range` (1-based, like block numbers)
    /// through `observe_tail` from an empty shard layout.
    fn fold_range(range: std::ops::RangeInclusive<u64>, shards: usize) -> Checkpoint<MiniAcc> {
        let low = *range.start();
        assert!(low >= 1, "test helper uses low-1 as the empty high-water mark");
        let mut cp = Checkpoint::new(vec![MiniAcc::identity(); shards], low);
        cp.observe_tail(range.map(|n| (n, n * 7 % 13)), |a, n, w| a.observe(n, w))
            .expect("ascending tail");
        cp
    }

    #[test]
    fn serialization_round_trips() {
        let mut cp = fold_range(10..=99, 3);
        cp.seal_mark(0xfeed);
        let v = cp.to_json();
        let back: Checkpoint<MiniAcc> = Checkpoint::from_json(&v).expect("valid checkpoint");
        assert_eq!(back, cp);
        assert_eq!(back.range_key(), "10..=99/3");
        assert_eq!(back.observed(), 90);
        assert_eq!(back.marks, vec![RangeMark { high: 99, blocks: 90, hash: 0xfeed }]);
    }

    #[test]
    fn marks_seal_incrementally_and_skip_empty_ranges() {
        let mut cp = fold_range(1..=10, 2);
        cp.seal_mark(111);
        // Nothing new observed: sealing again must not create an empty mark.
        cp.seal_mark(222);
        cp.observe_tail((11..=25).map(|n| (n, n)), |a, n, w| a.observe(n, w))
            .expect("tail extends");
        cp.seal_mark(333);
        assert_eq!(
            cp.marks,
            vec![
                RangeMark { high: 10, blocks: 10, hash: 111 },
                RangeMark { high: 25, blocks: 15, hash: 333 },
            ]
        );
    }

    #[test]
    fn tail_extension_equals_full_fold() {
        // Checkpoint the prefix, extend with the tail: must equal folding
        // the whole range in one go.
        let mut prefix = fold_range(1..=49, 4);
        prefix
            .observe_tail((50..=80).map(|n| (n, n * 7 % 13)), |a, n, w| a.observe(n, w))
            .expect("tail extends");
        let whole = fold_range(1..=80, 4);
        assert_eq!(prefix, whole);
        assert_eq!(
            prefix.merged(MiniAcc::merge),
            whole.merged(MiniAcc::merge)
        );
    }

    #[test]
    fn tail_order_does_not_matter() {
        // Crawl sources emit reverse-chronologically; a descending tail
        // must be accepted (everything is above the entry high-water mark)
        // and fold to the same state as an ascending one.
        let mut desc = fold_range(1..=49, 4);
        desc.observe_tail((50..=80).rev().map(|n| (n, n * 7 % 13)), |a, n, w| a.observe(n, w))
            .expect("descending tail is still strictly above the old high");
        let whole = fold_range(1..=80, 4);
        assert_eq!(desc, whole);
    }

    #[test]
    fn rejects_reobserving_the_prefix() {
        let mut cp = fold_range(1..=9, 2);
        let err = cp.observe_tail([(5u64, 1u64)], |a, n, w| a.observe(n, w));
        assert!(err.is_err(), "block 5 is already inside the range");
    }

    #[test]
    fn rejects_duplicates_within_one_tail() {
        let mut cp = fold_range(1..=9, 2);
        let err = cp.observe_tail([(10u64, 1u64), (10u64, 2u64)], |a, n, w| a.observe(n, w));
        assert!(err.is_err(), "block 10 appears twice in the same tail");
    }

    /// A shard accumulator in the columnar style: a per-shard interner
    /// plus id-indexed counts. Checkpointing such a shard must round-trip
    /// the interner state (key set AND id assignment), since the counts
    /// are meaningless under any other id mapping.
    #[derive(Debug, Clone)]
    struct InternedAcc {
        names: txstat_types::Interner<u64>,
        counts: Vec<u64>,
    }

    impl WireState for InternedAcc {
        fn encode_columns(&self, w: &mut ColWriter) {
            self.names.encode_columns(w);
            w.u64(self.counts.len() as u64);
            for c in &self.counts {
                w.u64(*c);
            }
        }

        fn decode_columns(r: &mut ColReader<'_>) -> Result<Self, ColError> {
            let names = txstat_types::Interner::decode_columns(r)?;
            let n = r.len(1)?;
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(r.u64()?);
            }
            Ok(InternedAcc { names, counts })
        }
    }

    impl InternedAcc {
        fn identity() -> Self {
            InternedAcc { names: txstat_types::Interner::new(), counts: Vec::new() }
        }

        fn observe(&mut self, key: &u64) {
            let id = self.names.intern(*key) as usize;
            if id >= self.counts.len() {
                self.counts.resize(id + 1, 0);
            }
            self.counts[id] += 1;
        }
    }

    #[test]
    fn checkpoint_serializes_interner_state() {
        let mut cp = Checkpoint::new(vec![InternedAcc::identity(); 3], 1);
        // Keys collide across shards on purpose: each shard's interner
        // assigns its own ids.
        cp.observe_tail((1u64..=60).map(|n| (n, n % 7)), |a, _n, k| a.observe(k))
            .expect("ascending tail");
        let v = cp.to_json();
        let back: Checkpoint<InternedAcc> = Checkpoint::from_json(&v).expect("valid checkpoint");
        assert_eq!(back.observed(), 60);
        for (b, orig) in back.shards.iter().zip(&cp.shards) {
            assert_eq!(b.names.keys(), orig.names.keys(), "id assignment preserved");
            assert_eq!(b.counts, orig.counts);
        }
        // The restored checkpoint keeps extending: tail observation equals
        // having folded the whole range into the original.
        let mut restored = back;
        restored
            .observe_tail((61u64..=80).map(|n| (n, n % 7)), |a, _n, k| a.observe(k))
            .expect("tail extends");
        let mut whole = cp.clone();
        whole
            .observe_tail((61u64..=80).map(|n| (n, n % 7)), |a, _n, k| a.observe(k))
            .expect("tail extends");
        for (r, w) in restored.shards.iter().zip(&whole.shards) {
            assert_eq!(r.names.keys(), w.names.keys());
            assert_eq!(r.counts, w.counts);
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        // Arity mismatch, with a valid envelope around it.
        let mut cp = fold_range(1..=9, 2);
        cp.counts.push(7);
        let v = cp.to_json();
        assert!(matches!(
            Checkpoint::<MiniAcc>::from_json(&v),
            Err(IngestError::Checkpoint(_))
        ));
        let v = json!({"schema_version": CHECKPOINT_SCHEMA_VERSION});
        assert!(Checkpoint::<MiniAcc>::from_json(&v).is_err());
    }

    #[test]
    fn stale_schema_version_is_a_typed_rejection() {
        // A v1-era checkpoint (the old "version" field) no longer
        // deserializes silently.
        let v = json!({"version": 1, "low": 1, "high": 3, "counts": [3], "shards": [
            {"blocks": 3, "weight": 0, "buckets": [0, 0, 0, 0]}
        ]});
        assert!(matches!(
            Checkpoint::<MiniAcc>::from_json(&v),
            Err(IngestError::CheckpointSchema { found: Some(1), expected: CHECKPOINT_SCHEMA_VERSION })
        ));
        // A v2-era checkpoint (canonical-JSON shard trees) is a typed
        // rejection too — its shard content is unreadable to the
        // binary-column path.
        let v = json!({"schema_version": 2, "content_hash": 0, "low": 1, "high": 3,
            "counts": [3], "shards": [{"blocks": 3, "weight": 0, "buckets": [0, 0, 0, 0]}]});
        assert!(matches!(
            Checkpoint::<MiniAcc>::from_json(&v),
            Err(IngestError::CheckpointSchema { found: Some(2), .. })
        ));
        // A v3-era checkpoint (binary shards but no range marks) is schema
        // skew as well: v4's content hash covers the mark list.
        let v = json!({"schema_version": 3, "content_hash": 0, "low": 1, "high": 3,
            "counts": [3], "shards": ["00"]});
        assert!(matches!(
            Checkpoint::<MiniAcc>::from_json(&v),
            Err(IngestError::CheckpointSchema { found: Some(3), .. })
        ));
        // A future schema is rejected the same way.
        let mut v = fold_range(1..=9, 2).to_json();
        if let Value::Object(m) = &mut v {
            m.insert("schema_version".into(), json!(99));
        }
        assert!(matches!(
            Checkpoint::<MiniAcc>::from_json(&v),
            Err(IngestError::CheckpointSchema { found: Some(99), .. })
        ));
    }

    #[test]
    fn corrupted_payload_is_a_typed_rejection() {
        let mut v = fold_range(1..=9, 2).to_json();
        if let Value::Object(m) = &mut v {
            // Tamper with a payload field the hash covers.
            m.insert("high".into(), json!(10_000));
        }
        assert!(matches!(
            Checkpoint::<MiniAcc>::from_json(&v),
            Err(IngestError::CheckpointCorrupt { .. })
        ));
    }
}
