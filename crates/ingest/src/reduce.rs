//! Distributed reduction: shard workers fold disjoint block ranges into
//! columnar accumulators and ship them as `txstat_wire` frames; a central
//! [`ReduceSession`] validates, remap-merges, and finalizes them into the
//! same [`ChainSweeps`] the in-process paths produce.
//!
//! ```text
//!   process 1: ShardWorker [0, a)   ──▶ frames ──┐
//!   process 2: ShardWorker [a, b)   ──▶ frames ──┼─▶ ReduceSession::submit
//!   process 3: ShardWorker [b, end) ──▶ frames ──┘      │ validate: schema
//!                                                       │ version, chain tag,
//!                                                       │ window, overlap, meta
//!                                                       ▼
//!                                    finalize(): merge in range order
//!                                    (Interner::absorb remap merges),
//!                                    resolve ids ──▶ ChainSweeps
//! ```
//!
//! Because every chain sweep is a commutative monoid and finalization
//! resolves interned ids by key (never by id order), the reduced report is
//! **bit-identical** to a single-process sweep over the whole range — the
//! property `tests/wire_reduce.rs` pins end to end across OS processes.
//!
//! The session is strict on anything that would silently corrupt a
//! reduction: unknown chain tags, schema-version skew, overlapping block
//! ranges, frames from different scenarios (`meta` mismatch), and
//! mismatched observation windows are all typed [`ReduceError`]s. Coverage
//! *gaps* are tracked per chain and surfaced at [`ReduceSession::finalize`].

use serde::{Deserialize, Serialize, Value};
use std::io::Write;
use txstat_core::{ChainSweeps, EosColumnar, TezosColumnar, WireState, XrpColumnar};
use txstat_telemetry::{static_counter, Span};
use txstat_tezos::governance::PeriodKind;
use txstat_types::time::Period;
use txstat_wire::{PayloadFormat, ShardFrame, WireError, SCHEMA_V1, SCHEMA_VERSION};
use txstat_xrp::rates::RateOracle;

/// The chain tags a session accepts, in reduction order.
pub const CHAINS: [&str; 3] = ["eos", "tezos", "xrp"];

/// Failures of the distributed-reduction contract.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceError {
    /// The frame's schema version is not the one this reducer speaks.
    Version { chain: String, found: u32, expected: u32 },
    /// The frame's chain tag names no known accumulator.
    UnknownChain(String),
    /// The frame's block range is inverted.
    BadRange { chain: String, start: u64, end: u64 },
    /// The frame's block range overlaps one already reduced — accepting it
    /// would double-count.
    Overlap { chain: String, start: u64, end: u64, other_start: u64, other_end: u64 },
    /// The frame's provenance differs from the session's (different
    /// scenario, seed, or source).
    MetaMismatch { expected: Value, found: Value },
    /// The frame's accumulator observes a different window (or, for Tezos,
    /// different governance periods) than the session's.
    WindowMismatch { chain: String },
    /// The payload could not be decoded into the chain's accumulator.
    Payload { chain: String, error: String },
    /// The envelope itself was bad (surfaced when reading frame files).
    Wire(WireError),
    /// Finalize needs at least one frame for every chain.
    MissingChain(&'static str),
    /// The submitted ranges leave holes; reducing them would silently
    /// under-count. Each entry is one uncovered `[start, end)` hole.
    CoverageGap { chain: &'static str, gaps: Vec<(u64, u64)> },
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::Version { chain, found, expected } => {
                write!(f, "{chain}: frame schema version {found}, reducer speaks {expected}")
            }
            ReduceError::UnknownChain(c) => write!(f, "unknown chain tag {c:?}"),
            ReduceError::BadRange { chain, start, end } => {
                write!(f, "{chain}: inverted block range [{start}, {end})")
            }
            ReduceError::Overlap { chain, start, end, other_start, other_end } => write!(
                f,
                "{chain}: range [{start}, {end}) overlaps already-reduced [{other_start}, {other_end})"
            ),
            ReduceError::MetaMismatch { expected, found } => write!(
                f,
                "frame provenance mismatch: session reduces {expected:?}, frame carries {found:?}"
            ),
            ReduceError::WindowMismatch { chain } => {
                write!(f, "{chain}: frame observes a different window than the session")
            }
            ReduceError::Payload { chain, error } => write!(f, "{chain}: bad payload: {error}"),
            ReduceError::Wire(e) => write!(f, "wire: {e}"),
            ReduceError::MissingChain(c) => write!(f, "no frame submitted for chain {c}"),
            ReduceError::CoverageGap { chain, gaps } => {
                write!(f, "{chain}: uncovered block ranges {gaps:?}")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

impl From<WireError> for ReduceError {
    fn from(e: WireError) -> Self {
        ReduceError::Wire(e)
    }
}

/// One accepted shard: its block range and decoded accumulator.
struct Pending<A> {
    start: u64,
    end: u64,
    acc: A,
}

/// Merge `pending` in ascending range order — the distributed analogue of
/// "merge shards in index order", so event-list state (e.g. governance
/// events) concatenates exactly like an in-process chunked sweep.
fn merge_pending<A>(mut pending: Vec<Pending<A>>, merge: impl Fn(&mut A, A)) -> A {
    pending.sort_by_key(|p| (p.start, p.end));
    let mut it = pending.into_iter();
    let mut acc = it.next().expect("caller checks non-empty").acc;
    for p in it {
        merge(&mut acc, p.acc);
    }
    acc
}

/// Interval bookkeeping over accepted `[start, end)` ranges of one chain.
#[derive(Default)]
struct Coverage {
    /// Non-empty accepted ranges, unordered.
    ranges: Vec<(u64, u64)>,
    /// Blocks the frames claim to have observed.
    observed: u64,
}

impl Coverage {
    fn check_overlap(&self, chain: &str, start: u64, end: u64) -> Result<(), ReduceError> {
        for &(s, e) in &self.ranges {
            if start < e && s < end {
                return Err(ReduceError::Overlap {
                    chain: chain.to_owned(),
                    start,
                    end,
                    other_start: s,
                    other_end: e,
                });
            }
        }
        Ok(())
    }

    fn accept(&mut self, start: u64, end: u64, observed: u64) {
        if end > start {
            self.ranges.push((start, end));
        }
        self.observed += observed;
    }

    /// The holes strictly inside the union's span, in ascending order.
    fn gaps(&self) -> Vec<(u64, u64)> {
        let mut sorted = self.ranges.clone();
        sorted.sort_unstable();
        sorted
            .windows(2)
            .filter(|w| w[0].1 < w[1].0)
            .map(|w| (w[0].1, w[1].0))
            .collect()
    }

    /// The covered span `[min start, max end)`, if any range was accepted.
    fn span(&self) -> Option<(u64, u64)> {
        let lo = self.ranges.iter().map(|r| r.0).min()?;
        let hi = self.ranges.iter().map(|r| r.1).max()?;
        Some((lo, hi))
    }
}

/// Decode one frame's payload into its accumulator, honouring the
/// header's format tag: JSON payloads (all v1 frames, and v2 frames from
/// `--payload json` workers) go through the canonical-JSON serde path,
/// binary payloads through the `WireState` column decoder. Either way the
/// accumulator runs the same id-bounds/arity validation.
fn decode_payload<A: WireState + Deserialize>(frame: &ShardFrame) -> Result<A, ReduceError> {
    let _span = Span::enter("reduce_decode", &frame.header.chain);
    static_counter!(BYTES, "txstat_wire_payload_bytes_total", "Wire payload bytes decoded")
        .add(frame.payload.len() as u64);
    let payload_err = |error: String| ReduceError::Payload {
        chain: frame.header.chain.clone(),
        error,
    };
    match frame.header.payload_format {
        PayloadFormat::Json => {
            static_counter!(
                V1,
                "txstat_wire_frames_decoded_total",
                "Wire frames decoded by payload format",
                "format" => "v1_json"
            )
            .inc();
            let state = frame.state()?;
            A::deserialize(&state).map_err(|e| payload_err(e.to_string()))
        }
        PayloadFormat::Bin => {
            static_counter!(
                V2,
                "txstat_wire_frames_decoded_total",
                "Wire frames decoded by payload format",
                "format" => "v2_bin"
            )
            .inc();
            A::from_wire_bytes(&frame.payload).map_err(|e| payload_err(e.to_string()))
        }
    }
}

/// A distributed reduction in progress: frames go in, one validated
/// [`ChainSweeps`] comes out.
///
/// The first accepted frame pins the session's provenance (`meta`) and,
/// per chain, the observation window; everything later must match.
#[derive(Default)]
pub struct ReduceSession {
    meta: Option<Value>,
    eos: Vec<Pending<EosColumnar>>,
    tezos: Vec<Pending<TezosColumnar>>,
    xrp: Vec<Pending<XrpColumnar>>,
    coverage: [Coverage; 3],
}

impl ReduceSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Validate one frame and stage its accumulator for the final merge.
    /// On `Err` the session is unchanged and stays usable.
    pub fn submit(&mut self, frame: &ShardFrame) -> Result<(), ReduceError> {
        let _span = Span::enter("reduce_submit", &frame.header.chain);
        static_counter!(FRAMES, "txstat_reduce_frames_submitted_total", "Frames submitted to reduce sessions").inc();
        let h = &frame.header;
        let chain_idx = CHAINS
            .iter()
            .position(|c| *c == h.chain)
            .ok_or_else(|| ReduceError::UnknownChain(h.chain.clone()))?;
        // Cross-version reduction: v1 (JSON) and v2 (tagged) frames mix
        // freely in one session — a fleet mid-rollout reduces fine.
        if h.schema_version != SCHEMA_V1 && h.schema_version != SCHEMA_VERSION {
            return Err(ReduceError::Version {
                chain: h.chain.clone(),
                found: h.schema_version,
                expected: SCHEMA_VERSION,
            });
        }
        if h.start > h.end {
            return Err(ReduceError::BadRange { chain: h.chain.clone(), start: h.start, end: h.end });
        }
        if let Some(meta) = &self.meta {
            if *meta != h.meta {
                return Err(ReduceError::MetaMismatch {
                    expected: meta.clone(),
                    found: h.meta.clone(),
                });
            }
        }
        self.coverage[chain_idx].check_overlap(&h.chain, h.start, h.end)?;
        if h.start == h.end {
            // An empty range (a worker clamped entirely past this chain's
            // head) carries the identity accumulator by construction, and
            // empty ranges are invisible to the overlap/coverage checks —
            // staging such a payload would let forged non-identity state
            // double-count silently. Validate provenance, merge nothing.
            if self.meta.is_none() {
                self.meta = Some(h.meta.clone());
            }
            return Ok(());
        }

        let window_err = || ReduceError::WindowMismatch { chain: h.chain.clone() };
        match h.chain.as_str() {
            "eos" => {
                let acc: EosColumnar = decode_payload(frame)?;
                if self.eos.first().is_some_and(|p| p.acc.period() != acc.period()) {
                    return Err(window_err());
                }
                self.eos.push(Pending { start: h.start, end: h.end, acc });
            }
            "tezos" => {
                let acc: TezosColumnar = decode_payload(frame)?;
                if self.tezos.first().is_some_and(|p| {
                    p.acc.period() != acc.period()
                        || p.acc.governance_windows() != acc.governance_windows()
                }) {
                    return Err(window_err());
                }
                self.tezos.push(Pending { start: h.start, end: h.end, acc });
            }
            "xrp" => {
                let acc: XrpColumnar = decode_payload(frame)?;
                if self.xrp.first().is_some_and(|p| p.acc.period() != acc.period()) {
                    return Err(window_err());
                }
                self.xrp.push(Pending { start: h.start, end: h.end, acc });
            }
            _ => unreachable!("chain tag checked above"),
        }
        self.coverage[chain_idx].accept(h.start, h.end, h.blocks);
        if self.meta.is_none() {
            self.meta = Some(h.meta.clone());
        }
        Ok(())
    }

    /// The provenance pinned by the first accepted frame.
    pub fn meta(&self) -> Option<&Value> {
        self.meta.as_ref()
    }

    /// Blocks the accepted frames of `chain` claim to have observed.
    pub fn observed(&self, chain: &str) -> u64 {
        CHAINS
            .iter()
            .position(|c| *c == chain)
            .map_or(0, |i| self.coverage[i].observed)
    }

    /// The covered `[start, end)` span of `chain`, if any frame arrived.
    pub fn span(&self, chain: &str) -> Option<(u64, u64)> {
        CHAINS.iter().position(|c| *c == chain).and_then(|i| self.coverage[i].span())
    }

    /// The uncovered holes inside `chain`'s span, ascending. Empty means
    /// contiguous coverage.
    pub fn gaps(&self, chain: &str) -> Vec<(u64, u64)> {
        CHAINS
            .iter()
            .position(|c| *c == chain)
            .map_or_else(Vec::new, |i| self.coverage[i].gaps())
    }

    /// Merge everything and resolve into the scalar sweeps. Requires at
    /// least one frame per chain and gap-free coverage; merges run in
    /// ascending range order, so the result is bit-identical to a
    /// single-process sweep over the union of the ranges.
    pub fn finalize(self) -> Result<ChainSweeps, ReduceError> {
        let _span = Span::enter("reduce_finalize", "");
        static_counter!(MERGES, "txstat_reduce_merges_total", "Reduce sessions finalized").inc();
        for (i, chain) in CHAINS.iter().enumerate() {
            let gaps = self.coverage[i].gaps();
            if !gaps.is_empty() {
                return Err(ReduceError::CoverageGap { chain: CHAINS[i], gaps });
            }
            let present = match i {
                0 => !self.eos.is_empty(),
                1 => !self.tezos.is_empty(),
                _ => !self.xrp.is_empty(),
            };
            if !present {
                return Err(ReduceError::MissingChain(chain));
            }
        }
        Ok(ChainSweeps {
            eos: merge_pending(self.eos, |a, b| a.merge(b)).finalize(),
            tezos: merge_pending(self.tezos, |a, b| a.merge(b)).finalize(),
            xrp: merge_pending(self.xrp, |a, b| a.merge(b)).finalize(),
        })
    }
}

/// One shard worker's slice of the distributed sweep: fold the block
/// positions `[start, end)` (clamped to the chain head) of each chain into
/// a columnar accumulator and emit it as a wire frame.
///
/// `shards` in-process sub-accumulators fold residue classes of the slice
/// and merge in index order — the same two-level layout as the streaming
/// ingest pool, and (by the merge laws) irrelevant to the result.
#[derive(Debug, Clone)]
pub struct ShardWorker {
    /// Assigned block-position range `[start, end)`, end-exclusive,
    /// 0-based within each chain's block sequence.
    pub start: u64,
    pub end: u64,
    /// Block position of `blocks[0]` in the slices handed to the frame
    /// methods. Zero when workers hold whole chains (the generate path);
    /// an archive cold-start hands only the replayed segments covering
    /// the assignment, whose first block sits at the covering segment's
    /// start. Frames still carry absolute positions, so the reducer sees
    /// no difference.
    pub base: u64,
    /// In-process sub-accumulator count (≥ 1).
    pub shards: usize,
    /// Payload encoding of the emitted frames: binary columns (v2, the
    /// default) or canonical JSON (v1, for fleets with old reducers).
    pub payload: PayloadFormat,
    /// Provenance stamped into every emitted frame (scenario fingerprint,
    /// seed, …). A [`ReduceSession`] refuses to mix different values.
    pub meta: Value,
}

impl ShardWorker {
    pub fn new(start: u64, end: u64, meta: Value) -> Self {
        ShardWorker { start, end, base: 0, shards: 1, payload: PayloadFormat::default(), meta }
    }

    /// Fold the clamped slice through `shards` accumulators, merge in
    /// index order, and return the merged accumulator plus the clamped
    /// range and observed count.
    fn fold<B, A>(
        &self,
        blocks: &[B],
        identity: impl Fn() -> A,
        mut observe: impl FnMut(&mut A, &B),
        merge: impl Fn(&mut A, A),
    ) -> (A, u64, u64, u64) {
        // Work in slice-local coordinates (positions minus `base`), then
        // report the covered range in absolute positions. With `base == 0`
        // this is exactly the old whole-chain clamp; with a replayed
        // sub-range it folds the same blocks in the same order, so the
        // emitted frame is byte-identical.
        let lo = (self.start.saturating_sub(self.base) as usize).min(blocks.len());
        let hi = (self.end.saturating_sub(self.base) as usize).min(blocks.len()).max(lo);
        let slice = &blocks[lo..hi];
        let shards = self.shards.max(1);
        let mut accs: Vec<A> = (0..shards).map(|_| identity()).collect();
        for (i, b) in slice.iter().enumerate() {
            observe(&mut accs[i % shards], b);
        }
        let mut it = accs.into_iter();
        let mut acc = it.next().expect("at least one shard");
        for other in it {
            merge(&mut acc, other);
        }
        (acc, self.base + lo as u64, self.base + hi as u64, slice.len() as u64)
    }

    fn frame<A: WireState + Serialize>(
        &self,
        chain: &str,
        acc: &A,
        start: u64,
        end: u64,
        blocks: u64,
    ) -> ShardFrame {
        match self.payload {
            PayloadFormat::Json => ShardFrame::from_state(
                chain,
                start,
                end,
                blocks,
                self.meta.clone(),
                &acc.serialize(),
            ),
            PayloadFormat::Bin => ShardFrame::from_columns(
                chain,
                start,
                end,
                blocks,
                self.meta.clone(),
                acc.to_wire_bytes(),
            ),
        }
    }

    /// Sweep the EOS slice into an `"eos"` frame.
    pub fn eos_frame(&self, blocks: &[txstat_eos::Block], period: Period) -> ShardFrame {
        let (acc, s, e, n) = self.fold(
            blocks,
            || EosColumnar::new(period),
            |a, b| a.observe(b),
            |a, b| a.merge(b),
        );
        self.frame("eos", &acc, s, e, n)
    }

    /// Sweep the Tezos slice into a `"tezos"` frame.
    pub fn tezos_frame(
        &self,
        blocks: &[txstat_tezos::TezosBlock],
        period: Period,
        periods: &[(PeriodKind, Period)],
    ) -> ShardFrame {
        let (acc, s, e, n) = self.fold(
            blocks,
            || TezosColumnar::new(period, periods.to_vec()),
            |a, b| a.observe(b),
            |a, b| a.merge(b),
        );
        self.frame("tezos", &acc, s, e, n)
    }

    /// Sweep the XRP slice into an `"xrp"` frame, valuing payments through
    /// `oracle` (every process derives the same oracle from the scenario).
    pub fn xrp_frame(
        &self,
        blocks: &[txstat_xrp::LedgerBlock],
        period: Period,
        oracle: &RateOracle,
    ) -> ShardFrame {
        let (acc, s, e, n) = self.fold(
            blocks,
            || XrpColumnar::new(period),
            |a, b| a.observe(b, oracle),
            |a, b| a.merge(b),
        );
        self.frame("xrp", &acc, s, e, n)
    }

    /// Emit frames to a byte sink (file, stdout, pipe) in the concatenated
    /// wire layout `txstat_wire::decode_all` reads back.
    pub fn emit(frames: &[ShardFrame], sink: &mut dyn Write) -> std::io::Result<()> {
        sink.write_all(&txstat_wire::encode_all(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use txstat_types::time::ChainTime;

    fn period() -> Period {
        Period::new(ChainTime::from_ymd(2019, 10, 1), ChainTime::from_ymd(2019, 10, 2))
    }

    fn eos_frame(start: u64, end: u64, meta: Value) -> ShardFrame {
        let acc = EosColumnar::new(period());
        ShardFrame::from_state("eos", start, end, end - start, meta, &acc.serialize())
    }

    /// A v2 binary frame and a v1 JSON frame of the same accumulator
    /// decode to the same state, and both mix in one session.
    #[test]
    fn binary_and_json_frames_decode_to_the_same_accumulator() {
        assert_eq!(
            ShardWorker::new(0, 0, Value::Null).payload,
            PayloadFormat::Bin,
            "binary is the default payload"
        );
        let acc = EosColumnar::new(period());
        let f_bin =
            ShardFrame::from_columns("eos", 0, 4, 4, Value::Null, acc.to_wire_bytes());
        let f_json = ShardFrame::from_state("eos", 4, 8, 4, Value::Null, &acc.serialize());
        assert_eq!(f_bin.header.schema_version, SCHEMA_VERSION);
        assert_eq!(f_json.header.schema_version, SCHEMA_V1);
        let a: EosColumnar = decode_payload(&f_bin).expect("binary payload decodes");
        let b: EosColumnar = decode_payload(&f_json).expect("json payload decodes");
        assert_eq!(a.period(), b.period());
        assert_eq!(a.to_wire_bytes(), b.to_wire_bytes(), "same state either way");
        // Cross-version session: v2 then v1 submit cleanly, and a v1 frame
        // overlapping the v2 one is still overlap-checked.
        let mut s = ReduceSession::new();
        s.submit(&f_bin).expect("v2 accepted");
        s.submit(&f_json).expect("v1 accepted next to v2");
        let overlap = ShardFrame::from_state("eos", 2, 6, 4, Value::Null, &acc.serialize());
        assert!(matches!(s.submit(&overlap), Err(ReduceError::Overlap { .. })));
    }

    #[test]
    fn rejects_unknown_chain_and_version_skew() {
        let mut s = ReduceSession::new();
        let mut f = eos_frame(0, 4, Value::Null);
        f.header.chain = "doge".into();
        assert!(matches!(s.submit(&f), Err(ReduceError::UnknownChain(_))));
        let mut f = eos_frame(0, 4, Value::Null);
        f.header.schema_version = 9;
        assert!(matches!(s.submit(&f), Err(ReduceError::Version { found: 9, .. })));
    }

    #[test]
    fn rejects_overlap_and_meta_drift_tracks_gaps() {
        let meta = json!({"scenario": "s"});
        let mut s = ReduceSession::new();
        s.submit(&eos_frame(0, 4, meta.clone())).expect("first range");
        s.submit(&eos_frame(8, 10, meta.clone())).expect("disjoint range");
        assert_eq!(s.gaps("eos"), vec![(4, 8)]);
        assert_eq!(s.span("eos"), Some((0, 10)));
        assert_eq!(s.observed("eos"), 6);
        let err = s.submit(&eos_frame(3, 6, meta.clone()));
        assert!(matches!(err, Err(ReduceError::Overlap { .. })), "{err:?}");
        let err = s.submit(&eos_frame(4, 8, json!({"scenario": "other"})));
        assert!(matches!(err, Err(ReduceError::MetaMismatch { .. })), "{err:?}");
        // The failed submissions changed nothing.
        s.submit(&eos_frame(4, 8, meta)).expect("gap fill still fits");
        assert!(s.gaps("eos").is_empty());
    }

    #[test]
    fn finalize_requires_all_chains_and_contiguity() {
        let mut s = ReduceSession::new();
        s.submit(&eos_frame(0, 2, Value::Null)).expect("frame fits");
        s.submit(&eos_frame(6, 8, Value::Null)).expect("frame fits");
        assert!(matches!(
            s.finalize(),
            Err(ReduceError::CoverageGap { chain: "eos", .. })
        ));
        let mut s = ReduceSession::new();
        s.submit(&eos_frame(0, 2, Value::Null)).expect("frame fits");
        assert!(matches!(s.finalize(), Err(ReduceError::MissingChain("tezos"))));
    }

    #[test]
    fn rejects_window_mismatch() {
        let mut s = ReduceSession::new();
        s.submit(&eos_frame(0, 2, Value::Null)).expect("frame fits");
        let other = Period::new(ChainTime::from_ymd(2019, 11, 1), ChainTime::from_ymd(2019, 11, 2));
        let acc = EosColumnar::new(other);
        let f = ShardFrame::from_state("eos", 2, 4, 2, Value::Null, &acc.serialize());
        assert!(matches!(s.submit(&f), Err(ReduceError::WindowMismatch { .. })));
    }

    #[test]
    fn rejects_garbage_payload() {
        let mut s = ReduceSession::new();
        let f = ShardFrame::from_state("eos", 0, 1, 1, Value::Null, &json!({"not": "state"}));
        assert!(matches!(s.submit(&f), Err(ReduceError::Payload { .. })));
    }

    #[test]
    fn out_of_range_ids_are_payload_errors_not_panics() {
        // A well-formed frame whose counters reference ids the interner
        // never issued must be a typed rejection — merge/finalize would
        // otherwise panic the reducer process.
        let mut state = EosColumnar::new(period()).serialize();
        if let Value::Object(m) = &mut state {
            m.insert("sent".into(), json!([0, 0, 0, 0, 0, 0, 0, 9]));
        }
        let f = ShardFrame::from_state("eos", 0, 1, 1, Value::Null, &state);
        let mut s = ReduceSession::new();
        let err = s.submit(&f);
        assert!(matches!(err, Err(ReduceError::Payload { .. })), "{err:?}");
    }

    #[test]
    fn empty_range_frames_cannot_smuggle_state() {
        use txstat_eos::name::Name;
        use txstat_eos::types::{Action, Block, Transaction};
        use txstat_types::amount::SymCode;

        let block = Block {
            num: 1,
            time: ChainTime::from_ymd(2019, 10, 1) + 60,
            producer: Name::new("bp"),
            transactions: vec![Transaction {
                id: 0,
                actions: vec![Action::token_transfer(
                    Name::new("eosio.token"),
                    Name::new("alice"),
                    Name::new("bob"),
                    SymCode::new("EOS"),
                    5,
                )],
                cpu_us: 100,
                net_bytes: 128,
            }],
        };
        let mut acc = EosColumnar::new(period());
        acc.observe(&block);
        let state = acc.serialize();
        let legit = ShardFrame::from_state("eos", 0, 1, 1, Value::Null, &state);
        // Same non-identity state behind an empty range: invisible to the
        // overlap/coverage checks, so it must not be merged either.
        let forged = ShardFrame::from_state("eos", 1, 1, 0, Value::Null, &state);
        let tz = ShardFrame::from_state(
            "tezos",
            0,
            1,
            1,
            Value::Null,
            &TezosColumnar::new(period(), Vec::new()).serialize(),
        );
        let xr =
            ShardFrame::from_state("xrp", 0, 1, 1, Value::Null, &XrpColumnar::new(period()).serialize());

        let mut s = ReduceSession::new();
        for f in [&legit, &forged, &tz, &xr] {
            s.submit(f).expect("accepted");
        }
        let sweeps = s.finalize().expect("coverage complete");
        assert_eq!(
            sweeps.eos.action_distribution().1,
            1,
            "empty-range frame state was merged (double count)"
        );
    }
}
