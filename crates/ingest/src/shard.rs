//! Sharded streaming fold: route numbered blocks onto worker-private sweep
//! accumulators, merge the shards when the stream ends.
//!
//! Every chain accumulator in `txstat_core` is a commutative monoid over
//! block observations (`identity / observe / merge` with all merged state in
//! exactly-mergeable integer domains), so folding blocks into per-shard
//! accumulators in *arrival* order and merging the shards in *index* order
//! produces the same finalized statistics as [`txstat_core::par_sweep`] over
//! the materialized slice — the equivalence suite in
//! `tests/property_suite.rs` pins this for random shard counts and channel
//! capacities.
//!
//! Topology (one instance per chain):
//!
//! ```text
//!  source workers ──▶ Sink::send(n, block) ──▶ channel[n % shards] ──▶ shard worker s
//!                                              (bounded, gauged)        fold observe()
//!                                                                            │
//!                                   ShardPool::finish():  merge shards in index order
//! ```

use crate::channel::{bounded, GaugeSnapshot, Receiver, Sender};
use std::sync::Arc;
use tokio::task::JoinHandle;
use txstat_telemetry::{Counter, Span};

/// Ingestion tuning: how many shard workers fold in parallel and how many
/// blocks each shard channel may buffer before producers stall.
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    pub shards: usize,
    pub channel_capacity: usize,
    /// Telemetry label for this pool (conventionally the chain name).
    /// Non-empty: folds count into the global registry's
    /// `txstat_ingest_blocks_folded_total{chain=label}` and shard workers
    /// trace `ingest_shard_fold` spans. Empty: the pool stays unregistered
    /// (private counter, no metric series) — right for anonymous pools in
    /// tests and benches.
    pub label: &'static str,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { shards: 4, channel_capacity: 128, label: "" }
    }
}

/// The producer-facing half: routes `(n, block)` to shard `n % shards`.
/// Cloneable so concurrent crawl workers can feed the same pool; the pool
/// sees end-of-stream once every clone has dropped.
pub struct Sink<B> {
    senders: Vec<Sender<(u64, B)>>,
}

impl<B> Clone for Sink<B> {
    fn clone(&self) -> Self {
        Sink { senders: self.senders.clone() }
    }
}

impl<B: Send + 'static> Sink<B> {
    /// Route one numbered block to its shard, stalling on a full channel.
    /// `Err` returns the block if the pool was torn down.
    pub async fn send(&self, n: u64, block: B) -> Result<(), B> {
        let shard = (n % self.senders.len() as u64) as usize;
        self.senders[shard].send((n, block)).await.map_err(|(_, b)| b)
    }

    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }
}

/// The consumer half: one spawned worker per shard, each folding its
/// channel into a private accumulator. Gauges are captured as closures so
/// the handle does not carry the channel item type.
pub struct ShardPoolHandle<A> {
    workers: Vec<JoinHandle<(A, u64)>>,
    gauge_fns: Vec<Box<dyn Fn() -> GaugeSnapshot + Send>>,
}

/// Everything the reducer knows when the stream ends: the per-shard
/// accumulators (in shard order), per-shard observation counts, and the
/// backpressure gauges of every shard channel.
pub struct IngestOutcome<A> {
    pub shards: Vec<A>,
    pub observed: Vec<u64>,
    pub gauges: Vec<GaugeSnapshot>,
}

impl<A> IngestOutcome<A> {
    /// Total blocks folded across all shards.
    pub fn total_observed(&self) -> u64 {
        self.observed.iter().sum()
    }

    /// Merge the shard accumulators in shard-index order.
    pub fn merged(self, mut merge: impl FnMut(&mut A, A)) -> A {
        let mut it = self.shards.into_iter();
        let mut acc = it.next().expect("at least one shard");
        for other in it {
            merge(&mut acc, other);
        }
        acc
    }

    /// The highest channel high-water mark across shards — the peak number
    /// of blocks the whole pool ever had buffered per shard.
    pub fn peak_buffered(&self) -> u64 {
        self.gauges.iter().map(|g| g.high_water).max().unwrap_or(0)
    }
}

/// Spawn `shards` fold workers, each with a private accumulator built by
/// `identity` and fed through `observe`. Returns the routing [`Sink`] and a
/// handle to await the shard accumulators once every sink clone dropped.
pub fn spawn_sharded<B, A, I, O>(
    opts: IngestOptions,
    identity: I,
    observe: O,
) -> (Sink<B>, ShardPoolHandle<A>)
where
    B: Send + 'static,
    A: Send + 'static,
    I: Fn() -> A + Send + Sync + 'static,
    O: Fn(&mut A, u64, &B) + Send + Sync + 'static,
{
    let shards = opts.shards.max(1);
    let identity = Arc::new(identity);
    let observe = Arc::new(observe);
    // Resolve the fold counter once, outside the per-block hot loop:
    // labeled pools share the registry series, anonymous pools get a
    // private (unexported) counter.
    let folded: Arc<Counter> = if opts.label.is_empty() {
        Arc::new(Counter::new())
    } else {
        txstat_telemetry::registry().counter_with(
            "txstat_ingest_blocks_folded_total",
            "Blocks folded by sharded ingest workers",
            &[("chain", opts.label)],
        )
    };
    let mut senders = Vec::with_capacity(shards);
    let mut workers = Vec::with_capacity(shards);
    let mut gauge_fns: Vec<Box<dyn Fn() -> GaugeSnapshot + Send>> = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (tx, rx, gauge) = bounded::<(u64, B)>(opts.channel_capacity);
        senders.push(tx);
        gauge_fns.push(Box::new(move || gauge.snapshot()));
        let identity = identity.clone();
        let observe = observe.clone();
        let folded = folded.clone();
        let label = if opts.label.is_empty() {
            String::new()
        } else {
            format!("{}/{shard}", opts.label)
        };
        workers.push(tokio::spawn(worker_loop(rx, identity, observe, label, folded)));
    }
    (Sink { senders }, ShardPoolHandle { workers, gauge_fns })
}

async fn worker_loop<B, A>(
    mut rx: Receiver<(u64, B)>,
    identity: Arc<impl Fn() -> A>,
    observe: Arc<impl Fn(&mut A, u64, &B)>,
    label: String,
    folded: Arc<Counter>,
) -> (A, u64) {
    // One span covers the worker's whole fold (first recv to stream end);
    // per-block spans would out-cost the observe() they measure.
    let _span = Span::enter("ingest_shard_fold", &label);
    let mut acc = identity();
    let mut observed = 0u64;
    while let Some((n, block)) = rx.recv().await {
        observe(&mut acc, n, &block);
        observed += 1;
        folded.inc();
    }
    (acc, observed)
}

impl<A: Send + 'static> ShardPoolHandle<A> {
    /// Await every shard worker (the stream must have ended: all [`Sink`]
    /// clones dropped) and collect the outcome.
    pub async fn finish(self) -> IngestOutcome<A> {
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut observed = Vec::with_capacity(self.workers.len());
        for w in self.workers {
            let (acc, n) = w.await.expect("shard worker panicked");
            shards.push(acc);
            observed.push(n);
        }
        let gauges = self.gauge_fns.iter().map(|g| g()).collect();
        IngestOutcome { shards, observed, gauges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_sum_equals_sequential() {
        tokio::runtime::block_on(async {
            let opts = IngestOptions { shards: 3, channel_capacity: 4, label: "" };
            let (sink, pool) =
                spawn_sharded(opts, || 0u64, |acc: &mut u64, _n, b: &u64| *acc += *b);
            for (n, v) in (0u64..1000).enumerate() {
                sink.send(n as u64, v * 3).await.unwrap();
            }
            drop(sink);
            let out = pool.finish().await;
            assert_eq!(out.total_observed(), 1000);
            assert_eq!(out.shards.len(), 3);
            let total = out.merged(|a, b| *a += b);
            assert_eq!(total, (0u64..1000).map(|v| v * 3).sum::<u64>());
        });
    }

    #[test]
    fn routing_is_by_residue_class() {
        tokio::runtime::block_on(async {
            let opts = IngestOptions { shards: 4, channel_capacity: 8, label: "" };
            let (sink, pool) = spawn_sharded(
                opts,
                Vec::new,
                |acc: &mut Vec<u64>, n, _b: &()| acc.push(n),
            );
            for n in 0..40u64 {
                sink.send(n, ()).await.unwrap();
            }
            drop(sink);
            let out = pool.finish().await;
            for (shard, ns) in out.shards.iter().enumerate() {
                assert!(ns.iter().all(|n| (*n % 4) as usize == shard));
                assert_eq!(ns.len(), 10);
            }
        });
    }

    #[test]
    fn gauges_report_bounded_buffering() {
        tokio::runtime::block_on(async {
            let opts = IngestOptions { shards: 2, channel_capacity: 2, label: "" };
            let (sink, pool) =
                spawn_sharded(opts, || 0u64, |acc: &mut u64, _n, _b: &u64| *acc += 1);
            for n in 0..100u64 {
                sink.send(n, n).await.unwrap();
            }
            drop(sink);
            let out = pool.finish().await;
            assert!(out.peak_buffered() <= 2);
            assert_eq!(out.total_observed(), 100);
        });
    }
}
