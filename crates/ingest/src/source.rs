//! Block sources: everything that can feed a sharded ingest [`Sink`].
//!
//! A [`BlockSource`] drives production — it owns its input (a vector, an
//! NDJSON capture, a set of RPC endpoints) and pushes numbered blocks into
//! the bounded sink until the stream is exhausted, returning
//! source-specific accounting. Three adapter families ship here and in
//! [`crate::crawl`]:
//!
//! - [`MemorySource`] — in-memory scenarios (tests, benches, property
//!   suites);
//! - [`NdjsonReplay`] — replay a stored crawl from newline-delimited wire
//!   JSON, one block per line, with the same Figure-2 byte accounting a
//!   live crawl produces;
//! - `EosCrawlSource` / `TezosCrawlSource` / `XrpCrawlSource`
//!   ([`crate::crawl`]) — the live loopback-RPC crawlers.

use crate::shard::Sink;
use crate::IngestError;
use txstat_crawler::CrawlStats;

/// A producer of numbered blocks. `produce` consumes the source and the
/// sink; dropping the sink at the end is what signals end-of-stream to the
/// shard workers.
pub trait BlockSource: Send + Sized + 'static {
    type Block: Send + 'static;
    /// Source-specific accounting returned when the stream ends.
    type Stats: Send + 'static;

    fn produce(
        self,
        sink: Sink<Self::Block>,
    ) -> impl std::future::Future<Output = Result<Self::Stats, IngestError>> + Send;
}

/// An in-memory source: streams a pre-numbered block list.
pub struct MemorySource<B> {
    blocks: Vec<(u64, B)>,
}

impl<B> MemorySource<B> {
    pub fn new(blocks: Vec<(u64, B)>) -> Self {
        MemorySource { blocks }
    }

    /// Number blocks with a key extractor (`|b| b.num` etc.).
    pub fn numbered(blocks: impl IntoIterator<Item = B>, key: impl Fn(&B) -> u64) -> Self {
        MemorySource { blocks: blocks.into_iter().map(|b| (key(&b), b)).collect() }
    }
}

impl<B: Send + 'static> BlockSource for MemorySource<B> {
    type Block = B;
    type Stats = u64;

    async fn produce(self, sink: Sink<B>) -> Result<u64, IngestError> {
        let mut sent = 0u64;
        for (n, b) in self.blocks {
            sink.send(n, b).await.map_err(|_| IngestError::SinkClosed)?;
            sent += 1;
        }
        Ok(sent)
    }
}

/// Replay a stored crawl from NDJSON text (one wire-JSON block per line),
/// accounting payload bytes exactly like the live crawler so Figure 2
/// reproduces from a capture.
pub struct NdjsonReplay<B, P> {
    text: String,
    parse: P,
    _marker: std::marker::PhantomData<fn() -> B>,
}

impl<B, P> NdjsonReplay<B, P>
where
    P: Fn(&str) -> Result<(u64, B), String> + Send + 'static,
{
    pub fn new(text: String, parse: P) -> Self {
        NdjsonReplay { text, parse, _marker: std::marker::PhantomData }
    }
}

impl<B, P> BlockSource for NdjsonReplay<B, P>
where
    B: Send + 'static,
    P: Fn(&str) -> Result<(u64, B), String> + Send + 'static,
{
    type Block = B;
    type Stats = CrawlStats;

    async fn produce(self, sink: Sink<B>) -> Result<CrawlStats, IngestError> {
        let started = std::time::Instant::now();
        let mut stats = CrawlStats::default();
        for (i, line) in self.text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (n, block) = (self.parse)(line)
                .map_err(|error| IngestError::Replay { line: i + 1, error })?;
            stats.record_payload(n, line.as_bytes());
            stats.blocks += 1;
            sink.send(n, block).await.map_err(|_| IngestError::SinkClosed)?;
        }
        stats.elapsed = started.elapsed();
        Ok(stats)
    }
}

// ---- Per-chain NDJSON wire codecs -------------------------------------------

/// Serialize an EOS chain to replayable NDJSON (one `get_block` wire JSON
/// per line).
pub fn eos_to_ndjson(blocks: &[txstat_eos::Block]) -> String {
    let mut out = String::new();
    for b in blocks {
        out.push_str(
            &String::from_utf8(txstat_eos::rpc_model::block_bytes(b)).expect("JSON is UTF-8"),
        );
        out.push('\n');
    }
    out
}

/// NDJSON replay source for an EOS capture.
pub fn eos_replay(
    text: String,
) -> NdjsonReplay<txstat_eos::Block, impl Fn(&str) -> Result<(u64, txstat_eos::Block), String>> {
    NdjsonReplay::new(text, |line| {
        let block = txstat_eos::rpc_model::block_parse(line.as_bytes())?;
        Ok((block.num, block))
    })
}

/// Serialize a Tezos chain to replayable NDJSON.
pub fn tezos_to_ndjson(blocks: &[txstat_tezos::TezosBlock]) -> String {
    let mut out = String::new();
    for b in blocks {
        out.push_str(
            &String::from_utf8(txstat_tezos::rpc_model::block_bytes(b)).expect("JSON is UTF-8"),
        );
        out.push('\n');
    }
    out
}

/// NDJSON replay source for a Tezos capture.
pub fn tezos_replay(
    text: String,
) -> NdjsonReplay<
    txstat_tezos::TezosBlock,
    impl Fn(&str) -> Result<(u64, txstat_tezos::TezosBlock), String>,
> {
    NdjsonReplay::new(text, |line| {
        let block = txstat_tezos::rpc_model::block_parse(line.as_bytes())?;
        Ok((block.level, block))
    })
}

/// Serialize closed XRP ledgers to replayable NDJSON.
pub fn xrp_to_ndjson(blocks: &[txstat_xrp::LedgerBlock]) -> String {
    let mut out = String::new();
    for b in blocks {
        out.push_str(
            &String::from_utf8(txstat_xrp::rpc_model::ledger_bytes(b)).expect("JSON is UTF-8"),
        );
        out.push('\n');
    }
    out
}

/// NDJSON replay source for an XRP capture.
pub fn xrp_replay(
    text: String,
) -> NdjsonReplay<
    txstat_xrp::LedgerBlock,
    impl Fn(&str) -> Result<(u64, txstat_xrp::LedgerBlock), String>,
> {
    NdjsonReplay::new(text, |line| {
        let block = txstat_xrp::rpc_model::ledger_parse(line.as_bytes())?;
        Ok((block.index, block))
    })
}
