//! Epoch-swapped snapshot publication for the follow → serve path.
//!
//! The follow loop finalizes a fresh set of sweeps per batch; the query
//! service must expose each as an immutable snapshot without ever blocking
//! ingestion on readers or letting a reader observe a torn state. An
//! [`EpochCell`] holds `Arc<T>` behind a reader-writer lock whose write
//! section is a single pointer swap: readers clone the `Arc` (nanoseconds,
//! shared), the publisher replaces it (nanoseconds, exclusive), and the
//! old snapshot stays alive until its last reader drops it. Torn reads are
//! impossible by construction — `T` is never mutated after publication.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A published, epoch-counted immutable snapshot slot.
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// Start at epoch 1 with the given snapshot.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell { slot: RwLock::new(initial), epoch: AtomicU64::new(1) }
    }

    /// The current snapshot. Cheap (one `Arc` clone under a read lock) and
    /// never blocked by a publisher for longer than one pointer swap.
    pub fn load(&self) -> Arc<T> {
        self.slot.read().clone()
    }

    /// The epoch counter: bumped once per publish, starting at 1.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new snapshot, returning the new epoch. In-progress readers
    /// keep the snapshot they already loaded; later loads see the new one.
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let mut slot = self.slot.write();
        *slot = value;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_bumps_epoch_and_swaps_value() {
        let cell = EpochCell::new(Arc::new(10u64));
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), 10);
        assert_eq!(cell.publish(Arc::new(20)), 2);
        assert_eq!(cell.epoch(), 2);
        assert_eq!(*cell.load(), 20);
    }

    #[test]
    fn readers_always_see_a_complete_snapshot() {
        // Snapshots are (n, n): a torn read would surface as a mismatched
        // pair. Readers hammer loads while the writer publishes new pairs.
        let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..20_000 {
                        let snap = cell.load();
                        assert_eq!(snap.0, snap.1, "torn snapshot");
                        assert!(snap.0 >= last, "snapshot went backwards");
                        last = snap.0;
                    }
                })
            })
            .collect();
        for n in 1..=500u64 {
            cell.publish(Arc::new((n, n)));
        }
        for r in readers {
            r.join().expect("reader panicked");
        }
    }

    #[test]
    fn old_snapshot_survives_until_dropped() {
        let cell = EpochCell::new(Arc::new(String::from("old")));
        let pinned = cell.load();
        cell.publish(Arc::new(String::from("new")));
        assert_eq!(*pinned, "old");
        assert_eq!(*cell.load(), "new");
    }
}
