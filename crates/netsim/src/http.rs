//! A minimal HTTP/1.1 implementation over tokio — request line, headers,
//! `Content-Length` bodies, keep-alive.
//!
//! EOS and Tezos node RPCs are plain HTTP+JSON (§3.1); this module gives
//! the simulated endpoints and the crawler a real wire protocol over real
//! loopback sockets without pulling a full HTTP stack into the workspace.

use tokio::io::{AsyncBufReadExt, AsyncReadExt, AsyncWrite, AsyncWriteExt, BufStream};
use tokio::net::TcpStream;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    pub fn get(path: &str) -> Self {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    pub fn post(path: &str, body: Vec<u8>) -> Self {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            headers: vec![("content-type".into(), "application/json".into())],
            body,
        }
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn ok(body: Vec<u8>) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK".into(),
            headers: vec![("content-type".into(), "application/json".into())],
            body,
        }
    }

    pub fn status(status: u16, reason: &str, body: Vec<u8>) -> Self {
        HttpResponse { status, reason: reason.into(), headers: Vec::new(), body }
    }

    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Protocol errors.
#[derive(Debug)]
pub enum HttpError {
    Io(std::io::Error),
    BadRequestLine(String),
    BadStatusLine(String),
    BadHeader(String),
    BodyTooLarge(usize),
    Closed,
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io: {e}"),
            HttpError::BadRequestLine(l) => write!(f, "bad request line {l:?}"),
            HttpError::BadStatusLine(l) => write!(f, "bad status line {l:?}"),
            HttpError::BadHeader(l) => write!(f, "bad header {l:?}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
            HttpError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Upper bound on accepted bodies (blocks are large but bounded).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

async fn read_headers(
    stream: &mut BufStream<TcpStream>,
) -> Result<(Vec<(String, String)>, usize), HttpError> {
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = stream.read_line(&mut line).await?;
        if n == 0 {
            return Err(HttpError::Closed);
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.to_owned()))?;
        let k = k.trim().to_ascii_lowercase();
        let v = v.trim().to_owned();
        if k == "content-length" {
            content_length = v
                .parse()
                .map_err(|_| HttpError::BadHeader(line.to_owned()))?;
            if content_length > MAX_BODY {
                return Err(HttpError::BodyTooLarge(content_length));
            }
        }
        headers.push((k, v));
    }
    Ok((headers, content_length))
}

/// Read one request from a connection; `Ok(None)` on clean EOF between
/// requests (keep-alive end).
pub async fn read_request(
    stream: &mut BufStream<TcpStream>,
) -> Result<Option<HttpRequest>, HttpError> {
    let mut line = String::new();
    let n = stream.read_line(&mut line).await?;
    if n == 0 {
        return Ok(None);
    }
    let line_t = line.trim_end();
    let mut parts = line_t.split(' ');
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequestLine(line_t.to_owned()))?
        .to_owned();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") || method.is_empty() {
        return Err(HttpError::BadRequestLine(line_t.to_owned()));
    }
    let (headers, content_length) = read_headers(stream).await?;
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).await?;
    Ok(Some(HttpRequest { method, path, headers, body }))
}

/// Write a request.
pub async fn write_request<W: AsyncWrite + Unpin>(
    w: &mut W,
    req: &HttpRequest,
) -> Result<(), HttpError> {
    let mut head = format!("{} {} HTTP/1.1\r\n", req.method, req.path);
    for (k, v) in &req.headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", req.body.len()));
    w.write_all(head.as_bytes()).await?;
    w.write_all(&req.body).await?;
    w.flush().await?;
    Ok(())
}

/// Read one response.
pub async fn read_response(
    stream: &mut BufStream<TcpStream>,
) -> Result<HttpResponse, HttpError> {
    let mut line = String::new();
    let n = stream.read_line(&mut line).await?;
    if n == 0 {
        return Err(HttpError::Closed);
    }
    let line_t = line.trim_end();
    let mut parts = line_t.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadStatusLine(line_t.to_owned()));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::BadStatusLine(line_t.to_owned()))?;
    let reason = parts.next().unwrap_or("").to_owned();
    let (headers, content_length) = read_headers(stream).await?;
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).await?;
    Ok(HttpResponse { status, reason, headers, body })
}

/// Write a response.
pub async fn write_response<W: AsyncWrite + Unpin>(
    w: &mut W,
    resp: &HttpResponse,
) -> Result<(), HttpError> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
    for (k, v) in &resp.headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", resp.body.len()));
    w.write_all(head.as_bytes()).await?;
    w.write_all(&resp.body).await?;
    w.flush().await?;
    Ok(())
}

/// Approximate wire size of a request (for byte accounting).
pub fn request_wire_size(req: &HttpRequest) -> usize {
    req.method.len() + req.path.len() + 12
        + req.headers.iter().map(|(k, v)| k.len() + v.len() + 4).sum::<usize>()
        + 20
        + req.body.len()
}

/// Approximate wire size of a response.
pub fn response_wire_size(resp: &HttpResponse) -> usize {
    16 + resp.reason.len()
        + resp.headers.iter().map(|(k, v)| k.len() + v.len() + 4).sum::<usize>()
        + 20
        + resp.body.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::net::TcpListener;

    #[tokio::test]
    async fn roundtrip_request_response() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (sock, _) = listener.accept().await.unwrap();
            let mut stream = BufStream::new(sock);
            let req = read_request(&mut stream).await.unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/chain/get_block");
            assert_eq!(req.body, br#"{"block_num_or_id":5}"#);
            write_response(&mut stream, &HttpResponse::ok(b"{\"ok\":true}".to_vec()))
                .await
                .unwrap();
            // Second request on the same connection (keep-alive).
            let req2 = read_request(&mut stream).await.unwrap().unwrap();
            assert_eq!(req2.method, "GET");
            write_response(&mut stream, &HttpResponse::status(404, "Not Found", vec![]))
                .await
                .unwrap();
            // Clean EOF.
            assert!(read_request(&mut stream).await.unwrap().is_none());
        });

        let sock = TcpStream::connect(addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        write_request(
            &mut stream,
            &HttpRequest::post("/v1/chain/get_block", br#"{"block_num_or_id":5}"#.to_vec()),
        )
        .await
        .unwrap();
        let resp = read_response(&mut stream).await.unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.body, b"{\"ok\":true}");
        write_request(&mut stream, &HttpRequest::get("/missing")).await.unwrap();
        let resp = read_response(&mut stream).await.unwrap();
        assert_eq!(resp.status, 404);
        assert!(!resp.is_ok());
        drop(stream);
        server.await.unwrap();
    }

    #[tokio::test]
    async fn binary_bodies_survive() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        let expect = payload.clone();
        let server = tokio::spawn(async move {
            let (sock, _) = listener.accept().await.unwrap();
            let mut stream = BufStream::new(sock);
            let req = read_request(&mut stream).await.unwrap().unwrap();
            assert_eq!(req.body, expect);
            write_response(&mut stream, &HttpResponse::ok(req.body)).await.unwrap();
        });
        let sock = TcpStream::connect(addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        write_request(&mut stream, &HttpRequest::post("/echo", payload.clone())).await.unwrap();
        let resp = read_response(&mut stream).await.unwrap();
        assert_eq!(resp.body, payload);
        server.await.unwrap();
    }

    #[tokio::test]
    async fn oversized_content_length_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (sock, _) = listener.accept().await.unwrap();
            let mut stream = BufStream::new(sock);
            match read_request(&mut stream).await {
                Err(HttpError::BodyTooLarge(n)) => assert!(n > MAX_BODY),
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let sock = TcpStream::connect(addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        use tokio::io::AsyncWriteExt;
        stream
            .write_all(
                format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1).as_bytes(),
            )
            .await
            .unwrap();
        stream.flush().await.unwrap();
        server.await.unwrap();
    }

    #[tokio::test]
    async fn malformed_request_line_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (sock, _) = listener.accept().await.unwrap();
            let mut stream = BufStream::new(sock);
            assert!(matches!(
                read_request(&mut stream).await,
                Err(HttpError::BadRequestLine(_))
            ));
        });
        let sock = TcpStream::connect(addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        use tokio::io::AsyncWriteExt;
        stream.write_all(b"NOT-HTTP-AT-ALL\r\n\r\n").await.unwrap();
        stream.flush().await.unwrap();
        server.await.unwrap();
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let mut req = HttpRequest::get("/");
        req.headers.push(("X-Rate-Limit".into(), "10".into()));
        assert_eq!(req.header("x-rate-limit"), Some("10"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn wire_size_includes_body() {
        let req = HttpRequest::post("/p", vec![0u8; 100]);
        assert!(request_wire_size(&req) > 100);
        let resp = HttpResponse::ok(vec![0u8; 500]);
        assert!(response_wire_size(&resp) > 500);
    }
}
