//! The serving layer: a long-lived loopback query server with token-bucket
//! admission control and explicit 429 load shedding, plus the load
//! generator that drives it.
//!
//! This promotes the crate's HTTP substrate from test scaffolding (the
//! crawl-side [`crate::server`] endpoints, which *simulate* remote node
//! behaviour — latency, faults, stingy limits) into infrastructure for our
//! own service: no artificial latency or fault injection, a shared
//! admission token bucket with an in-flight ceiling, and per-route-class
//! latency/shed accounting ([`EndpointStats::shed`],
//! [`EndpointStats::latency`]) so overload decisions are observable.

use crate::endpoint::{EndpointStats, TokenBucket};
use crate::http::{
    read_request, read_response, request_wire_size, response_wire_size, write_request,
    write_response, HttpRequest, HttpResponse,
};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use txstat_telemetry::{Gauge, MetricKind, Registry, Sample, SampleValue};
use tokio::io::BufStream;
use tokio::net::{TcpListener, TcpStream};
use tokio::task::JoinHandle;

pub use crate::server::HttpHandler;

/// Admission knobs for one query server.
#[derive(Debug, Clone)]
pub struct QueryServerConfig {
    pub name: String,
    /// Bind address; port 0 picks an ephemeral port.
    pub bind: String,
    /// Sustained admitted requests per second across all routes.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// Hard ceiling on concurrently admitted requests; excess sheds 429.
    pub max_in_flight: u64,
}

impl Default for QueryServerConfig {
    fn default() -> Self {
        QueryServerConfig {
            name: "stats-serve".into(),
            bind: "127.0.0.1:0".into(),
            rate_per_sec: 50_000.0,
            burst: 5_000.0,
            max_in_flight: 256,
        }
    }
}

/// Per-route-class counters: exhibits, accounts, and everything else get
/// separate latency histograms and shed counts.
#[derive(Debug, Default)]
pub struct RouteStats {
    pub exhibit: Arc<EndpointStats>,
    pub account: Arc<EndpointStats>,
    pub other: Arc<EndpointStats>,
}

impl RouteStats {
    pub fn for_path(&self, path: &str) -> &Arc<EndpointStats> {
        if path.starts_with("/exhibit/") || path == "/report" {
            &self.exhibit
        } else if path.starts_with("/account/") {
            &self.account
        } else {
            &self.other
        }
    }

    /// `(label, stats)` per class, for reporting loops.
    pub fn classes(&self) -> [(&'static str, &Arc<EndpointStats>); 3] {
        [
            ("exhibit", &self.exhibit),
            ("account", &self.account),
            ("other", &self.other),
        ]
    }

    pub fn total_requests(&self) -> u64 {
        self.classes().iter().map(|(_, s)| s.requests.get()).sum()
    }

    pub fn total_shed(&self) -> u64 {
        self.classes().iter().map(|(_, s)| s.shed.get()).sum()
    }

    /// Register a collector exposing every route class in `registry` as
    /// `txstat_serve_*{route=...}` families (counters, the in-flight
    /// gauge + peak, and the latency histogram), so a serve process's
    /// `/metrics` endpoint reports the same numbers its load-shed logic
    /// acts on.
    pub fn register_into(self: &Arc<Self>, registry: &Registry) {
        let routes = self.clone();
        registry.register_collector(move |out| {
            let counter = |name: &str, help: &str, route: &'static str, v: u64| Sample {
                name: format!("txstat_serve_{name}"),
                help: help.to_string(),
                kind: MetricKind::Counter,
                labels: vec![("route".to_string(), route.to_string())],
                value: SampleValue::Int(v),
            };
            for (route, s) in routes.classes() {
                out.push(counter("requests_total", "Requests received", route, s.requests.get()));
                out.push(counter("served_total", "Requests served", route, s.served.get()));
                out.push(counter(
                    "shed_total",
                    "Requests shed 429 by admission control",
                    route,
                    s.shed.get(),
                ));
                out.push(counter("bytes_in_total", "Request bytes read", route, s.bytes_in.get()));
                out.push(counter(
                    "bytes_out_total",
                    "Response bytes written",
                    route,
                    s.bytes_out.get(),
                ));
                out.push(Sample {
                    name: "txstat_serve_in_flight".to_string(),
                    help: "Requests currently being handled".to_string(),
                    kind: MetricKind::Gauge,
                    labels: vec![("route".to_string(), route.to_string())],
                    value: SampleValue::Int(s.in_flight.get()),
                });
                out.push(Sample {
                    name: "txstat_serve_in_flight_peak".to_string(),
                    help: "Peak concurrent in-flight requests".to_string(),
                    kind: MetricKind::Gauge,
                    labels: vec![("route".to_string(), route.to_string())],
                    value: SampleValue::Int(s.max_in_flight()),
                });
                out.push(Sample {
                    name: "txstat_serve_latency_us".to_string(),
                    help: "Service latency of served requests (µs)".to_string(),
                    kind: MetricKind::Histogram,
                    labels: vec![("route".to_string(), route.to_string())],
                    value: SampleValue::Hist(s.latency.snapshot()),
                });
            }
        });
    }
}

/// Shared admission state: one token bucket plus a global in-flight gauge
/// (the per-route gauges in [`EndpointStats`] count the same requests, but
/// the ceiling applies across routes).
struct Admission {
    bucket: Mutex<TokenBucket>,
    in_flight: Gauge,
    max_in_flight: u64,
}

impl Admission {
    fn try_admit(&self) -> bool {
        if self.in_flight.get() >= self.max_in_flight {
            return false;
        }
        self.bucket.lock().try_take()
    }
}

/// RAII decrement of the global in-flight gauge.
struct AdmitGuard<'a>(&'a Admission);

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.dec();
    }
}

/// A running query server.
pub struct QueryServerHandle {
    pub name: String,
    pub addr: SocketAddr,
    pub routes: Arc<RouteStats>,
    _task: JoinHandle<()>,
}

const SHED_BODY: &[u8] = b"{\"error\":\"overloaded\",\"retry\":true}";

/// Spawn the query server: keep-alive HTTP/1.1 over loopback TCP, every
/// request gated by the shared admission bucket before it reaches the
/// handler. Shed requests are answered 429 immediately (never queued), so
/// overload degrades into fast refusals instead of stalls.
pub async fn spawn_query_server(
    handler: Arc<dyn HttpHandler>,
    cfg: QueryServerConfig,
) -> std::io::Result<QueryServerHandle> {
    let listener = TcpListener::bind(&cfg.bind).await?;
    let addr = listener.local_addr()?;
    let routes = Arc::new(RouteStats::default());
    let admission = Arc::new(Admission {
        bucket: Mutex::new(TokenBucket::new(cfg.rate_per_sec, cfg.burst)),
        in_flight: Gauge::new(),
        max_in_flight: cfg.max_in_flight,
    });
    let routes2 = routes.clone();
    let task = tokio::spawn(async move {
        loop {
            let (sock, _) = match listener.accept().await {
                Ok(x) => x,
                Err(_) => break,
            };
            let handler = handler.clone();
            let routes = routes2.clone();
            let admission = admission.clone();
            tokio::spawn(async move {
                let mut stream = BufStream::new(sock);
                loop {
                    let req = match read_request(&mut stream).await {
                        Ok(Some(r)) => r,
                        _ => break,
                    };
                    let stats = routes.for_path(&req.path);
                    let _in_flight = stats.enter();
                    stats.requests.inc();
                    stats
                        .bytes_in
                        .add(request_wire_size(&req) as u64);
                    let admitted = admission.try_admit();
                    let resp = if admitted {
                        admission.in_flight.inc();
                        let _admit = AdmitGuard(&admission);
                        let started = Instant::now();
                        let resp = handler.handle(&req);
                        stats.latency.record(started.elapsed());
                        stats.served.inc();
                        resp
                    } else {
                        stats.shed.inc();
                        HttpResponse::status(429, "Too Many Requests", SHED_BODY.to_vec())
                    };
                    stats
                        .bytes_out
                        .add(response_wire_size(&resp) as u64);
                    if write_response(&mut stream, &resp).await.is_err() {
                        break;
                    }
                }
            });
        }
    });
    Ok(QueryServerHandle { name: cfg.name, addr, routes, _task: task })
}

// ---- Load generation --------------------------------------------------------

/// A mixed-distribution load plan: `connections` concurrent keep-alive
/// clients each issue `requests_per_conn` GETs, cycling through `paths`
/// from a per-connection offset so the mix interleaves across clients.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    pub connections: usize,
    pub requests_per_conn: usize,
    pub paths: Vec<String>,
}

/// Aggregated outcome of one load run, with exact (sample-sorted)
/// latency quantiles.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    pub sent: u64,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    pub elapsed: Duration,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl LoadReport {
    /// Completed requests (200 + 429) per wall-clock second — the
    /// saturation throughput when the plan oversubscribes the server.
    pub fn req_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.ok + self.shed) as f64 / secs
    }
}

/// Run the plan against `addr`. Each connection records per-request
/// round-trip latency; the report merges and sorts every sample, so the
/// quantiles are exact (not histogram edges).
pub async fn run_load(addr: SocketAddr, plan: &LoadPlan) -> LoadReport {
    let started = Instant::now();
    let mut tasks = Vec::with_capacity(plan.connections);
    for conn_idx in 0..plan.connections {
        let paths = plan.paths.clone();
        let n = plan.requests_per_conn;
        tasks.push(tokio::spawn(async move {
            let mut latencies_us: Vec<u64> = Vec::with_capacity(n);
            let (mut ok, mut shed, mut errors, mut sent) = (0u64, 0u64, 0u64, 0u64);
            let sock = match TcpStream::connect(addr).await {
                Ok(s) => s,
                Err(_) => {
                    return (latencies_us, ok, shed, n as u64, 0);
                }
            };
            let mut stream = BufStream::new(sock);
            for i in 0..n {
                let path = &paths[(conn_idx + i) % paths.len()];
                let req = HttpRequest::get(path);
                sent += 1;
                let t0 = Instant::now();
                if write_request(&mut stream, &req).await.is_err() {
                    errors += 1;
                    break;
                }
                match read_response(&mut stream).await {
                    Ok(resp) => {
                        latencies_us
                            .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                        if resp.status == 429 {
                            shed += 1;
                        } else {
                            ok += 1;
                        }
                    }
                    Err(_) => {
                        errors += 1;
                        break;
                    }
                }
            }
            (latencies_us, ok, shed, errors, sent)
        }));
    }
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut report = LoadReport::default();
    for t in tasks {
        if let Ok((lat, ok, shed, errors, sent)) = t.await {
            all_latencies.extend(lat);
            report.ok += ok;
            report.shed += shed;
            report.errors += errors;
            report.sent += sent;
        }
    }
    report.elapsed = started.elapsed();
    all_latencies.sort_unstable();
    if !all_latencies.is_empty() {
        let q = |f: f64| {
            let idx = ((f * all_latencies.len() as f64).ceil() as usize)
                .clamp(1, all_latencies.len());
            all_latencies[idx - 1]
        };
        report.p50_us = q(0.50);
        report.p99_us = q(0.99);
        report.max_us = *all_latencies.last().expect("non-empty");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Hello;
    impl HttpHandler for Hello {
        fn handle(&self, req: &HttpRequest) -> HttpResponse {
            if req.path == "/exhibit/x" || req.path == "/account/eos/a" {
                HttpResponse::ok(b"hello".to_vec())
            } else {
                HttpResponse::status(404, "Not Found", b"nope".to_vec())
            }
        }
    }

    #[tokio::test]
    async fn serves_and_classifies_routes() {
        let h = spawn_query_server(Arc::new(Hello), QueryServerConfig::default())
            .await
            .unwrap();
        let sock = TcpStream::connect(h.addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        for (path, status) in
            [("/exhibit/x", 200), ("/account/eos/a", 200), ("/nope", 404)]
        {
            write_request(&mut stream, &HttpRequest::get(path)).await.unwrap();
            assert_eq!(read_response(&mut stream).await.unwrap().status, status);
        }
        assert_eq!(h.routes.exhibit.requests.get(), 1);
        assert_eq!(h.routes.account.requests.get(), 1);
        assert_eq!(h.routes.other.requests.get(), 1);
        assert_eq!(h.routes.exhibit.latency.total(), 1);
        assert_eq!(h.routes.total_shed(), 0);
    }

    #[tokio::test]
    async fn admission_sheds_with_429_and_counts() {
        let cfg = QueryServerConfig {
            rate_per_sec: 1.0,
            burst: 3.0,
            ..QueryServerConfig::default()
        };
        let h = spawn_query_server(Arc::new(Hello), cfg).await.unwrap();
        let sock = TcpStream::connect(h.addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        let mut codes = Vec::new();
        for _ in 0..20 {
            write_request(&mut stream, &HttpRequest::get("/exhibit/x")).await.unwrap();
            codes.push(read_response(&mut stream).await.unwrap().status);
        }
        let shed = codes.iter().filter(|c| **c == 429).count();
        let served = codes.iter().filter(|c| **c == 200).count();
        assert!(shed >= 15, "shed={shed} codes={codes:?}");
        assert!(served >= 3, "served={served}");
        let s = &h.routes.exhibit;
        assert_eq!(s.shed.get(), shed as u64);
        assert_eq!(s.served.get(), served as u64);
        assert_eq!(s.requests.get(), 20);
        // Only served requests are timed.
        assert_eq!(s.latency.total(), served as u64);
        assert!(s.latency.quantile_us(0.5) <= s.latency.quantile_us(0.99));
    }

    #[tokio::test]
    async fn load_generator_reports_mix_and_quantiles() {
        let h = spawn_query_server(Arc::new(Hello), QueryServerConfig::default())
            .await
            .unwrap();
        let plan = LoadPlan {
            connections: 4,
            requests_per_conn: 25,
            paths: vec!["/exhibit/x".into(), "/account/eos/a".into()],
        };
        let r = run_load(h.addr, &plan).await;
        assert_eq!(r.sent, 100);
        assert_eq!(r.ok, 100);
        assert_eq!((r.shed, r.errors), (0, 0));
        assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us);
        assert!(r.req_per_sec() > 0.0);
    }
}
