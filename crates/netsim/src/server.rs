//! Endpoint servers: HTTP (EOS, Tezos) and NDJSON (XRP) over loopback TCP,
//! each wrapped in an [`EndpointSim`] behaviour model with shared stats.

use crate::endpoint::{EndpointProfile, EndpointSim, EndpointStats, Gate};
use crate::http::{
    read_request, request_wire_size, response_wire_size, write_response, HttpRequest,
    HttpResponse,
};
use crate::ndjson::{read_frame, write_frame};
use serde_json::{json, Value};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::io::BufStream;
use tokio::net::TcpListener;
use tokio::task::JoinHandle;

/// An HTTP request handler (sync — chain lookups are in-memory).
pub trait HttpHandler: Send + Sync + 'static {
    fn handle(&self, req: &HttpRequest) -> HttpResponse;
}

/// An NDJSON command handler.
pub trait JsonHandler: Send + Sync + 'static {
    fn handle(&self, request: &Value) -> Value;
}

/// A running endpoint: address, behaviour stats, and its accept-loop task.
pub struct EndpointHandle {
    pub name: String,
    pub addr: SocketAddr,
    pub stats: Arc<EndpointStats>,
    task: JoinHandle<()>,
}

impl EndpointHandle {
    pub fn shutdown(&self) {
        self.task.abort();
    }
}

impl Drop for EndpointHandle {
    fn drop(&mut self) {
        self.task.abort();
    }
}

/// Spawn an HTTP endpoint with the given behaviour profile.
pub async fn spawn_http(
    handler: Arc<dyn HttpHandler>,
    profile: EndpointProfile,
) -> std::io::Result<EndpointHandle> {
    let listener = TcpListener::bind("127.0.0.1:0").await?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(EndpointStats::default());
    let sim = Arc::new(EndpointSim::new(profile.clone()));
    let stats2 = stats.clone();
    let task = tokio::spawn(async move {
        loop {
            let (sock, _) = match listener.accept().await {
                Ok(x) => x,
                Err(_) => break,
            };
            let handler = handler.clone();
            let sim = sim.clone();
            let stats = stats2.clone();
            tokio::spawn(async move {
                let mut stream = BufStream::new(sock);
                loop {
                    let req = match read_request(&mut stream).await {
                        Ok(Some(r)) => r,
                        _ => break,
                    };
                    let _in_flight = stats.enter();
                    stats.requests.inc();
                    stats
                        .bytes_in
                        .add(request_wire_size(&req) as u64);
                    let (gate, delay) = sim.gate();
                    if !delay.is_zero() {
                        tokio::time::sleep(delay).await;
                    }
                    let resp = match gate {
                        Gate::Fault => {
                            stats.faults.inc();
                            break; // connection reset
                        }
                        Gate::RateLimited => {
                            stats.rate_limited.inc();
                            HttpResponse::status(429, "Too Many Requests", b"{\"error\":\"rate limited\"}".to_vec())
                        }
                        Gate::Proceed => {
                            stats.served.inc();
                            handler.handle(&req)
                        }
                    };
                    stats
                        .bytes_out
                        .add(response_wire_size(&resp) as u64);
                    if write_response(&mut stream, &resp).await.is_err() {
                        break;
                    }
                }
            });
        }
    });
    Ok(EndpointHandle { name: profile.name, addr, stats, task })
}

/// Spawn an NDJSON endpoint (the XRP websocket-equivalent).
pub async fn spawn_ndjson(
    handler: Arc<dyn JsonHandler>,
    profile: EndpointProfile,
) -> std::io::Result<EndpointHandle> {
    let listener = TcpListener::bind("127.0.0.1:0").await?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(EndpointStats::default());
    let sim = Arc::new(EndpointSim::new(profile.clone()));
    let stats2 = stats.clone();
    let task = tokio::spawn(async move {
        loop {
            let (sock, _) = match listener.accept().await {
                Ok(x) => x,
                Err(_) => break,
            };
            let handler = handler.clone();
            let sim = sim.clone();
            let stats = stats2.clone();
            tokio::spawn(async move {
                let mut stream = BufStream::new(sock);
                loop {
                    let (req, nbytes) = match read_frame(&mut stream).await {
                        Ok(Some(x)) => x,
                        _ => break,
                    };
                    let _in_flight = stats.enter();
                    stats.requests.inc();
                    stats.bytes_in.add(nbytes as u64);
                    let (gate, delay) = sim.gate();
                    if !delay.is_zero() {
                        tokio::time::sleep(delay).await;
                    }
                    let resp = match gate {
                        Gate::Fault => {
                            stats.faults.inc();
                            break;
                        }
                        Gate::RateLimited => {
                            stats.rate_limited.inc();
                            json!({"id": req.get("id").cloned().unwrap_or(Value::Null),
                                   "status": "error", "error": "slowDown"})
                        }
                        Gate::Proceed => {
                            stats.served.inc();
                            handler.handle(&req)
                        }
                    };
                    match write_frame(&mut stream, &resp).await {
                        Ok(n) => {
                            stats.bytes_out.add(n as u64);
                        }
                        Err(_) => break,
                    }
                }
            });
        }
    });
    Ok(EndpointHandle { name: profile.name, addr, stats, task })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request};
    use tokio::net::TcpStream;

    struct Echo;
    impl HttpHandler for Echo {
        fn handle(&self, req: &HttpRequest) -> HttpResponse {
            HttpResponse::ok(req.body.clone())
        }
    }

    struct Pong;
    impl JsonHandler for Pong {
        fn handle(&self, request: &Value) -> Value {
            json!({"id": request["id"].clone(), "status": "success", "pong": true})
        }
    }

    #[tokio::test]
    async fn http_endpoint_serves_and_counts() {
        let h = spawn_http(Arc::new(Echo), EndpointProfile::generous("e", 1)).await.unwrap();
        let sock = TcpStream::connect(h.addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        write_request(&mut stream, &HttpRequest::post("/x", b"hello".to_vec())).await.unwrap();
        let resp = read_response(&mut stream).await.unwrap();
        assert_eq!(resp.body, b"hello");
        let (req, served, limited, _, bin, bout) = h.stats.snapshot();
        assert_eq!((req, served, limited), (1, 1, 0));
        assert!(bin > 5 && bout > 5);
    }

    #[tokio::test]
    async fn http_endpoint_rate_limits() {
        let mut p = EndpointProfile::generous("tight", 2);
        p.rate_limit_per_sec = 1.0;
        p.burst = 2.0;
        p.latency_ms = 0.0;
        p.jitter_ms = 0.0;
        let h = spawn_http(Arc::new(Echo), p).await.unwrap();
        let sock = TcpStream::connect(h.addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        let mut codes = Vec::new();
        for _ in 0..6 {
            write_request(&mut stream, &HttpRequest::get("/")).await.unwrap();
            codes.push(read_response(&mut stream).await.unwrap().status);
        }
        assert!(codes.iter().filter(|c| **c == 429).count() >= 3, "{codes:?}");
        assert!(codes.iter().filter(|c| **c == 200).count() >= 2, "{codes:?}");
    }

    #[tokio::test]
    async fn ndjson_endpoint_serves() {
        let h = spawn_ndjson(Arc::new(Pong), EndpointProfile::generous("x", 3)).await.unwrap();
        let sock = TcpStream::connect(h.addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        write_frame(&mut stream, &json!({"id": 7, "command": "ping"})).await.unwrap();
        let (resp, _) = read_frame(&mut stream).await.unwrap().unwrap();
        assert_eq!(resp["id"], 7);
        assert_eq!(resp["pong"], true);
    }

    #[tokio::test]
    async fn faulty_endpoint_drops_connections() {
        let mut p = EndpointProfile::generous("flaky", 4);
        p.fault_rate = 1.0;
        p.latency_ms = 0.0;
        let h = spawn_http(Arc::new(Echo), p).await.unwrap();
        let sock = TcpStream::connect(h.addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        write_request(&mut stream, &HttpRequest::get("/")).await.unwrap();
        assert!(read_response(&mut stream).await.is_err(), "connection dropped");
        assert_eq!(h.stats.faults.get(), 1);
    }
}
