//! Endpoint behaviour simulation: latency, token-bucket rate limiting and
//! fault injection.
//!
//! §3.1: of 32 advertised EOS endpoints the authors shortlisted 6 "with a
//! generous rate limit, stable latency and throughput". Reproducing that
//! selection requires endpoints that genuinely differ in those dimensions —
//! this module provides the knobs.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The quarter-octave latency histogram began life in this module and now
/// lives in `txstat_telemetry` (promoted in the telemetry PR) together
/// with the counter/gauge primitives `EndpointStats` is built from.
pub use txstat_telemetry::{Counter, Gauge, Histogram as LatencyHistogram};

/// Behaviour profile of one simulated endpoint.
#[derive(Debug, Clone)]
pub struct EndpointProfile {
    /// Human label ("bp-one.example").
    pub name: String,
    /// Mean added latency per request.
    pub latency_ms: f64,
    /// Uniform jitter added on top of the mean, ± this amount.
    pub jitter_ms: f64,
    /// Sustained requests per second before 429s.
    pub rate_limit_per_sec: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// Probability a request is dropped mid-flight (connection reset).
    pub fault_rate: f64,
    /// RNG seed for the endpoint's jitter/faults.
    pub seed: u64,
}

impl EndpointProfile {
    /// A fast, generous endpoint (the kind the paper shortlists).
    pub fn generous(name: &str, seed: u64) -> Self {
        EndpointProfile {
            name: name.into(),
            latency_ms: 2.0,
            jitter_ms: 1.0,
            rate_limit_per_sec: 5_000.0,
            burst: 5_000.0,
            fault_rate: 0.0,
            seed,
        }
    }

    /// A stingy endpoint: slow, tight limit, flaky.
    pub fn stingy(name: &str, seed: u64) -> Self {
        EndpointProfile {
            name: name.into(),
            latency_ms: 40.0,
            jitter_ms: 30.0,
            rate_limit_per_sec: 20.0,
            burst: 10.0,
            fault_rate: 0.05,
            seed,
        }
    }
}

/// Classic token bucket over a monotonic clock.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate_per_sec: f64,
    last: std::time::Instant,
}

impl TokenBucket {
    pub fn new(rate_per_sec: f64, capacity: f64) -> Self {
        TokenBucket {
            capacity,
            tokens: capacity,
            rate_per_sec,
            last: std::time::Instant::now(),
        }
    }

    /// Try to take one token.
    pub fn try_take(&mut self) -> bool {
        self.try_take_at(std::time::Instant::now())
    }

    /// Try to take one token at an explicit instant. Refill is computed from
    /// the previous call's instant, so tests can drive a virtual clock
    /// instead of sleeping wall-clock time.
    pub fn try_take_at(&mut self, now: std::time::Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        // Never move the watermark backward: a stale instant must not let a
        // later call re-credit an interval that was already refilled.
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Outcome of gating one request through an endpoint's behaviour model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Serve it (after the returned artificial delay).
    Proceed,
    /// Reply 429 / slow-down.
    RateLimited,
    /// Drop the connection.
    Fault,
}

/// Shared per-endpoint counters (observable by tests and the crawler
/// report), built from the `txstat_telemetry` instruments so route classes
/// can be registered into a metrics registry for `/metrics` exposition.
#[derive(Debug, Default)]
pub struct EndpointStats {
    pub requests: Counter,
    pub served: Counter,
    pub rate_limited: Counter,
    pub faults: Counter,
    pub bytes_in: Counter,
    pub bytes_out: Counter,
    /// Requests currently being handled (between read and response write).
    /// Its high-water mark (`Gauge::peak`) records peak concurrency: a
    /// backpressured streaming consumer keeps this bounded by the
    /// crawler's worker count — when the ingest channels fill, the crawl
    /// workers park *before* issuing the next request, so the stall is
    /// visible server-side as a plateau here rather than a growing
    /// request backlog.
    pub in_flight: Gauge,
    /// Requests refused 429 by *admission control* (serving-layer load
    /// shedding), as opposed to `rate_limited` which counts the simulated
    /// endpoint behaviour model's 429s.
    pub shed: Counter,
    /// Service latency of served requests (admission → response written).
    pub latency: LatencyHistogram,
}

/// RAII guard bumping an endpoint's in-flight gauge for one request.
pub struct InFlightGuard<'a>(&'a EndpointStats);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.dec();
    }
}

impl EndpointStats {
    /// Mark one request in flight until the returned guard drops.
    pub fn enter(&self) -> InFlightGuard<'_> {
        self.in_flight.inc();
        InFlightGuard(self)
    }

    /// Peak concurrent in-flight requests.
    pub fn max_in_flight(&self) -> u64 {
        self.in_flight.peak()
    }

    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.requests.get(),
            self.served.get(),
            self.rate_limited.get(),
            self.faults.get(),
            self.bytes_in.get(),
            self.bytes_out.get(),
        )
    }
}

/// The live behaviour state of one endpoint.
pub struct EndpointSim {
    pub profile: EndpointProfile,
    bucket: Mutex<TokenBucket>,
    rng: Mutex<StdRng>,
}

impl EndpointSim {
    pub fn new(profile: EndpointProfile) -> Self {
        let bucket = TokenBucket::new(profile.rate_limit_per_sec, profile.burst);
        let rng = StdRng::seed_from_u64(profile.seed);
        EndpointSim { profile, bucket: Mutex::new(bucket), rng: Mutex::new(rng) }
    }

    /// Gate one request: returns the decision plus the artificial latency
    /// to apply before answering.
    pub fn gate(&self) -> (Gate, Duration) {
        let mut rng = self.rng.lock();
        let jitter: f64 = rng.gen_range(-1.0..1.0f64) * self.profile.jitter_ms;
        let delay = Duration::from_micros(
            ((self.profile.latency_ms + jitter).max(0.0) * 1_000.0) as u64,
        );
        if self.profile.fault_rate > 0.0 && rng.gen::<f64>() < self.profile.fault_rate {
            return (Gate::Fault, delay);
        }
        drop(rng);
        if !self.bucket.lock().try_take() {
            return (Gate::RateLimited, delay);
        }
        (Gate::Proceed, delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_burst_then_rate() {
        // Drive a virtual clock through `try_take_at` — no wall-clock sleeps.
        let mut b = TokenBucket::new(1000.0, 5.0);
        let start = std::time::Instant::now();
        let granted = (0..10).filter(|_| b.try_take_at(start)).count();
        // Only the burst is instantly available.
        assert_eq!(granted, 5, "granted={granted}");
        assert!(!b.try_take_at(start), "burst exhausted");
        // 20 virtual milliseconds refill 20 tokens at 1000/s (capped at the
        // burst capacity of 5).
        let later = start + Duration::from_millis(20);
        let refilled = (0..10).filter(|_| b.try_take_at(later)).count();
        assert_eq!(refilled, 5, "refill is capped at burst capacity");
        // A stale instant (before `last`) must not panic or mint tokens —
        // and must not rewind the watermark so the same interval refills
        // twice on the next in-order call.
        assert!(!b.try_take_at(start), "clock going backwards grants nothing");
        assert!(!b.try_take_at(later), "stale call must not re-credit [start, later)");
    }

    #[test]
    fn generous_endpoint_proceeds() {
        let e = EndpointSim::new(EndpointProfile::generous("fast", 1));
        for _ in 0..100 {
            let (g, d) = e.gate();
            assert_eq!(g, Gate::Proceed);
            assert!(d < Duration::from_millis(5));
        }
    }

    #[test]
    fn stingy_endpoint_throttles_and_faults() {
        let e = EndpointSim::new(EndpointProfile::stingy("slow", 2));
        let mut limited = 0;
        let mut faults = 0;
        for _ in 0..200 {
            match e.gate().0 {
                Gate::RateLimited => limited += 1,
                Gate::Fault => faults += 1,
                Gate::Proceed => {}
            }
        }
        assert!(limited > 100, "limited={limited}");
        assert!(faults > 0, "faults={faults}");
    }

    // (The latency-histogram bucket/quantile tests moved to
    // `txstat_telemetry::metrics` together with the histogram itself.)

    #[test]
    fn endpoint_stats_track_in_flight_peak() {
        let s = EndpointStats::default();
        {
            let _a = s.enter();
            let _b = s.enter();
            assert_eq!(s.in_flight.get(), 2);
        }
        assert_eq!(s.in_flight.get(), 0);
        assert_eq!(s.max_in_flight(), 2);
    }

    #[test]
    fn deterministic_fault_sequence() {
        let a = EndpointSim::new(EndpointProfile::stingy("x", 7));
        let b = EndpointSim::new(EndpointProfile::stingy("x", 7));
        let ga: Vec<Gate> = (0..50).map(|_| a.gate().0).collect();
        let gb: Vec<Gate> = (0..50).map(|_| b.gate().0).collect();
        // Fault decisions are seed-deterministic; rate limiting depends on
        // wall-clock, so compare only fault positions.
        let fa: Vec<bool> = ga.iter().map(|g| *g == Gate::Fault).collect();
        let fb: Vec<bool> = gb.iter().map(|g| *g == Gate::Fault).collect();
        assert_eq!(fa, fb);
    }
}
