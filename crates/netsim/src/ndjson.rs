//! Newline-delimited JSON framing over TCP — the workspace's stand-in for
//! the XRP websocket API (§3.1, DESIGN.md substitution table).
//!
//! Request/response semantics of the `ledger` method are preserved: each
//! line is one JSON object; responses echo the request `id`.

use serde_json::Value;
use tokio::io::{AsyncBufReadExt, AsyncWrite, AsyncWriteExt, BufStream};
use tokio::net::TcpStream;

/// Framing errors.
#[derive(Debug)]
pub enum NdjsonError {
    Io(std::io::Error),
    Parse(serde_json::Error),
    Closed,
    LineTooLong(usize),
}

impl From<std::io::Error> for NdjsonError {
    fn from(e: std::io::Error) -> Self {
        NdjsonError::Io(e)
    }
}

impl std::fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NdjsonError::Io(e) => write!(f, "io: {e}"),
            NdjsonError::Parse(e) => write!(f, "json: {e}"),
            NdjsonError::Closed => write!(f, "connection closed"),
            NdjsonError::LineTooLong(n) => write!(f, "line of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for NdjsonError {}

/// Upper bound on a single frame.
pub const MAX_LINE: usize = 64 * 1024 * 1024;

/// Read one JSON frame; `Ok(None)` on clean EOF.
pub async fn read_frame(
    stream: &mut BufStream<TcpStream>,
) -> Result<Option<(Value, usize)>, NdjsonError> {
    let mut line = String::new();
    let n = stream.read_line(&mut line).await?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE {
        return Err(NdjsonError::LineTooLong(n));
    }
    let v = serde_json::from_str(line.trim_end()).map_err(NdjsonError::Parse)?;
    Ok(Some((v, n)))
}

/// Write one JSON frame; returns bytes written.
pub async fn write_frame<W: AsyncWrite + Unpin>(
    w: &mut W,
    value: &Value,
) -> Result<usize, NdjsonError> {
    let mut text = serde_json::to_string(value).map_err(NdjsonError::Parse)?;
    text.push('\n');
    w.write_all(text.as_bytes()).await?;
    w.flush().await?;
    Ok(text.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use tokio::net::TcpListener;

    #[tokio::test]
    async fn frames_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        let server = tokio::spawn(async move {
            let (sock, _) = listener.accept().await.unwrap();
            let mut stream = BufStream::new(sock);
            loop {
                match read_frame(&mut stream).await.unwrap() {
                    None => break,
                    Some((v, _)) => {
                        let id = v["id"].clone();
                        write_frame(&mut stream, &json!({"id": id, "status": "success"}))
                            .await
                            .unwrap();
                    }
                }
            }
        });
        let sock = TcpStream::connect(addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        for i in 0..3 {
            write_frame(&mut stream, &json!({"id": i, "command": "ledger"})).await.unwrap();
            let (resp, bytes) = read_frame(&mut stream).await.unwrap().unwrap();
            assert_eq!(resp["id"], i);
            assert_eq!(resp["status"], "success");
            assert!(bytes > 10);
        }
        drop(stream);
        server.await.unwrap();
    }

    #[tokio::test]
    async fn parse_error_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let addr = listener.local_addr().unwrap();
        tokio::spawn(async move {
            let (sock, _) = listener.accept().await.unwrap();
            use tokio::io::AsyncWriteExt;
            let mut sock = sock;
            sock.write_all(b"this is not json\n").await.unwrap();
        });
        let sock = TcpStream::connect(addr).await.unwrap();
        let mut stream = BufStream::new(sock);
        assert!(matches!(
            read_frame(&mut stream).await,
            Err(NdjsonError::Parse(_))
        ));
    }
}
