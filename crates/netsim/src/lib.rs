//! # txstat-netsim — the network substrate
//!
//! The paper's measurements were taken over real node RPC interfaces: EOS
//! HTTP endpoints run by block producers (6 shortlisted of 32 advertised,
//! by rate limit and latency), a self-hosted Tezos node RPC, and the XRP
//! community websocket endpoint (§3.1). This crate reproduces that surface
//! over loopback TCP:
//!
//! - [`http`] — a minimal HTTP/1.1 implementation (requests, responses,
//!   keep-alive, Content-Length bodies) on tokio.
//! - [`ndjson`] — newline-delimited JSON framing standing in for the XRP
//!   websocket (request/response semantics preserved).
//! - [`endpoint`] — per-endpoint behaviour: latency + jitter, token-bucket
//!   rate limiting (HTTP 429 / `slowDown`), fault injection.
//! - [`server`] — endpoint tasks serving a handler through the behaviour
//!   model, with byte/request accounting.
//! - [`handlers`] — the chain RPC handlers (EOS `get_block`, Tezos block
//!   RPC, XRP `ledger`), plus substitutes for the Ripple Data API
//!   (`exchange_rates`) and XRP Scan (`account_info`).
//! - [`serve`] — the serving layer: the same HTTP substrate promoted from
//!   test scaffolding into our own long-lived query service, with
//!   token-bucket admission, explicit 429 load shedding, per-route-class
//!   latency/shed counters, and the load generator that drives it.
//! - [`chaos`] — the endpoint fault vocabulary promoted to a standalone
//!   fault-injecting TCP proxy (resets, truncation, bit-flips, latency)
//!   between real processes, for exercising the wire layer's typed damage
//!   rejection over a live transport.

pub mod chaos;
pub mod endpoint;
pub mod handlers;
pub mod http;
pub mod ndjson;
pub mod serve;
pub mod server;

pub use chaos::{spawn_chaos_proxy, ChaosHandle, ChaosProfile, ChaosStats};
pub use endpoint::{
    EndpointProfile, EndpointSim, EndpointStats, Gate, LatencyHistogram, TokenBucket,
};
pub use handlers::{EosRpcHandler, TezosRpcHandler, XrpRpcHandler};
pub use http::{HttpRequest, HttpResponse};
pub use serve::{
    run_load, spawn_query_server, LoadPlan, LoadReport, QueryServerConfig, QueryServerHandle,
    RouteStats,
};
pub use server::{spawn_http, spawn_ndjson, EndpointHandle, HttpHandler, JsonHandler};
