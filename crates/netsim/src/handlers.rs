//! Chain RPC handlers: the node APIs the paper crawled, served from
//! simulated chains.
//!
//! - EOS: `POST /v1/chain/get_info`, `POST /v1/chain/get_block` (§3.1).
//! - Tezos: `GET /chains/main/blocks/head`, `GET /chains/main/blocks/{level}`.
//! - XRP: NDJSON `server_info` / `ledger` commands, plus two extension
//!   commands standing in for out-of-band services the paper used:
//!   `account_info` (XRP Scan usernames/parents) and `exchange_rates`
//!   (the Ripple Data API).

use crate::http::{HttpRequest, HttpResponse};
use crate::server::{HttpHandler, JsonHandler};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::Arc;
use txstat_eos::chain::EosChain;
use txstat_eos::rpc_model as eos_rpc;
use txstat_tezos::chain::TezosChain;
use txstat_tezos::rpc_model as tezos_rpc;
use txstat_xrp::amount::IssuedCurrency;
use txstat_xrp::ledger::XrpLedger;
use txstat_xrp::rates::RateOracle;
use txstat_xrp::rpc_model as xrp_rpc;
use txstat_xrp::AccountId;
use txstat_types::time::ChainTime;

fn json_ok(v: &Value) -> HttpResponse {
    HttpResponse::ok(serde_json::to_vec(v).expect("serializable"))
}

fn json_error(status: u16, reason: &str, message: &str) -> HttpResponse {
    HttpResponse::status(
        status,
        reason,
        serde_json::to_vec(&json!({"error": message})).expect("serializable"),
    )
}

// ---- EOS --------------------------------------------------------------------

/// Serves the EOS node RPC from a generated chain.
pub struct EosRpcHandler {
    chain: Arc<EosChain>,
}

impl EosRpcHandler {
    pub fn new(chain: Arc<EosChain>) -> Self {
        EosRpcHandler { chain }
    }
}

impl HttpHandler for EosRpcHandler {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/chain/get_info") => {
                let head = self.chain.head_block_num();
                let info = eos_rpc::GetInfoJson {
                    chain_id: "aca376f206b8fc25a6ed44dbdc66547c36c6c33e3a119ffbeaef943642f0e906"
                        .to_owned(),
                    head_block_num: head,
                    head_block_time: self
                        .chain
                        .block_by_num(head)
                        .map(|b| b.time.iso_string())
                        .unwrap_or_default(),
                    last_irreversible_block_num: head.saturating_sub(325),
                    server_version_string: "v1.8.txstat-sim".to_owned(),
                };
                json_ok(&serde_json::to_value(info).expect("serializable"))
            }
            ("POST", "/v1/chain/get_block") => {
                let body: Value = match serde_json::from_slice(&req.body) {
                    Ok(v) => v,
                    Err(_) => return json_error(400, "Bad Request", "invalid json body"),
                };
                let num = match body.get("block_num_or_id").and_then(Value::as_u64) {
                    Some(n) => n,
                    None => return json_error(400, "Bad Request", "missing block_num_or_id"),
                };
                match self.chain.block_by_num(num) {
                    Some(block) => {
                        let wire = eos_rpc::block_to_json(block);
                        json_ok(&serde_json::to_value(wire).expect("serializable"))
                    }
                    None => json_error(404, "Not Found", "unknown block"),
                }
            }
            _ => json_error(404, "Not Found", "unknown endpoint"),
        }
    }
}

// ---- Tezos ------------------------------------------------------------------

/// Serves the Tezos node RPC from a generated chain.
pub struct TezosRpcHandler {
    chain: Arc<TezosChain>,
}

impl TezosRpcHandler {
    pub fn new(chain: Arc<TezosChain>) -> Self {
        TezosRpcHandler { chain }
    }
}

impl HttpHandler for TezosRpcHandler {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        if req.method != "GET" {
            return json_error(405, "Method Not Allowed", "GET only");
        }
        let suffix = match req.path.strip_prefix("/chains/main/blocks/") {
            Some(s) => s,
            None => return json_error(404, "Not Found", "unknown endpoint"),
        };
        let level = if suffix == "head" {
            self.chain.head_level()
        } else {
            match suffix.parse::<u64>() {
                Ok(l) => l,
                Err(_) => return json_error(400, "Bad Request", "bad level"),
            }
        };
        match self.chain.block_by_level(level) {
            Some(block) => {
                let wire = tezos_rpc::block_to_json(block);
                json_ok(&serde_json::to_value(wire).expect("serializable"))
            }
            None => json_error(404, "Not Found", "unknown level"),
        }
    }
}

// ---- XRP --------------------------------------------------------------------

/// Serves the XRP websocket-equivalent (NDJSON) from a generated ledger,
/// including the Data-API and XRP-Scan substitute commands.
pub struct XrpRpcHandler {
    ledger: Arc<XrpLedger>,
    usernames: HashMap<AccountId, String>,
}

impl XrpRpcHandler {
    pub fn new(ledger: Arc<XrpLedger>, usernames: HashMap<AccountId, String>) -> Self {
        XrpRpcHandler { ledger, usernames }
    }

    fn reply(&self, id: Value, result: Value) -> Value {
        json!({"id": id, "status": "success", "type": "response", "result": result})
    }

    fn error(&self, id: Value, message: &str) -> Value {
        json!({"id": id, "status": "error", "error": message})
    }
}

impl JsonHandler for XrpRpcHandler {
    fn handle(&self, request: &Value) -> Value {
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        match request.get("command").and_then(Value::as_str) {
            Some("server_info") => self.reply(
                id,
                json!({
                    "info": {
                        "validated_ledger": { "seq": self.ledger.head_index() },
                        "complete_ledgers": format!(
                            "{}-{}",
                            self.ledger.config.start_index,
                            self.ledger.head_index()
                        ),
                    }
                }),
            ),
            Some("ledger") => {
                let index = match request.get("ledger_index").and_then(Value::as_u64) {
                    Some(i) => i,
                    None => return self.error(id, "invalidParams"),
                };
                match self.ledger.ledger_by_index(index) {
                    Some(block) => self.reply(id, xrp_rpc::ledger_to_json(block)),
                    None => self.error(id, "lgrNotFound"),
                }
            }
            Some("account_info") => {
                let account: AccountId = match request
                    .get("account")
                    .and_then(Value::as_str)
                    .and_then(|s| s.parse().ok())
                {
                    Some(a) => a,
                    None => return self.error(id, "actMalformed"),
                };
                match self.ledger.account(account) {
                    Some(root) => self.reply(
                        id,
                        json!({
                            "account": account.to_string(),
                            "username": self.usernames.get(&account),
                            "parent": root.activated_by.map(|p| p.to_string()),
                            "activated_at": root.activated_at.iso_string(),
                            "balance_drops": root.balance_drops.to_string(),
                        }),
                    ),
                    None => self.error(id, "actNotFound"),
                }
            }
            // Data-API `exchanges` equivalent: the individual exchange
            // events of one issued currency (Figure 11b's source).
            Some("exchanges") => {
                let (currency, issuer) = match (
                    request.get("currency").and_then(Value::as_str),
                    request
                        .get("issuer")
                        .and_then(Value::as_str)
                        .and_then(|s| s.parse::<AccountId>().ok()),
                ) {
                    (Some(c), Some(i)) => (c, i),
                    _ => return self.error(id, "invalidParams"),
                };
                let ic = IssuedCurrency::new(currency, issuer);
                let events: Vec<Value> = self
                    .ledger
                    .trades
                    .iter()
                    .filter(|t| t.currency == ic)
                    .map(|t| {
                        json!({
                            "time": t.time.iso_string(),
                            "maker": t.maker.to_string(),
                            "rate": t.rate(),
                            "iou_value": t.iou_value.to_string(),
                            "drops": t.drops.to_string(),
                        })
                    })
                    .collect();
                self.reply(id, json!({"exchanges": events}))
            }
            Some("exchange_rates") => {
                let (currency, issuer, date) = match (
                    request.get("currency").and_then(Value::as_str),
                    request
                        .get("issuer")
                        .and_then(Value::as_str)
                        .and_then(|s| s.parse::<AccountId>().ok()),
                    request
                        .get("date")
                        .and_then(Value::as_str)
                        .and_then(ChainTime::parse_iso),
                ) {
                    (Some(c), Some(i), Some(d)) => (c, i, d),
                    _ => return self.error(id, "invalidParams"),
                };
                let window = request.get("period_days").and_then(Value::as_i64).unwrap_or(30);
                let oracle = RateOracle::from_trades(&self.ledger.trades, date, window);
                let ic = IssuedCurrency::new(currency, issuer);
                self.reply(
                    id,
                    json!({
                        "currency": currency,
                        "issuer": issuer.to_string(),
                        "rate": oracle.rate(ic).unwrap_or(0.0),
                        "traded": oracle.rate(ic).is_some(),
                    }),
                )
            }
            _ => self.error(id, "unknownCmd"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txstat_eos::chain::ChainConfig;
    use txstat_tezos::chain::TezosConfig;
    use txstat_tezos::MUTEZ_PER_TEZ;
    use txstat_xrp::ledger::LedgerConfig;

    #[test]
    fn eos_handler_serves_info_and_blocks() {
        let mut chain = EosChain::new(ChainConfig::default());
        chain.produce_block(vec![]);
        chain.produce_block(vec![]);
        let h = EosRpcHandler::new(Arc::new(chain));
        let resp = h.handle(&HttpRequest::post("/v1/chain/get_info", b"{}".to_vec()));
        assert!(resp.is_ok());
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["head_block_num"], 82_024_738);

        let resp = h.handle(&HttpRequest::post(
            "/v1/chain/get_block",
            br#"{"block_num_or_id": 82024737}"#.to_vec(),
        ));
        assert!(resp.is_ok());
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["block_num"], 82_024_737);

        let resp = h.handle(&HttpRequest::post(
            "/v1/chain/get_block",
            br#"{"block_num_or_id": 1}"#.to_vec(),
        ));
        assert_eq!(resp.status, 404);
        let resp = h.handle(&HttpRequest::post("/v1/chain/get_block", b"not json".to_vec()));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn tezos_handler_serves_levels() {
        let mut chain = TezosChain::new(TezosConfig::default());
        chain
            .register_baker(txstat_tezos::Address::implicit(1), 50_000 * MUTEZ_PER_TEZ)
            .unwrap();
        chain.produce_block(vec![]);
        chain.produce_block(vec![]);
        let h = TezosRpcHandler::new(Arc::new(chain));
        let resp = h.handle(&HttpRequest::get("/chains/main/blocks/head"));
        assert!(resp.is_ok());
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["header"]["level"], 628_952);
        let resp = h.handle(&HttpRequest::get("/chains/main/blocks/628951"));
        assert!(resp.is_ok());
        let resp = h.handle(&HttpRequest::get("/chains/main/blocks/999999999"));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn xrp_handler_serves_ledgers_and_metadata() {
        let mut ledger = XrpLedger::new(LedgerConfig::default());
        ledger.bootstrap_account(AccountId(500), 100 * 1_000_000, Some(AccountId(100)));
        ledger.close_ledger();
        let mut names = HashMap::new();
        names.insert(AccountId(100), "Genesis".to_owned());
        let h = XrpRpcHandler::new(Arc::new(ledger), names);

        let resp = h.handle(&json!({"id": 1, "command": "server_info"}));
        assert_eq!(resp["status"], "success");
        assert_eq!(resp["result"]["info"]["validated_ledger"]["seq"], 50_400_001);

        let resp = h.handle(&json!({"id": 2, "command": "ledger", "ledger_index": 50_400_001}));
        assert_eq!(resp["status"], "success");
        assert_eq!(resp["result"]["ledger"]["ledger_index"], 50_400_001);

        let resp = h.handle(&json!({"id": 3, "command": "ledger", "ledger_index": 1}));
        assert_eq!(resp["status"], "error");
        assert_eq!(resp["error"], "lgrNotFound");

        let acct = AccountId(500).to_string();
        let resp = h.handle(&json!({"id": 4, "command": "account_info", "account": acct}));
        assert_eq!(resp["status"], "success");
        assert_eq!(resp["result"]["parent"], AccountId(100).to_string());

        let resp = h.handle(&json!({
            "id": 5, "command": "exchange_rates",
            "currency": "BTC", "issuer": AccountId(100).to_string(),
            "date": "2020-01-01T00:00:00"
        }));
        assert_eq!(resp["status"], "success");
        assert_eq!(resp["result"]["traded"], false);

        let resp = h.handle(&json!({"id": 6, "command": "nonsense"}));
        assert_eq!(resp["error"], "unknownCmd");
    }
}
