//! Chaos proxy: a fault-injecting TCP relay between real processes.
//!
//! [`endpoint`](crate::endpoint) models misbehaving RPC endpoints *inside*
//! a simulated server; this module promotes the same fault vocabulary
//! (latency + jitter, connection drops, plus stream truncation and
//! bit-flips) to a standalone socket proxy, so the typed damage rejection
//! in `txstat_wire` — envelope hashes, length caps, truncation errors —
//! gets exercised over a live transport between a real reducer and real
//! shard workers.
//!
//! ```text
//!   reducer ──TCP──▶ chaos proxy ──TCP──▶ worker
//!                      │ per connection, per direction: one seeded roll
//!                      │   fault_rate     → reset the connection mid-stream
//!                      │   truncate_rate  → forward a prefix, then half-close
//!                      │   flip_rate      → XOR one bit, forward the rest
//!                      │   otherwise      → relay faithfully (after latency)
//! ```
//!
//! Faults are decided **per connection**, not per chunk: a 5% fault rate
//! means 5% of exchanges die, independent of message size, so a reducer
//! with a bounded retry budget converges at the expected rate. All
//! decisions derive from the profile seed and the connection index —
//! a chaos run is exactly reproducible.

use rand::rngs::StdRng;
use rand::Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txstat_telemetry::{registry, Counter};
use txstat_types::rng::rng_for_n;

/// Behaviour profile of the proxy. Rates are probabilities per connection
/// direction; their sum is clamped to 1.0 in priority order (reset, then
/// truncate, then flip).
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Human label for logs and stats.
    pub name: String,
    /// Mean delay added before each direction starts relaying.
    pub latency_ms: f64,
    /// Uniform jitter on top of the mean, ± this amount.
    pub jitter_ms: f64,
    /// Probability the connection is reset mid-stream.
    pub fault_rate: f64,
    /// Probability the stream is truncated (a prefix is forwarded, then
    /// the write side is closed).
    pub truncate_rate: f64,
    /// Probability exactly one bit of the stream is flipped.
    pub flip_rate: f64,
    /// Master seed; per-connection decisions derive from it.
    pub seed: u64,
}

impl ChaosProfile {
    /// A faithful relay: no faults, no added latency.
    pub fn clean(name: &str, seed: u64) -> Self {
        ChaosProfile {
            name: name.into(),
            latency_ms: 0.0,
            jitter_ms: 0.0,
            fault_rate: 0.0,
            truncate_rate: 0.0,
            flip_rate: 0.0,
            seed,
        }
    }

    /// The acceptance-criteria profile: 5% of connections die, a little
    /// corruption and delay on top.
    pub fn flaky(name: &str, seed: u64) -> Self {
        ChaosProfile {
            name: name.into(),
            latency_ms: 1.0,
            jitter_ms: 1.0,
            fault_rate: 0.05,
            truncate_rate: 0.02,
            flip_rate: 0.02,
            seed,
        }
    }
}

/// What one pump direction will do to its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    Clean,
    /// Reset the whole proxied connection once `after` bytes have passed.
    Reset { after: usize },
    /// Forward exactly `after` bytes, then close the write side.
    Truncate { after: usize },
    /// XOR one bit of the byte at stream offset `at`.
    Flip { at: usize },
}

/// Connection-direction fault decisions, drawn from a per-connection rng.
fn draw_plan(p: &ChaosProfile, rng: &mut StdRng) -> Plan {
    let r: f64 = rng.r#gen();
    // Fault offsets land inside the first 512 bytes: requests are a few
    // hundred bytes and responses far larger, so both directions get hit
    // mid-message rather than past the end of short streams.
    let offset = rng.gen_range(0..512usize);
    if r < p.fault_rate {
        Plan::Reset { after: offset }
    } else if r < p.fault_rate + p.truncate_rate {
        Plan::Truncate { after: offset }
    } else if r < p.fault_rate + p.truncate_rate + p.flip_rate {
        Plan::Flip { at: offset }
    } else {
        Plan::Clean
    }
}

/// Live counters of one proxy, registered in the process-global telemetry
/// registry (families `txstat_chaos_*`).
pub struct ChaosStats {
    pub connections: Arc<Counter>,
    pub resets: Arc<Counter>,
    pub truncations: Arc<Counter>,
    pub flips: Arc<Counter>,
}

impl ChaosStats {
    fn new() -> Self {
        let reg = registry();
        let stats = ChaosStats {
            connections: reg
                .counter("txstat_chaos_connections_total", "Connections relayed by chaos proxies"),
            resets: reg.counter("txstat_chaos_resets_total", "Connections reset by chaos proxies"),
            truncations: reg
                .counter("txstat_chaos_truncations_total", "Streams truncated by chaos proxies"),
            flips: reg.counter("txstat_chaos_flips_total", "Bits flipped by chaos proxies"),
        };
        // Touch so the families render at zero.
        stats.connections.add(0);
        stats.resets.add(0);
        stats.truncations.add(0);
        stats.flips.add(0);
        stats
    }
}

/// A running chaos proxy; dropping it leaves the proxy running (detached),
/// call [`ChaosHandle::stop`] for an orderly shutdown.
pub struct ChaosHandle {
    /// The address clients connect to.
    pub addr: SocketAddr,
    pub stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ChaosHandle {
    /// Stop accepting new connections and join the accept loop. In-flight
    /// relays finish on their own.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
    }
}

/// Start a chaos proxy listening on `listen` (e.g. `127.0.0.1:0`) and
/// relaying every connection to `upstream` through `profile`'s fault model.
pub fn spawn_chaos_proxy(
    listen: &str,
    upstream: String,
    profile: ChaosProfile,
) -> std::io::Result<ChaosHandle> {
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ChaosStats::new());
    let accept_thread = {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            let mut conn_index = 0u64;
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        stats.connections.inc();
                        relay(client, &upstream, &profile, conn_index, &stats);
                        conn_index += 1;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        })
    };
    Ok(ChaosHandle { addr, stats, stop, accept_thread })
}

/// Wire one accepted client to a fresh upstream connection: two pump
/// threads, one per direction, each with its own seeded fault plan.
fn relay(
    client: TcpStream,
    upstream: &str,
    profile: &ChaosProfile,
    conn_index: u64,
    stats: &Arc<ChaosStats>,
) {
    let _ = client.set_nonblocking(false);
    let Ok(server) = TcpStream::connect(upstream) else {
        // Upstream down: the client sees an immediate close — exactly the
        // reset failure mode the reducer must survive.
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    for (label, from, to) in [
        ("up", client.try_clone(), server.try_clone()),
        ("down", server.try_clone(), client.try_clone()),
    ] {
        let (Ok(from), Ok(to)) = (from, to) else { continue };
        let mut rng = rng_for_n(profile.seed, label, conn_index);
        let plan = draw_plan(profile, &mut rng);
        let jitter: f64 = rng.gen_range(-1.0..1.0f64) * profile.jitter_ms;
        let delay =
            Duration::from_micros(((profile.latency_ms + jitter).max(0.0) * 1_000.0) as u64);
        let stats = Arc::clone(stats);
        std::thread::spawn(move || pump(from, to, plan, delay, &stats));
    }
}

/// Relay one direction byte-for-byte, enacting the plan at its offset.
fn pump(mut from: TcpStream, mut to: TcpStream, plan: Plan, delay: Duration, stats: &ChaosStats) {
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
    let mut pos = 0usize;
    let mut buf = [0u8; 8192];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        match plan {
            Plan::Reset { after } if pos + n > after => {
                stats.resets.inc();
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return;
            }
            Plan::Truncate { after } if pos + n > after => {
                stats.truncations.inc();
                let _ = to.write_all(&chunk[..after - pos]);
                let _ = to.shutdown(Shutdown::Write);
                // Drain the rest so the sender does not block on a dead pipe.
                while matches!(from.read(&mut buf), Ok(n) if n > 0) {}
                return;
            }
            Plan::Flip { at } if (pos..pos + n).contains(&at) => {
                stats.flips.inc();
                chunk[at - pos] ^= 0x01;
            }
            _ => {}
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        pos += n;
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes whatever it receives, one connection at a
    /// time, until dropped.
    fn spawn_echo_upstream() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 || s.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        addr
    }

    fn exchange(addr: &SocketAddr, msg: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(2)))?;
        s.write_all(msg)?;
        s.shutdown(Shutdown::Write)?;
        let mut out = Vec::new();
        s.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn clean_proxy_relays_faithfully() {
        let upstream = spawn_echo_upstream();
        let h = spawn_chaos_proxy("127.0.0.1:0", upstream, ChaosProfile::clean("clean", 1))
            .expect("proxy starts");
        let msg: Vec<u8> = (0..2000u32).flat_map(|i| i.to_le_bytes()).collect();
        let back = exchange(&h.addr, &msg).expect("echo");
        assert_eq!(back, msg);
        assert_eq!(h.stats.resets.get(), 0);
        h.stop();
    }

    #[test]
    fn flip_proxy_corrupts_exactly_one_bit_per_direction() {
        let upstream = spawn_echo_upstream();
        let mut p = ChaosProfile::clean("flip", 7);
        p.flip_rate = 1.0;
        let h = spawn_chaos_proxy("127.0.0.1:0", upstream, p).expect("proxy starts");
        let msg = vec![0u8; 4096];
        let back = exchange(&h.addr, &msg).expect("echo");
        assert_eq!(back.len(), msg.len(), "flips never change length");
        let flipped: u32 =
            back.iter().zip(&msg).map(|(a, b)| (a ^ b).count_ones()).sum();
        // One flip on the way up, one on the way down — they can land on
        // the same byte-and-bit and cancel to zero visible flips, but with
        // distinct per-direction seeds they land apart here.
        assert!((1..=2).contains(&flipped), "flipped bits: {flipped}");
        assert!(h.stats.flips.get() >= 1);
        h.stop();
    }

    #[test]
    fn reset_proxy_kills_the_stream_early() {
        let upstream = spawn_echo_upstream();
        let mut p = ChaosProfile::clean("reset", 11);
        p.fault_rate = 1.0;
        let h = spawn_chaos_proxy("127.0.0.1:0", upstream, p).expect("proxy starts");
        let msg = vec![7u8; 65536];
        // Either the write fails (reset on the way up) or the echo comes
        // back incomplete — never the full faithful round trip.
        if let Ok(back) = exchange(&h.addr, &msg) {
            assert!(back.len() < msg.len(), "reset must lose bytes");
        }
        assert!(h.stats.resets.get() >= 1);
        h.stop();
    }

    #[test]
    fn truncate_proxy_forwards_a_strict_prefix() {
        let upstream = spawn_echo_upstream();
        let mut p = ChaosProfile::clean("trunc", 13);
        p.truncate_rate = 1.0;
        let h = spawn_chaos_proxy("127.0.0.1:0", upstream, p).expect("proxy starts");
        let msg: Vec<u8> = (0..8192usize).map(|i| (i % 251) as u8).collect();
        if let Ok(back) = exchange(&h.addr, &msg) {
            assert!(back.len() < msg.len(), "truncation must shorten the stream");
            assert_eq!(back[..], msg[..back.len()], "what survives is a faithful prefix");
        }
        assert!(h.stats.truncations.get() >= 1);
        h.stop();
    }

    #[test]
    fn same_seed_same_fault_decisions() {
        let mut p = ChaosProfile::clean("det", 99);
        p.fault_rate = 0.3;
        p.truncate_rate = 0.3;
        p.flip_rate = 0.3;
        let plans_a: Vec<Plan> = (0..50)
            .map(|i| draw_plan(&p, &mut rng_for_n(p.seed, "up", i)))
            .collect();
        let plans_b: Vec<Plan> = (0..50)
            .map(|i| draw_plan(&p, &mut rng_for_n(p.seed, "up", i)))
            .collect();
        assert_eq!(plans_a, plans_b);
        assert!(plans_a.iter().any(|pl| *pl != Plan::Clean));
    }
}
