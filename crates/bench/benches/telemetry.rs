//! `telemetry/` benches: the cost of the instruments themselves (counter
//! bump, histogram record, span enter/exit) and — the number that matters
//! — the fused-report sweep with instrumentation armed vs dormant. The
//! paired arms drive the exact span layout `PipelineData::sweeps()` uses,
//! so their delta is the tracing tax on the hottest analytics path; the
//! contract is < 2% overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use txstat_bench::bench_data;
use txstat_core::{ChainSweeps, EosColumnar, TezosColumnar, XrpColumnar};
use txstat_reports::PipelineData;
use txstat_telemetry::{tracer, Histogram, Registry, Span, Tracer};

/// The fused-report workload in the production span layout: one `sweep`
/// span per chain around each columnar compute (what
/// `PipelineData::sweeps()` does on first use). Whether those spans cost
/// anything is decided entirely by the global tracer's state.
fn fused_sweeps(data: &PipelineData) -> ChainSweeps {
    let period = data.scenario.period;
    ChainSweeps {
        eos: {
            let _span = Span::enter("sweep", "eos");
            EosColumnar::compute(&data.eos_blocks, period)
        },
        tezos: {
            let _span = Span::enter("sweep", "tezos");
            TezosColumnar::compute(&data.tezos_blocks, period, &data.governance_periods)
        },
        xrp: {
            let _span = Span::enter("sweep", "xrp");
            XrpColumnar::compute(&data.xrp_blocks, period, &data.oracle)
        },
    }
}

fn telemetry(c: &mut Criterion) {
    let data = bench_data();
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(20);

    // Instrument micro-costs. Batched 1024 ops per iteration so the
    // harness's per-iteration clock reads don't drown the instrument.
    let registry = Registry::new();
    let counter = registry.counter("txstat_bench_ops_total", "bench counter");
    g.bench_function("counter_bump_x1024", |b| {
        b.iter(|| {
            for _ in 0..1024 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });

    let hist = Histogram::new();
    g.bench_function("histogram_record_x1024", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                hist.record_us(i * 37);
            }
            black_box(hist.total())
        })
    });

    let disabled = Tracer::new();
    g.bench_function("span_enter_exit_disabled_x1024", |b| {
        b.iter(|| {
            for _ in 0..1024 {
                let _span = disabled.span("bench", "off");
            }
        })
    });

    let enabled = Tracer::new();
    enabled.enable();
    g.bench_function("span_enter_exit_enabled_x1024", |b| {
        b.iter(|| {
            for _ in 0..1024 {
                let _span = enabled.span("bench", "on");
            }
        })
    });

    // The headline pair: identical workload, global tracer off vs on.
    tracer().disable();
    g.bench_function("fused_report_uninstrumented", |b| {
        b.iter(|| black_box(fused_sweeps(data)))
    });
    tracer().enable();
    g.bench_function("fused_report_instrumented", |b| {
        b.iter(|| black_box(fused_sweeps(data)))
    });
    tracer().disable();
    g.finish();

    // Print the measured overhead so runs (and CI logs) show the <2%
    // contract directly instead of leaving it to a diff of two rows.
    let time_one = |enable: bool| {
        if enable {
            tracer().enable();
        } else {
            tracer().disable();
        }
        let started = Instant::now();
        for _ in 0..3 {
            black_box(fused_sweeps(data));
        }
        started.elapsed().as_secs_f64() / 3.0
    };
    let off = time_one(false);
    let on = time_one(true);
    tracer().disable();
    println!(
        "telemetry overhead on fused sweeps: {:.3} ms off vs {:.3} ms on ({:+.2}%)",
        off * 1e3,
        on * 1e3,
        (on / off - 1.0) * 100.0
    );
}

criterion_group!(benches, telemetry);
criterion_main!(benches);
