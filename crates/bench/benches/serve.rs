//! `serve/` benches: the epoch-swapped query service's response path.
//!
//! The criterion arms measure the in-process serving path — cached hit vs
//! uncached render (what an epoch swap costs the first reader of each
//! route) — so the cache win is not drowned in socket noise. The trailing
//! load section then drives the real HTTP server with a netsim load
//! generator and appends saturation + latency-quantile rows in the same
//! JSON-lines format the criterion shim emits, so `bench_diff` tracks
//! them like any other group.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use txstat_bench::bench_scenario;
use txstat_ingest::EpochCell;
use txstat_netsim::{run_load, spawn_query_server, HttpHandler, LoadPlan, QueryServerConfig};
use txstat_reports::{generate, ServeSnapshot, StatsService};

fn service() -> Arc<StatsService> {
    let data = generate(&bench_scenario());
    let cell = Arc::new(EpochCell::new(Arc::new(ServeSnapshot::new(1, true, data))));
    let service = Arc::new(StatsService::new(cell));
    // Force the sweeps (and the fig2 storage memo) before timing anything.
    black_box(service.respond("GET", "/report"));
    service
}

fn serve(c: &mut Criterion) {
    let service = service();
    let eos_account = {
        let snap = service.snapshot();
        let top = snap.data().sweeps().eos.top_received(1);
        format!("/account/eos/{}", top[0].account.to_string_repr())
    };
    let mut g = c.benchmark_group("serve");
    g.sample_size(20);

    g.bench_function("report_cached", |b| {
        b.iter(|| black_box(service.respond("GET", "/report")))
    });
    g.bench_function("report_uncached", |b| {
        // An epoch swap retires the cache; first reader re-renders.
        b.iter_with_setup(
            || service.snapshot().clear_cache(),
            |_| black_box(service.respond("GET", "/report")),
        )
    });
    g.bench_function("exhibit_fig4_cached", |b| {
        b.iter(|| black_box(service.respond("GET", "/exhibit/fig4")))
    });
    g.bench_function("exhibit_fig4_uncached", |b| {
        b.iter_with_setup(
            || service.snapshot().clear_cache(),
            |_| black_box(service.respond("GET", "/exhibit/fig4")),
        )
    });
    g.bench_function("account_cached", |b| {
        b.iter(|| black_box(service.respond("GET", &eos_account)))
    });
    g.finish();
}

criterion_group!(benches, serve);

/// Substring filters + `--test`, parsed the same way the criterion shim
/// does, so this section obeys the harness CLI.
fn cli_wants(name: &str) -> bool {
    let mut test_mode = false;
    let mut filters: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" | "--bench" => test_mode = arg == "--test",
            a if a.starts_with('-') => {}
            a => filters.push(a.to_owned()),
        }
    }
    let _ = test_mode;
    filters.is_empty() || filters.iter().any(|f| name.contains(f))
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn append_bench_row(name: &str, ns: f64, samples: u64) {
    println!("bench {name}: {:.1} µs ({samples} samples)", ns / 1_000.0);
    if let Ok(path) = std::env::var("TXSTAT_BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"name\":\"{name}\",\"median_ns\":{ns:.1},\"min_ns\":{ns:.1},\"mean_ns\":{ns:.1},\"samples\":{samples}}}"
            );
        }
    }
}

/// Drive the real HTTP server to saturation with concurrent keep-alive
/// clients over a mixed query distribution and record throughput + tail
/// latency as bench rows.
fn load_section() {
    if !cli_wants("serve/load") {
        return;
    }
    let service = service();
    let env_usize = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<usize>().ok());
    let (default_conns, default_reqs) = if test_mode() { (4, 5) } else { (1000, 60) };
    let connections = env_usize("TXSTAT_SERVE_LOAD_CONNS").unwrap_or(default_conns);
    let requests_per_conn = env_usize("TXSTAT_SERVE_LOAD_REQS").unwrap_or(default_reqs);
    let mut paths: Vec<String> = ["headline", "fig1", "fig4", "fig7", "fig8", "comparison"]
        .iter()
        .map(|n| format!("/exhibit/{n}"))
        .collect();
    {
        let snap = service.snapshot();
        let sweeps = snap.data().sweeps();
        let top = sweeps.eos.top_received(1);
        paths.push(format!("/account/eos/{}", top[0].account.to_string_repr()));
        let tz = sweeps.tezos.top_senders(1);
        paths.push(format!("/account/tezos/{}", tz[0].sender));
    }

    let rt = tokio::runtime::Runtime::new().expect("runtime");
    rt.block_on(async move {
        let handler: Arc<dyn HttpHandler> = service.clone();
        let server = spawn_query_server(
            handler,
            QueryServerConfig {
                name: "serve-bench".to_owned(),
                bind: "127.0.0.1:0".to_owned(),
                rate_per_sec: 1_000_000.0,
                burst: 100_000.0,
                max_in_flight: 4096,
            },
        )
        .await
        .expect("spawn server");
        let plan = LoadPlan { connections, requests_per_conn, paths };
        let report = run_load(server.addr, &plan).await;
        assert_eq!(report.errors, 0, "load generator hit transport errors: {report:?}");
        println!(
            "serve load: {} requests over {connections} connections in {:.2?} → {:.0} req/s \
             (ok {}, shed {}; p50 {} µs, p99 {} µs, max {} µs; cache hits {}, misses {})",
            report.sent,
            report.elapsed,
            report.req_per_sec(),
            report.ok,
            report.shed,
            report.p50_us,
            report.p99_us,
            report.max_us,
            service.cache_hits.get(),
            service.cache_misses.get(),
        );
        let done = report.ok + report.shed;
        append_bench_row("serve/load_p50_latency", report.p50_us as f64 * 1_000.0, done);
        append_bench_row("serve/load_p99_latency", report.p99_us as f64 * 1_000.0, done);
        // Saturation throughput, inverted to ns/request so "lower is
        // better" holds for bench_diff like every other row.
        append_bench_row(
            "serve/saturation_ns_per_req",
            1e9 / report.req_per_sec().max(1.0),
            done,
        );
    });
}

fn main() {
    benches();
    load_section();
}
