//! `fleet/` benches: the fault-tolerant socket fleet's reduction path.
//!
//! Three arms over real loopback sockets: a clean 3-worker fleet (the
//! transport + scheduling tax over an in-process sweep), the same fleet
//! behind `ChaosProfile::flaky` proxies (what the retry/backoff machinery
//! costs when 5% of connections die), and a fleet with one permanently
//! dead address (what straggler re-dispatch costs per reduction). All
//! arms reduce the whole bench scenario end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::TcpListener;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use txstat_bench::bench_scenario;
use txstat_ingest::{reduce_fleet, serve_assignments, FleetConfig};
use txstat_netsim::{spawn_chaos_proxy, ChaosProfile};
use txstat_reports::{scenario_meta, ShardContext};
use txstat_wire::PayloadFormat;

/// Worker-side chain state, shared by every in-process worker thread.
fn ctx() -> &'static Arc<ShardContext> {
    static CTX: OnceLock<Arc<ShardContext>> = OnceLock::new();
    CTX.get_or_init(|| Arc::new(ShardContext::new(&bench_scenario())))
}

/// One real socket worker on an ephemeral port, accept loop detached.
fn spawn_worker() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
    let addr = listener.local_addr().expect("worker addr").to_string();
    let ctx = Arc::clone(ctx());
    std::thread::spawn(move || {
        let _ = serve_assignments(&listener, None, Duration::from_millis(2_000), |a| {
            ctx.frames(a.meta.clone(), a.start, a.end, a.shards, a.payload)
        });
    });
    addr
}

/// An address that refuses every connection: bound once, then dropped.
fn dead_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind dead");
    l.local_addr().expect("dead addr").to_string()
}

fn fleet(c: &mut Criterion) {
    let total = ctx().total_blocks();
    let meta = scenario_meta(&bench_scenario(), "bench");
    let workers: Vec<String> = (0..3).map(|_| spawn_worker()).collect();

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);

    g.bench_function("reduce_3workers_clean", |b| {
        let mut cfg = FleetConfig::new(workers.clone());
        cfg.chunks = 6;
        cfg.backoff_ms = 1;
        b.iter(|| {
            black_box(
                reduce_fleet(&cfg, total, 2, PayloadFormat::Bin, meta.clone())
                    .expect("clean fleet must converge"),
            )
        })
    });

    g.bench_function("reduce_3workers_flaky_proxy", |b| {
        let proxies: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(w, upstream)| {
                spawn_chaos_proxy(
                    "127.0.0.1:0",
                    upstream.clone(),
                    ChaosProfile::flaky(&format!("bench-w{w}"), 0xBEEF + w as u64),
                )
                .expect("spawn chaos proxy")
            })
            .collect();
        let mut cfg = FleetConfig::new(proxies.iter().map(|p| p.addr.to_string()).collect());
        cfg.chunks = 6;
        cfg.retries = 6;
        cfg.backoff_ms = 1;
        b.iter(|| {
            black_box(
                reduce_fleet(&cfg, total, 2, PayloadFormat::Bin, meta.clone())
                    .expect("flaky fleet must still converge"),
            )
        });
        for p in proxies {
            p.stop();
        }
    });

    g.bench_function("reduce_3workers_one_dead", |b| {
        // Two live workers plus a refused port: every reduction burns the
        // dead worker's retry budget and re-dispatches its leases, so the
        // arm prices straggler recovery, not just transport.
        let mut addrs = vec![workers[0].clone(), workers[1].clone()];
        addrs.push(dead_addr());
        let mut cfg = FleetConfig::new(addrs);
        cfg.chunks = 6;
        cfg.retries = 1;
        cfg.backoff_ms = 1;
        b.iter(|| {
            black_box(
                reduce_fleet(&cfg, total, 2, PayloadFormat::Bin, meta.clone())
                    .expect("survivors must absorb the dead worker's range"),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, fleet);
criterion_main!(benches);
