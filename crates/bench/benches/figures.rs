//! One bench per paper exhibit: each measures regenerating that table or
//! figure from the assembled dataset (the analytics cost, not chain
//! generation — the fixture is built once).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use txstat_bench::{bench_data, bench_scenario};
use txstat_reports::exhibits;

fn figures(c: &mut Criterion) {
    let data = bench_data();
    let sc = bench_scenario();
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);

    g.bench_function("fig1_distributions", |b| {
        b.iter(|| black_box(exhibits::fig1(data)))
    });
    g.bench_function("fig2_dataset_stats", |b| {
        // LZSS-samples every serialized block: the heavy exhibit.
        b.iter(|| black_box(exhibits::fig2(data)))
    });
    g.bench_function("fig3_throughput_series", |b| {
        b.iter(|| black_box(exhibits::fig3(data)))
    });
    g.bench_function("fig4_eos_top_received", |b| {
        b.iter(|| black_box(exhibits::fig4(data)))
    });
    g.bench_function("fig5_eos_top_senders", |b| {
        b.iter(|| black_box(exhibits::fig5(data)))
    });
    g.bench_function("fig6_tezos_senders", |b| {
        b.iter(|| black_box(exhibits::fig6(data)))
    });
    g.bench_function("fig7_value_funnel", |b| {
        b.iter(|| black_box(exhibits::fig7(data)))
    });
    g.bench_function("fig8_most_active", |b| {
        b.iter(|| black_box(exhibits::fig8(data)))
    });
    g.bench_function("fig9_governance_curves", |b| {
        b.iter(|| black_box(exhibits::fig9(data)))
    });
    g.bench_function("fig11_iou_rates", |b| {
        b.iter(|| black_box(exhibits::fig11(data)))
    });
    g.bench_function("fig12_value_flow", |b| {
        b.iter(|| black_box(exhibits::fig12(data)))
    });
    g.bench_function("headline_findings", |b| {
        b.iter(|| black_box(exhibits::headline(data)))
    });
    g.bench_function("case_studies", |b| {
        b.iter(|| black_box(exhibits::case_studies(data)))
    });
    g.bench_function("paper_comparison", |b| {
        b.iter(|| black_box(txstat_reports::comparison(data)))
    });
    g.finish();

    // Workload generation itself (chain simulation throughput).
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    g.bench_function("eos_chain", |b| {
        b.iter(|| black_box(txstat_workload::eos::build_eos(&sc)))
    });
    g.bench_function("tezos_chain", |b| {
        b.iter(|| black_box(txstat_workload::tezos::build_tezos(&sc)))
    });
    g.bench_function("xrp_ledger", |b| {
        b.iter(|| black_box(txstat_workload::xrp::build_xrp(&sc)))
    });
    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
