//! One bench per paper exhibit: each measures regenerating that table or
//! figure from the assembled dataset (the analytics cost, not chain
//! generation — the fixture is built once).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use txstat_bench::{bench_data, bench_scenario};
use txstat_core::{eos_analysis as eos, graph, tezos_analysis as tezos, xrp_analysis as xrp};
use txstat_core::{EosColumnar, EosSweep, TezosColumnar, TezosSweep, XrpColumnar, XrpSweep};
use txstat_ingest::{spawn_sharded, BlockSource, IngestOptions, MemorySource};
use txstat_reports::exhibits;

fn figures(c: &mut Criterion) {
    let data = bench_data();
    let sc = bench_scenario();
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);

    g.bench_function("fig1_distributions", |b| {
        b.iter(|| black_box(exhibits::fig1(data)))
    });
    g.bench_function("fig2_dataset_stats", |b| {
        // LZSS-samples every serialized block: the heavy exhibit.
        b.iter(|| black_box(exhibits::fig2(data)))
    });
    g.bench_function("fig3_throughput_series", |b| {
        b.iter(|| black_box(exhibits::fig3(data)))
    });
    g.bench_function("fig4_eos_top_received", |b| {
        b.iter(|| black_box(exhibits::fig4(data)))
    });
    g.bench_function("fig5_eos_top_senders", |b| {
        b.iter(|| black_box(exhibits::fig5(data)))
    });
    g.bench_function("fig6_tezos_senders", |b| {
        b.iter(|| black_box(exhibits::fig6(data)))
    });
    g.bench_function("fig7_value_funnel", |b| {
        b.iter(|| black_box(exhibits::fig7(data)))
    });
    g.bench_function("fig8_most_active", |b| {
        b.iter(|| black_box(exhibits::fig8(data)))
    });
    g.bench_function("fig9_governance_curves", |b| {
        b.iter(|| black_box(exhibits::fig9(data)))
    });
    g.bench_function("fig11_iou_rates", |b| {
        b.iter(|| black_box(exhibits::fig11(data)))
    });
    g.bench_function("fig12_value_flow", |b| {
        b.iter(|| black_box(exhibits::fig12(data)))
    });
    g.bench_function("headline_findings", |b| {
        b.iter(|| black_box(exhibits::headline(data)))
    });
    g.bench_function("case_studies", |b| {
        b.iter(|| black_box(exhibits::case_studies(data)))
    });
    g.bench_function("paper_comparison", |b| {
        b.iter(|| black_box(txstat_reports::comparison(data)))
    });
    g.finish();

    // Workload generation itself (chain simulation throughput).
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    g.bench_function("eos_chain", |b| {
        b.iter(|| black_box(txstat_workload::eos::build_eos(&sc)))
    });
    g.bench_function("tezos_chain", |b| {
        b.iter(|| black_box(txstat_workload::tezos::build_tezos(&sc)))
    });
    g.bench_function("xrp_ledger", |b| {
        b.iter(|| black_box(txstat_workload::xrp::build_xrp(&sc)))
    });
    g.finish();
}

/// The tentpole comparison: every exhibit statistic computed by the legacy
/// per-exhibit scans (one dedicated pass over the blocks per statistic,
/// single-threaded) versus the fused engine (one rayon map-reduce sweep per
/// chain producing all of them), plus the parallel-scaling profile of the
/// fused path at 1/2/N worker threads.
fn fused_report(c: &mut Criterion) {
    let data = bench_data();
    let period = data.scenario.period;
    let mut g = c.benchmark_group("fused_report");
    g.sample_size(10);

    g.bench_function("legacy_multipass", |b| {
        b.iter(|| {
            // EOS: 8 passes.
            let curated = eos::EosLabels::curated();
            let labels = eos::EosLabels::from_top_contracts(&data.eos_blocks, period, 100, &|n| {
                curated.get(n)
            });
            black_box(eos::action_distribution(&data.eos_blocks, period));
            black_box(eos::throughput_series(&data.eos_blocks, period, &labels));
            black_box(eos::top_received(&data.eos_blocks, period, 5));
            black_box(eos::top_senders(&data.eos_blocks, period, 5));
            black_box(eos::wash_trading_report(&data.eos_blocks, period));
            black_box(eos::boomerang_report(&data.eos_blocks, period));
            black_box(eos::tps(&data.eos_blocks, period));
            black_box(graph::eos_transfer_graph(&data.eos_blocks, period).report(3));
            // Tezos: 6 passes.
            black_box(tezos::op_distribution(&data.tezos_blocks, period));
            black_box(tezos::throughput_series(&data.tezos_blocks, period));
            black_box(tezos::top_senders(&data.tezos_blocks, period, 5));
            black_box(tezos::governance_curves(
                &data.tezos_blocks,
                &data.governance_periods,
                &data.tezos_rolls,
            ));
            black_box(tezos::governance_op_count(&data.tezos_blocks, period));
            black_box(tezos::tps(&data.tezos_blocks, period));
            // XRP: 9 passes.
            black_box(xrp::tx_distribution(&data.xrp_blocks, period));
            black_box(xrp::throughput_series(&data.xrp_blocks, period));
            black_box(xrp::funnel(&data.xrp_blocks, period, &data.oracle));
            black_box(xrp::most_active(&data.xrp_blocks, period, 10, &data.cluster));
            black_box(xrp::value_flow(&data.xrp_blocks, period, &data.oracle, &data.cluster));
            black_box(xrp::payment_spike_buckets(&data.xrp_blocks, period, 3.0));
            black_box(xrp::concentration(&data.xrp_blocks, period));
            black_box(xrp::tps(&data.xrp_blocks, period));
            black_box(graph::xrp_payment_graph(&data.xrp_blocks, period).report(3));
        })
    });

    // Every finalization accessor, so each arm produces the same
    // figure-shaped outputs and the comparisons are work-for-work.
    let exercise = |e: EosSweep, t: TezosSweep, x: XrpSweep| {
        let curated = eos::EosLabels::curated();
        let labels = e.labels(100, &|n| curated.get(n));
        black_box(e.action_distribution());
        black_box(e.throughput_series(&labels));
        black_box(e.top_received(5));
        black_box(e.top_senders(5));
        black_box(e.wash_trading_report());
        black_box(e.boomerang_report());
        black_box(e.tps());
        black_box(e.graph().report(3));
        black_box(t.op_distribution());
        black_box(t.throughput_series().total());
        black_box(t.top_senders(5));
        black_box(t.governance_curves(&data.tezos_rolls));
        black_box(t.governance_op_count());
        black_box(t.tps());
        black_box(x.tx_distribution());
        black_box(x.throughput_series().total());
        black_box(x.funnel());
        black_box(x.most_active(10, &data.cluster));
        black_box(x.value_flow(&data.cluster));
        black_box(x.payment_spike_buckets(3.0));
        black_box(x.concentration());
        black_box(x.tps());
        black_box(x.graph().report(3));
        (e, t, x)
    };
    let three_sweeps = || {
        exercise(
            EosSweep::compute(&data.eos_blocks, period),
            TezosSweep::compute(&data.tezos_blocks, period, &data.governance_periods),
            XrpSweep::compute(&data.xrp_blocks, period, &data.oracle),
        )
    };
    g.bench_function("fused_three_sweeps", |b| b.iter(|| black_box(three_sweeps())));

    // The columnar engine over the same workload: interned ids, batched
    // tag-table classification, id-indexed counters, remap merges — then
    // finalized into the same scalar structs and pushed through the same
    // accessor battery (`compute` returns the finalized scalar sweeps).
    let columnar_sweeps = || {
        exercise(
            EosColumnar::compute(&data.eos_blocks, period),
            TezosColumnar::compute(&data.tezos_blocks, period, &data.governance_periods),
            XrpColumnar::compute(&data.xrp_blocks, period, &data.oracle),
        )
    };
    g.bench_function("columnar_three_sweeps", |b| b.iter(|| black_box(columnar_sweeps())));

    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut counts = vec![1usize, 2];
    if max_threads > 2 {
        counts.push(max_threads);
    }
    for threads in counts.clone() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        g.bench_function(format!("fused_sweeps_{threads}_threads"), |b| {
            b.iter(|| pool.install(|| black_box(three_sweeps())))
        });
    }
    for threads in counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        g.bench_function(format!("columnar_sweeps_{threads}_threads"), |b| {
            b.iter(|| pool.install(|| black_box(columnar_sweeps())))
        });
    }
    g.finish();
}

/// Streamed ingestion vs materialize-then-sweep over the EOS chain (the
/// heaviest accumulator): blocks flow through bounded channels into 1/2/N
/// shard workers and the shards merge, versus one `par_sweep` over the
/// materialized slice. Block references stream out of the static fixture,
/// so both arms pay zero per-block copies and the comparison isolates the
/// channel + shard-fold overhead.
fn fused_stream(c: &mut Criterion) {
    let data = bench_data();
    let period = data.scenario.period;
    let blocks: &'static [txstat_eos::Block] = &data.eos_blocks;
    let mut g = c.benchmark_group("fused_stream");
    g.sample_size(10);

    g.bench_function("materialize_then_sweep", |b| {
        b.iter(|| black_box(EosSweep::compute(blocks, period)))
    });

    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut counts = vec![1usize, 2];
    if max_threads > 2 {
        counts.push(max_threads);
    }
    for shards in counts {
        g.bench_function(format!("stream_{shards}_shards"), |b| {
            b.iter(|| {
                tokio::runtime::block_on(async {
                    let opts = IngestOptions { shards, channel_capacity: 256, label: "" };
                    let (sink, pool) = spawn_sharded(
                        opts,
                        move || EosSweep::new(period),
                        |acc: &mut EosSweep, _n, b: &&txstat_eos::Block| acc.observe(b),
                    );
                    let src = MemorySource::numbered(blocks.iter(), |b| b.num);
                    let producer = tokio::spawn(src.produce(sink));
                    let out = pool.finish().await;
                    producer.await.expect("producer").expect("memory source");
                    black_box(out.merged(|a, b| a.merge(b)))
                })
            })
        });
    }
    g.finish();
}

/// The distributed shard/merge boundary as a codec cost profile: encoding
/// k shard accumulators into wire frames, decoding them back, and a full
/// `ReduceSession` reduction (decode + validate + remap-merge + finalize),
/// against the in-process merge of the same k accumulators (no codec) —
/// the wire tax on top of the merge algebra.
///
/// The unsuffixed arms measure the **schema v2 binary-column** path (the
/// default shard payload since this group's 11.9 ms JSON recording); the
/// `_v1json` arms keep the v1 canonical-JSON path measured so the codec
/// gap stays visible in `BENCH_figures.json`.
fn wire_reduce(c: &mut Criterion) {
    use txstat_core::WireState;
    use txstat_ingest::{ReduceSession, ShardWorker};
    use txstat_wire::{PayloadFormat, ShardFrame};

    let data = bench_data();
    let period = data.scenario.period;
    let meta = txstat_reports::scenario_meta(&data.scenario, "bench");
    const K: u64 = 4;
    let total = data
        .eos_blocks
        .len()
        .max(data.tezos_blocks.len())
        .max(data.xrp_blocks.len()) as u64;
    let workers: Vec<ShardWorker> = (0..K)
        .map(|i| ShardWorker {
            start: i * total / K,
            end: if i == K - 1 { total } else { (i + 1) * total / K },
            base: 0,
            shards: 1,
            payload: PayloadFormat::Bin,
            meta: meta.clone(),
        })
        .collect();
    // The shard sweeps run once; the benches below measure the boundary,
    // not the sweeping.
    let frames: Vec<ShardFrame> = workers
        .iter()
        .flat_map(|w| {
            vec![
                w.eos_frame(&data.eos_blocks, period),
                w.tezos_frame(&data.tezos_blocks, period, &data.governance_periods),
                w.xrp_frame(&data.xrp_blocks, period, &data.oracle),
            ]
        })
        .collect();
    let bytes = txstat_wire::encode_all(&frames);
    let accs: Vec<(EosColumnar, TezosColumnar, XrpColumnar)> = workers
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let payload = |j: usize| &frames[i * 3 + j].payload[..];
            (
                EosColumnar::from_wire_bytes(payload(0)).expect("eos state"),
                TezosColumnar::from_wire_bytes(payload(1)).expect("tezos state"),
                XrpColumnar::from_wire_bytes(payload(2)).expect("xrp state"),
            )
        })
        .collect();
    // The same k accumulators as v1 JSON frames, for the comparison arms.
    let json_frames: Vec<ShardFrame> = accs
        .iter()
        .zip(&workers)
        .flat_map(|((e, t, x), w)| {
            use serde::Serialize as _;
            vec![
                ShardFrame::from_state("eos", w.start, w.end, 0, w.meta.clone(), &e.serialize()),
                ShardFrame::from_state("tezos", w.start, w.end, 0, w.meta.clone(), &t.serialize()),
                ShardFrame::from_state("xrp", w.start, w.end, 0, w.meta.clone(), &x.serialize()),
            ]
        })
        .collect();
    let json_bytes = txstat_wire::encode_all(&json_frames);

    let mut g = c.benchmark_group("wire_reduce");
    g.sample_size(10);
    g.bench_function("encode_k4_frames", |b| {
        b.iter(|| {
            black_box(
                accs.iter()
                    .zip(&workers)
                    .flat_map(|((e, t, x), w)| {
                        vec![
                            ShardFrame::from_columns("eos", w.start, w.end, 0, w.meta.clone(), e.to_wire_bytes()),
                            ShardFrame::from_columns("tezos", w.start, w.end, 0, w.meta.clone(), t.to_wire_bytes()),
                            ShardFrame::from_columns("xrp", w.start, w.end, 0, w.meta.clone(), x.to_wire_bytes()),
                        ]
                    })
                    .map(|f| f.encode().len())
                    .sum::<usize>(),
            )
        })
    });
    g.bench_function("decode_k4_frames", |b| {
        b.iter(|| {
            let frames = txstat_wire::decode_all(&bytes).expect("frames decode");
            for f in &frames {
                match f.header.chain.as_str() {
                    "eos" => {
                        black_box(EosColumnar::from_wire_bytes(&f.payload).expect("eos state"));
                    }
                    "tezos" => {
                        black_box(TezosColumnar::from_wire_bytes(&f.payload).expect("tezos state"));
                    }
                    _ => {
                        black_box(XrpColumnar::from_wire_bytes(&f.payload).expect("xrp state"));
                    }
                }
            }
            black_box(frames.len())
        })
    });
    g.bench_function("reduce_k4_frames", |b| {
        b.iter(|| {
            let mut session = ReduceSession::new();
            for f in txstat_wire::decode_all(&bytes).expect("frames decode") {
                session.submit(&f).expect("frame validates");
            }
            black_box(session.finalize().expect("complete coverage"))
        })
    });
    g.bench_function("decode_k4_frames_v1json", |b| {
        b.iter(|| {
            let frames = txstat_wire::decode_all(&json_bytes).expect("frames decode");
            for f in &frames {
                black_box(f.state().expect("payload parses"));
            }
            black_box(frames.len())
        })
    });
    g.bench_function("reduce_k4_frames_v1json", |b| {
        b.iter(|| {
            let mut session = ReduceSession::new();
            for f in txstat_wire::decode_all(&json_bytes).expect("frames decode") {
                session.submit(&f).expect("frame validates");
            }
            black_box(session.finalize().expect("complete coverage"))
        })
    });
    g.bench_function("inprocess_merge_k4", |b| {
        b.iter(|| {
            let mut it = accs.iter().cloned();
            let (mut e, mut t, mut x) = it.next().expect("k >= 1");
            for (e2, t2, x2) in it {
                e.merge(e2);
                t.merge(t2);
                x.merge(x2);
            }
            black_box((e.finalize(), t.finalize(), x.finalize()))
        })
    });
    g.finish();
}

criterion_group!(benches, figures, fused_report, fused_stream, wire_reduce);
criterion_main!(benches);
