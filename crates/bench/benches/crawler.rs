//! Crawler ablations: fetch throughput vs worker concurrency, and the
//! cost of endpoint benchmarking/shortlisting (§3.1 methodology).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use txstat_crawler::{crawl_eos, eos_head, Advertised, ClientConfig, RotatingPool};
use txstat_netsim::handlers::EosRpcHandler;
use txstat_netsim::server::spawn_http;
use txstat_netsim::EndpointProfile;
use txstat_types::time::{ChainTime, Period};
use txstat_workload::Scenario;

fn crawl_concurrency(c: &mut Criterion) {
    let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
    // A ~190-block EOS chain served by two generous endpoints.
    let mut sc = Scenario::small(42);
    sc.period = Period::new(
        ChainTime::from_ymd(2019, 10, 30),
        ChainTime::from_ymd(2019, 11, 3),
    );
    let chain = Arc::new(txstat_workload::eos::build_eos(&sc));
    let low = chain.config.start_block_num;
    let handler = Arc::new(EosRpcHandler::new(chain.clone()));
    let (pool, head) = rt.block_on(async {
        let a = spawn_http(handler.clone(), EndpointProfile::generous("a", 1)).await.unwrap();
        let b = spawn_http(handler.clone(), EndpointProfile::generous("b", 2)).await.unwrap();
        let pool = Arc::new(RotatingPool::new(vec![
            Advertised { name: a.name.clone(), addr: a.addr },
            Advertised { name: b.name.clone(), addr: b.addr },
        ]));
        // Keep the endpoints alive for the whole bench.
        std::mem::forget(a);
        std::mem::forget(b);
        let head = eos_head(&pool, &ClientConfig::default()).await.unwrap();
        (pool, head)
    });

    let mut g = c.benchmark_group("crawler");
    g.sample_size(10);
    for workers in [1usize, 4, 8] {
        g.bench_function(format!("crawl_192_blocks_workers_{workers}"), |b| {
            b.iter(|| {
                let crawl = rt
                    .block_on(crawl_eos(
                        pool.clone(),
                        ClientConfig::default(),
                        low,
                        head,
                        workers,
                    ))
                    .expect("crawl");
                black_box(crawl.blocks.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, crawl_concurrency);
criterion_main!(benches);
