//! `archive/` benches: the persistent segmented block archive.
//!
//! Four arms: sealing a dataset into an on-disk corpus (wire-JSON
//! encode, LZSS, hashing), replaying the sealed corpus's segments
//! (decompress and hash-verify), a full cold start
//! (`pipeline_from_archive`: replay plus per-block wire-JSON parse plus
//! sidecar rebuild), and the synthetic generator as the baseline the
//! cold start substitutes for. The archived bytes are the canonical
//! wire-JSON the crawl replay moves, so the parse cost dominates cold
//! start — the corpus stands in for a crawl, not for the (cheap,
//! synthetic) generator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;
use txstat_archive::Archive;
use txstat_reports::{generate, pipeline_from_archive, write_archive, PipelineData};
use txstat_workload::Scenario;

const SEGMENT_BLOCKS: u64 = 256;

/// The archived scenario must be a preset `scenario_from_meta` can
/// rebuild on cold start, so the benches use the plain small preset
/// rather than `bench_scenario()`'s customized window.
fn scenario() -> Scenario {
    Scenario::small(42)
}

/// The dataset the corpus holds, generated once per process.
fn dataset() -> &'static PipelineData {
    static DATA: OnceLock<PipelineData> = OnceLock::new();
    DATA.get_or_init(|| generate(&scenario()))
}

fn corpus_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("txstat-bench-archive-{tag}-{}", std::process::id()))
}

/// A sealed corpus of the dataset, written once per process.
fn sealed() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = corpus_dir("sealed");
        let _ = std::fs::remove_dir_all(&dir);
        write_archive(&dir, dataset(), "small", SEGMENT_BLOCKS).expect("seal bench corpus");
        dir
    })
}

fn archive(c: &mut Criterion) {
    let data = dataset();
    let mut g = c.benchmark_group("archive");
    g.sample_size(10);

    g.bench_function("seal_segment256", |b| {
        let dir = corpus_dir("seal");
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            black_box(write_archive(&dir, data, "small", SEGMENT_BLOCKS).expect("seal"));
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.bench_function("replay_all", |b| {
        let dir = sealed();
        b.iter(|| {
            let archive = Archive::open(dir).expect("open corpus");
            black_box(archive.replay_all().expect("replay"));
        });
    });

    g.bench_function("cold_start", |b| {
        let dir = sealed();
        b.iter(|| {
            black_box(pipeline_from_archive(dir).expect("cold start"));
        });
    });

    g.bench_function("generate_baseline", |b| {
        let sc = scenario();
        b.iter(|| {
            black_box(generate(&sc));
        });
    });

    g.finish();
    let _ = std::fs::remove_dir_all(sealed());
}

criterion_group!(benches, archive);
criterion_main!(benches);
