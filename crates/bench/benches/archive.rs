//! `archive/` benches: the persistent segmented block archive.
//!
//! Arms, per segment payload schema:
//!
//! - `seal_segment256` / `seal_v2` — sealing a dataset into an on-disk
//!   corpus (block encode, LZSS, hashing) in the v1 wire-JSON and v2
//!   columnar schemas.
//! - `replay_all` / `replay_all_v2` — replaying the sealed corpus's
//!   segments (decompress and hash-verify; v2 also parallelizes the
//!   decode across the rayon pool).
//! - `cold_start` / `cold_start_v2` — a full `pipeline_from_archive`:
//!   replay plus per-block parse plus sidecar rebuild. For v1 the
//!   wire-JSON parse dominates; v2's columnar decode is the tentpole
//!   speedup and is measured against `generate_baseline`, the synthetic
//!   generator the cold start substitutes for.
//! - `fleet_cached_vs_uncached/{cached,uncached}` — a shard worker
//!   answering an overlapping assignment set from the v2 corpus with the
//!   decoded-segment LRU warm (every segment decoded once) versus
//!   effectively cold (budget 0: only the newest decode stays resident).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;
use txstat_archive::Archive;
use txstat_reports::{
    generate, pipeline_from_archive, scenario_meta, write_archive, PipelineData, SegmentFormat,
    ShardContext,
};
use txstat_wire::PayloadFormat;
use txstat_workload::Scenario;

const SEGMENT_BLOCKS: u64 = 256;

/// The archived scenario must be a preset `scenario_from_meta` can
/// rebuild on cold start, so the benches use the plain small preset
/// rather than `bench_scenario()`'s customized window.
fn scenario() -> Scenario {
    Scenario::small(42)
}

/// The dataset the corpus holds, generated once per process.
fn dataset() -> &'static PipelineData {
    static DATA: OnceLock<PipelineData> = OnceLock::new();
    DATA.get_or_init(|| generate(&scenario()))
}

fn corpus_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("txstat-bench-archive-{tag}-{}", std::process::id()))
}

/// A sealed corpus of the dataset in the given schema, written once per
/// process.
fn sealed(format: SegmentFormat) -> &'static PathBuf {
    static V1: OnceLock<PathBuf> = OnceLock::new();
    static V2: OnceLock<PathBuf> = OnceLock::new();
    let (cell, tag) = match format {
        SegmentFormat::V1 => (&V1, "sealed-v1"),
        SegmentFormat::V2 => (&V2, "sealed-v2"),
    };
    cell.get_or_init(|| {
        let dir = corpus_dir(tag);
        let _ = std::fs::remove_dir_all(&dir);
        write_archive(&dir, dataset(), "small", SEGMENT_BLOCKS, format)
            .expect("seal bench corpus");
        dir
    })
}

/// The overlapping assignment set the fleet arms sweep: strided ranges
/// covering the corpus twice over, so a warm cache serves every repeat
/// visit from memory.
fn assignments(total: u64) -> Vec<(u64, u64)> {
    (0..8u64).map(|i| (i * total / 8, ((i + 2) * total / 8).min(total))).collect()
}

fn archive(c: &mut Criterion) {
    let data = dataset();
    let mut g = c.benchmark_group("archive");
    g.sample_size(10);

    for (name, format) in
        [("seal_segment256", SegmentFormat::V1), ("seal_v2", SegmentFormat::V2)]
    {
        g.bench_function(name, |b| {
            let dir = corpus_dir("seal");
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                black_box(
                    write_archive(&dir, data, "small", SEGMENT_BLOCKS, format).expect("seal"),
                );
            });
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    for (name, format) in [("replay_all", SegmentFormat::V1), ("replay_all_v2", SegmentFormat::V2)]
    {
        g.bench_function(name, |b| {
            let dir = sealed(format);
            b.iter(|| {
                let archive = Archive::open(dir).expect("open corpus");
                black_box(archive.replay_all().expect("replay"));
            });
        });
    }

    for (name, format) in [("cold_start", SegmentFormat::V1), ("cold_start_v2", SegmentFormat::V2)]
    {
        g.bench_function(name, |b| {
            let dir = sealed(format);
            b.iter(|| {
                black_box(pipeline_from_archive(dir).expect("cold start"));
            });
        });
    }

    g.bench_function("generate_baseline", |b| {
        let sc = scenario();
        b.iter(|| {
            black_box(generate(&sc));
        });
    });

    let total = data
        .eos_blocks
        .len()
        .max(data.tezos_blocks.len())
        .max(data.xrp_blocks.len()) as u64;
    let meta = scenario_meta(&data.scenario, "small");
    for (name, cache_mb) in
        [("fleet_cached_vs_uncached/cached", 1024u64), ("fleet_cached_vs_uncached/uncached", 0)]
    {
        g.bench_function(name, |b| {
            let (ctx, _) = ShardContext::from_archive_with(sealed(SegmentFormat::V2), cache_mb)
                .expect("cold start worker");
            let ranges = assignments(total);
            // Warm the first pass out of the measurement so the cached
            // arm measures steady-state assignment service.
            for &(a, e) in &ranges {
                ctx.frames(meta.clone(), a, e, 2, PayloadFormat::Bin).expect("warmup sweep");
            }
            b.iter(|| {
                for &(a, e) in &ranges {
                    black_box(
                        ctx.frames(meta.clone(), a, e, 2, PayloadFormat::Bin)
                            .expect("assignment sweep"),
                    );
                }
            });
        });
    }

    g.finish();
    let _ = std::fs::remove_dir_all(sealed(SegmentFormat::V1));
    let _ = std::fs::remove_dir_all(sealed(SegmentFormat::V2));
}

criterion_group!(benches, archive);
criterion_main!(benches);
