//! Ablation benches on the substrates: the design choices DESIGN.md calls
//! out (LZSS storage accounting, order-book matching, resource accounting,
//! name codec, classification throughput).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use txstat_eos::name::Name;
use txstat_eos::types::ActionData;
use txstat_types::amount::SymCode;
use txstat_types::lzss;
use txstat_xrp::amount::{Amount, Asset, IssuedCurrency};
use txstat_xrp::dex::Dex;
use txstat_xrp::AccountId;

fn synthetic_json(len: usize) -> Vec<u8> {
    let mut s = String::with_capacity(len + 128);
    let mut i = 0;
    while s.len() < len {
        s.push_str(&format!(
            r#"{{"block_num":{i},"producer":"eosbp{}","transactions":[{{"account":"eosio.token","name":"transfer","data":{{"from":"usr{}","to":"eidosonecoin","quantity":"0.1000 EOS"}}}}]}}"#,
            i % 21,
            i % 997
        ));
        i += 1;
    }
    s.truncate(len);
    s.into_bytes()
}

fn lzss_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("lzss");
    let payload = synthetic_json(64 * 1024);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("compress_64k_json", |b| b.iter(|| black_box(lzss::compress(&payload))));
    let compressed = lzss::compress(&payload);
    g.bench_function("decompress_64k_json", |b| {
        b.iter(|| black_box(lzss::decompress(&compressed).expect("valid stream")))
    });
    g.finish();
}

fn name_codec(c: &mut Criterion) {
    let names: Vec<String> = (0..1000)
        .map(|i| txstat_workload::eos::idx_name("bench", i).to_string_repr())
        .collect();
    let mut g = c.benchmark_group("eos_name_codec");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("parse_and_render_1k", |b| {
        b.iter(|| {
            for n in &names {
                let parsed = Name::parse(n).expect("valid");
                black_box(parsed.to_string_repr());
            }
        })
    });
    g.finish();
}

fn orderbook_matching(c: &mut Criterion) {
    let usd = Asset::Iou(IssuedCurrency::new("USD", AccountId(1)));
    let funds = |_a: AccountId, _s: Asset| 1_000_000_000i128;
    let mut g = c.benchmark_group("xrp_dex");
    g.throughput(Throughput::Elements(1_000));
    // Resting book of 1,000 offers, then a sweep that crosses 100 of them.
    g.bench_function("build_1k_book_and_sweep", |b| {
        b.iter(|| {
            let mut dex = Dex::new();
            for i in 0..1_000u64 {
                dex.create_offer(
                    AccountId(10 + i),
                    Amount { asset: usd, value: 100 },
                    Amount { asset: Asset::Xrp, value: 500 + (i % 400) as i128 },
                    funds,
                )
                .expect("offer placed");
            }
            let out = dex
                .create_offer(
                    AccountId(5),
                    Amount { asset: Asset::Xrp, value: 100 * 510 },
                    Amount { asset: usd, value: 100 * 100 },
                    funds,
                )
                .expect("sweep");
            black_box(out.fills.len())
        })
    });
    g.finish();
}

fn eos_resource_accounting(c: &mut Criterion) {
    use txstat_eos::resources::{ResourceConfig, ResourceState};
    let mut g = c.benchmark_group("eos_resources");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("charge_cpu_10k", |b| {
        b.iter(|| {
            let mut r = ResourceState::new(ResourceConfig::default());
            let account = Name::new("bencher");
            r.delegate(account, 0, 1_000_000).expect("stake");
            let now = txstat_types::time::ChainTime::from_ymd(2019, 10, 1);
            for i in 0..10_000u64 {
                let _ = r.charge_cpu(account, 50, now + i as i64);
            }
            black_box(r.cpu_used_us(account, now + 10_000))
        })
    });
    g.finish();
}

fn classification_throughput(c: &mut Criterion) {
    use txstat_core::eos_analysis::classify_action;
    let actions: Vec<(Name, ActionData)> = (0..10_000)
        .map(|i| {
            let name = match i % 5 {
                0 => "transfer",
                1 => "bidname",
                2 => "delegatebw",
                3 => "removetask",
                _ => "verifytrade2",
            };
            let data = if i % 5 == 0 {
                ActionData::Transfer {
                    from: Name::new("alice"),
                    to: Name::new("bob"),
                    symbol: SymCode::new("EOS"),
                    amount: 1,
                }
            } else {
                ActionData::Generic
            };
            (Name::new(name), data)
        })
        .collect();
    let mut g = c.benchmark_group("classification");
    g.throughput(Throughput::Elements(actions.len() as u64));
    g.bench_function("classify_10k_actions", |b| {
        b.iter(|| {
            for (name, data) in &actions {
                black_box(classify_action(*name, data));
            }
        })
    });
    g.finish();
}

fn congestion_controller(c: &mut Criterion) {
    use txstat_eos::resources::{ResourceConfig, ResourceState};
    let mut g = c.benchmark_group("eos_congestion");
    // Ablation: how many hot blocks until the elastic limit collapses, per
    // contraction ratio — the §4.1 responsiveness knob.
    for ratio in [0.99f64, 0.97, 0.92] {
        g.bench_function(format!("flip_blocks_ratio_{ratio}"), |b| {
            b.iter(|| {
                let cfg = ResourceConfig { contract_ratio: ratio, ..Default::default() };
                let mut r = ResourceState::new(cfg);
                let mut blocks = 0u32;
                while !r.congested() {
                    r.on_block(10_000_000);
                    blocks += 1;
                }
                black_box(blocks)
            })
        });
    }
    g.finish();
}

fn transfer_graph(c: &mut Criterion) {
    use txstat_core::graph::TransferGraph;
    let mut g = c.benchmark_group("transfer_graph");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("build_10k_edges_and_report", |b| {
        b.iter(|| {
            let mut graph: TransferGraph<u64> = TransferGraph::new();
            for i in 0..10_000u64 {
                graph.record(i % 500, (i * 7) % 900);
            }
            black_box(graph.report(10))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    lzss_benches,
    name_codec,
    orderbook_matching,
    eos_resource_accounting,
    classification_throughput,
    congestion_controller,
    transfer_graph
);
criterion_main!(benches);
