//! Shared bench fixtures: a small scenario's pipeline data, built once.

use std::sync::OnceLock;
use txstat_reports::{generate, PipelineData};
use txstat_types::time::{ChainTime, Period};
use txstat_workload::Scenario;

/// The bench scenario: a 12-day window straddling the EIDOS launch.
pub fn bench_scenario() -> Scenario {
    let mut sc = Scenario::small(42);
    sc.period = Period::new(
        ChainTime::from_ymd(2019, 10, 26),
        ChainTime::from_ymd(2019, 11, 7),
    );
    sc
}

/// Pipeline data for the bench scenario, built once per process.
pub fn bench_data() -> &'static PipelineData {
    static DATA: OnceLock<PipelineData> = OnceLock::new();
    DATA.get_or_init(|| generate(&bench_scenario()))
}
