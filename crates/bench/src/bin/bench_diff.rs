//! `bench-diff` — compare a fresh criterion run against the recorded
//! baseline and print per-benchmark speedups.
//!
//! Both inputs are the JSON-lines format the workspace's criterion shim
//! emits through `$TXSTAT_BENCH_JSON` (and that `BENCH_figures.json`
//! records): one `{"name", "median_ns", ...}` object per line.
//!
//! ```text
//! TXSTAT_BENCH_JSON=fresh.json cargo bench -p txstat_bench --bench figures -- fused_report
//! cargo run -p txstat_bench --bin bench_diff -- BENCH_figures.json fresh.json --groups fused_report
//! ```
//!
//! Prints `baseline → fresh (speedup ×)` per benchmark present in both
//! files; `--groups a,b` restricts to benchmarks whose `group/` prefix
//! matches. A requested group absent from either file (a newly added
//! group not yet in the baseline, or one retired from the bench) is a
//! **warning and a skip**, not an error — CI stays green while baselines
//! trail the benches. Exits non-zero only on unreadable/withered inputs
//! (nothing comparable at all and nothing skipped), so format rot is
//! still caught without failing on machine noise.

use serde_json::Value;
use std::process::ExitCode;

struct Entry {
    name: String,
    median_ns: f64,
}

fn parse_lines(path: &str) -> Result<Vec<Entry>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: bad JSON line: {e}", i + 1))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{}: missing name", i + 1))?
            .to_owned();
        let median_ns = v
            .get("median_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}:{}: missing median_ns", i + 1))?;
        out.push(Entry { name, median_ns });
    }
    Ok(out)
}

fn fmt_ms(ns: f64) -> String {
    if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let usage = "usage: bench_diff <baseline.json> <fresh.json> [--groups g1,g2]";
    let baseline_path = args.next().ok_or(usage)?;
    let fresh_path = args.next().ok_or(usage)?;
    let mut groups: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--groups" => {
                let list = args.next().ok_or("--groups needs a comma-separated list")?;
                groups.extend(list.split(',').map(|s| s.trim().to_owned()));
            }
            other => return Err(format!("unknown argument {other:?}\n{usage}")),
        }
    }
    let matches_group = |name: &str, g: &str| name.starts_with(&format!("{g}/")) || name == g;
    let in_groups =
        |name: &str| groups.is_empty() || groups.iter().any(|g| matches_group(name, g));

    let baseline = parse_lines(&baseline_path)?;
    let fresh = parse_lines(&fresh_path)?;

    // A requested group absent from exactly one file is warned about and
    // skipped, so pointing CI at a baseline that predates a new group (or
    // a bench that retired one) degrades gracefully. A group in *neither*
    // file stays a hard error — that's a typo'd or withered group name,
    // and silently skipping it would disarm the gate forever.
    let mut skipped = 0usize;
    for g in &groups {
        let in_baseline = baseline.iter().any(|e| matches_group(&e.name, g));
        let in_fresh = fresh.iter().any(|e| matches_group(&e.name, g));
        match (in_baseline, in_fresh) {
            (false, false) => {
                return Err(format!(
                    "group {g:?} matches nothing in {baseline_path} or {fresh_path}"
                ))
            }
            (false, true) => eprintln!(
                "bench_diff: warning: group {g:?} not in baseline {baseline_path} — skipped"
            ),
            (true, false) => {
                eprintln!("bench_diff: warning: group {g:?} not in fresh {fresh_path} — skipped")
            }
            (true, true) => continue,
        }
        skipped += 1;
    }

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for b in &baseline {
        if !in_groups(&b.name) {
            continue;
        }
        // Last fresh entry wins, so re-running a bench into the same JSON
        // file compares against the latest measurement.
        if let Some(f) = fresh.iter().rev().find(|f| f.name == b.name) {
            rows.push((b.name.clone(), b.median_ns, f.median_ns));
        }
    }
    if rows.is_empty() {
        let scope = if groups.is_empty() { String::new() } else { format!(" in groups {groups:?}") };
        if skipped > 0 {
            // Everything requested was a known skip: degraded, not broken.
            println!("nothing to compare{scope} ({skipped} group(s) skipped)");
            return Ok(());
        }
        return Err(format!(
            "no common benchmarks between {baseline_path} and {fresh_path}{scope}"
        ));
    }

    let name_w = rows.iter().map(|(n, ..)| n.len()).max().unwrap_or(0);
    println!("{:<name_w$}  {:>10}  {:>10}  {:>8}", "benchmark", "baseline", "fresh", "speedup");
    for (name, base, fresh) in &rows {
        println!(
            "{name:<name_w$}  {:>10}  {:>10}  {:>7.2}×",
            fmt_ms(*base),
            fmt_ms(*fresh),
            base / fresh.max(1.0),
        );
    }
    let fresh_only: Vec<&str> = fresh
        .iter()
        .filter(|f| in_groups(&f.name) && !baseline.iter().any(|b| b.name == f.name))
        .map(|f| f.name.as_str())
        .collect();
    if !fresh_only.is_empty() {
        println!("\nnot in baseline yet: {}", fresh_only.join(", "));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
