//! Append-only segmented block archive — the persistent corpus layer.
//!
//! Every `report`/`shard`/`follow`/`serve` run used to re-generate (or
//! re-crawl) its chains; this crate gives the whole pipeline one on-disk
//! corpus to cold-start from instead. The model is binned append-only
//! account storage (jito-solana's accounts files) and subspace's archiving
//! crate: immutable, hash-addressed segments that only ever grow at the
//! tail, plus a small validated index on the side.
//!
//! ## Layout
//!
//! An archive directory holds exactly two files:
//!
//! ```text
//! DIR/archive.seg     append-only segment data
//!   ┌────────────┬────────────┬──────┐
//!   │ segment 0  │ segment 1  │  …   │   each an LZSS stream; inside:
//!   └────────────┴────────────┴──────┘
//!     tag 1 (schema v1):                (colcodec varints)
//!       start, span,
//!       eos  count, count × bytes,      (length-prefixed wire JSON)
//!       tezos count, count × bytes,
//!       xrp  count, count × bytes
//!     tag 2 (schema v2):
//!       start, span,
//!       eos blob, tezos blob, xrp blob  (length-prefixed columnar runs,
//!                                        one per chain — the chain crates'
//!                                        `block_cols` encodings)
//!
//! DIR/archive.idx     sidecar index, rewritten atomically per seal
//!   magic "TXAR" · version · manifest str · sidecar bytes ·
//!   segment count · per segment {start, end, offset, comp_len,
//!   raw_len, fnv1a64(compressed bytes)} · trailing fnv1a64 of
//!   everything above (8 raw LE bytes)
//! ```
//!
//! Segments tile one global *block-position* space `[0, total)`: segment
//! `i` covers positions `[start, end)`, contiguous with its neighbours,
//! and stores — for each chain — the blocks whose position falls inside
//! the range (a chain shorter than the range simply contributes fewer
//! blocks). Schema v1 stores each block's wire-JSON bytes verbatim;
//! schema v2 stores one columnar run per chain (struct-of-arrays columns
//! with interned name/address tables, built by the chain crates'
//! `block_cols` codecs) whose decode equals the wire-JSON round trip —
//! so report output and the follow layer's reorg marks are identical
//! whichever schema fed them. The two tags coexist inside one archive:
//! a v1 corpus stays readable, and `--upgrade` re-seals it as v2.
//!
//! The manifest and sidecar are opaque to this crate (the reports layer
//! stores the scenario fingerprint and the non-block dataset — oracle
//! trades, account cluster, CPU-price history — in them); both are
//! covered by the index hash.
//!
//! ## Hardening
//!
//! [`Archive::open`] validates everything before returning: index magic,
//! version, index hash, range contiguity, offset arithmetic, and every
//! segment's content hash against the bytes actually on disk. Damaged or
//! truncated files surface as typed [`ArchiveError`]s naming the exact
//! segment and byte offset — never a panic, same discipline as the wire
//! codec (`txstat_wire`) and the column codec (`txstat_types::colcodec`).

use rayon::prelude::*;
use std::fmt;
use std::fs;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use txstat_telemetry::{registry, static_counter, Span};
use txstat_types::colcodec::{ColError, ColReader, ColWriter};
use txstat_types::ids::fnv1a64;
use txstat_types::lzss;

pub mod cache;

pub use cache::{CacheStats, SegmentCache};

/// Index file magic.
pub const ARCHIVE_MAGIC: [u8; 4] = *b"TXAR";
/// On-disk format version written by this build (v2: columnar segment
/// payloads). v1 indexes are still read — segments self-describe by tag.
pub const ARCHIVE_VERSION: u32 = 2;
/// Oldest on-disk format version this build still reads.
pub const ARCHIVE_MIN_VERSION: u32 = 1;
/// Segment data file name inside an archive directory.
pub const SEG_FILE: &str = "archive.seg";
/// Index file name inside an archive directory.
pub const IDX_FILE: &str = "archive.idx";
/// Segment payload tag: per-block wire-JSON bytes (schema v1).
const SEGMENT_TAG_V1: u8 = 1;
/// Segment payload tag: per-chain columnar runs (schema v2).
const SEGMENT_TAG_V2: u8 = 2;

// ---- errors ----------------------------------------------------------------

/// A typed archive failure. Decode-side variants name the segment and the
/// byte offset the damage was detected at.
#[derive(Debug)]
pub enum ArchiveError {
    /// Filesystem failure, with the path and operation that hit it.
    Io { path: PathBuf, op: &'static str, err: std::io::Error },
    /// The directory exists but holds no archive (or no index file).
    Missing { path: PathBuf },
    /// The index does not start with `TXAR`.
    BadMagic { path: PathBuf },
    /// The index declares a format version this build does not read.
    UnsupportedVersion { found: u32, expected: u32 },
    /// The index is too short to even hold its own trailer hash.
    IndexTooShort { len: usize },
    /// The index trailer hash does not match the index bytes.
    IndexHashMismatch { expected: u64, found: u64 },
    /// The index bytes fail structural decoding (offset inside).
    Index(ColError),
    /// Segment ranges do not tile the position space contiguously.
    NonContiguous { segment: usize, prev_end: u64, start: u64 },
    /// A segment declares an empty or inverted position range.
    BadRange { segment: usize, start: u64, end: u64 },
    /// A segment's recorded byte offset disagrees with its predecessors.
    BadOffset { segment: usize, expected: u64, found: u64 },
    /// The segment file ends before a segment the index promises — the
    /// classic torn-write truncation. Offsets are into `archive.seg`.
    SegTruncated { segment: usize, offset: u64, need: u64, have: u64 },
    /// The segment file is longer than the index accounts for.
    SegTrailingBytes { expected: u64, found: u64 },
    /// A segment's bytes do not hash to the index's record — bit damage
    /// at or after `offset` in `archive.seg`.
    SegHashMismatch { segment: usize, offset: u64, expected: u64, found: u64 },
    /// A segment's LZSS stream or decompressed payload is malformed.
    /// `offset` is the segment's base offset in `archive.seg`; `at` the
    /// offset inside the (decompressed) payload where decoding failed.
    SegCorrupt { segment: usize, offset: u64, at: usize, what: String },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io { path, op, err } => {
                write!(f, "cannot {op} {}: {err}", path.display())
            }
            ArchiveError::Missing { path } => {
                write!(f, "no archive at {} (missing {IDX_FILE})", path.display())
            }
            ArchiveError::BadMagic { path } => {
                write!(f, "{} is not an archive index (bad magic)", path.display())
            }
            ArchiveError::UnsupportedVersion { found, expected } => write!(
                f,
                "archive format v{found} (this build reads v{ARCHIVE_MIN_VERSION}..=v{expected})"
            ),
            ArchiveError::IndexTooShort { len } => {
                write!(f, "index truncated: {len} bytes cannot hold the trailer hash")
            }
            ArchiveError::IndexHashMismatch { expected, found } => write!(
                f,
                "index hash mismatch: recorded {expected:#018x}, bytes hash to {found:#018x}"
            ),
            ArchiveError::Index(e) => write!(f, "index: {e}"),
            ArchiveError::NonContiguous { segment, prev_end, start } => write!(
                f,
                "segment {segment} starts at position {start}, expected {prev_end} (gap or overlap)"
            ),
            ArchiveError::BadRange { segment, start, end } => {
                write!(f, "segment {segment} declares bad range [{start}, {end})")
            }
            ArchiveError::BadOffset { segment, expected, found } => write!(
                f,
                "segment {segment} recorded at byte {found}, expected {expected}"
            ),
            ArchiveError::SegTruncated { segment, offset, need, have } => write!(
                f,
                "segment file truncated at byte {have}: segment {segment} at byte {offset} \
                 needs {need} bytes"
            ),
            ArchiveError::SegTrailingBytes { expected, found } => write!(
                f,
                "segment file holds {found} bytes but the index accounts for {expected}"
            ),
            ArchiveError::SegHashMismatch { segment, offset, expected, found } => write!(
                f,
                "segment {segment} at byte {offset} damaged: recorded hash {expected:#018x}, \
                 bytes hash to {found:#018x}"
            ),
            ArchiveError::SegCorrupt { segment, offset, at, what } => write!(
                f,
                "segment {segment} at byte {offset} corrupt at payload byte {at}: {what}"
            ),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<ColError> for ArchiveError {
    fn from(e: ColError) -> Self {
        ArchiveError::Index(e)
    }
}

fn io_err<'a>(
    path: &'a Path,
    op: &'static str,
) -> impl FnOnce(std::io::Error) -> ArchiveError + 'a {
    move |err| ArchiveError::Io { path: path.to_owned(), op, err }
}

// ---- metrics ---------------------------------------------------------------

const FAMILIES: [(&str, &str); 7] = [
    ("txstat_archive_segments_written_total", "Segments sealed into archives"),
    ("txstat_archive_segments_replayed_total", "Segments decompressed and decoded from archives"),
    ("txstat_archive_bytes_raw_total", "Segment payload bytes before LZSS compression"),
    ("txstat_archive_bytes_compressed_total", "Segment payload bytes after LZSS compression"),
    ("txstat_archive_cache_hits_total", "Decoded-segment cache lookups served from memory"),
    ("txstat_archive_cache_misses_total", "Decoded-segment cache lookups that had to decode"),
    ("txstat_archive_cache_evictions_total", "Decoded-segment cache entries evicted over budget"),
];

/// Register every `txstat_archive_*` family at zero, so exposition carries
/// them even before the first segment moves (the same eager-zero pattern
/// as the fleet and follow layers).
pub fn register_metrics() {
    for (name, help) in FAMILIES {
        registry().counter_with(name, help, &[]).add(0);
    }
    // The tail-coalescing label of the follow path's sealer, and the cache
    // occupancy gauge.
    registry()
        .counter_with(
            "txstat_archive_segments_written_total",
            "Segments sealed into archives",
            &[("coalesced", "true")],
        )
        .add(0);
    registry()
        .gauge("txstat_archive_cache_bytes", "Decoded-segment cache resident byte estimate")
        .set(0);
}

/// The coalesced-seal counter: segments whose seal merged a trailing runt
/// with fresh blocks instead of appending another tiny segment.
pub fn m_written_coalesced() -> std::sync::Arc<txstat_telemetry::Counter> {
    registry().counter_with(
        "txstat_archive_segments_written_total",
        "Segments sealed into archives",
        &[("coalesced", "true")],
    )
}

fn m_written() -> &'static txstat_telemetry::Counter {
    static_counter!(C, "txstat_archive_segments_written_total", "Segments sealed into archives")
}

fn m_replayed() -> &'static txstat_telemetry::Counter {
    static_counter!(
        C,
        "txstat_archive_segments_replayed_total",
        "Segments decompressed and decoded from archives"
    )
}

fn m_raw_bytes() -> &'static txstat_telemetry::Counter {
    static_counter!(
        C,
        "txstat_archive_bytes_raw_total",
        "Segment payload bytes before LZSS compression"
    )
}

fn m_comp_bytes() -> &'static txstat_telemetry::Counter {
    static_counter!(
        C,
        "txstat_archive_bytes_compressed_total",
        "Segment payload bytes after LZSS compression"
    )
}

// ---- segments --------------------------------------------------------------

/// One segment's index entry: its position range, where its compressed
/// bytes sit in `archive.seg`, and their content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Covered block positions `[start, end)`, end-exclusive.
    pub start: u64,
    pub end: u64,
    /// Byte offset of the compressed payload in `archive.seg`.
    pub offset: u64,
    /// Compressed payload length.
    pub comp_len: u64,
    /// Decompressed payload length (replay allocation hint + accounting).
    pub raw_len: u64,
    /// FNV-1a over the compressed payload bytes.
    pub hash: u64,
}

/// A segment's per-chain block content, in one of the two on-disk schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentPayload {
    /// Schema v1: each chain as the wire-JSON bytes of its blocks, one
    /// byte string per block.
    JsonV1 { eos: Vec<Vec<u8>>, tezos: Vec<Vec<u8>>, xrp: Vec<Vec<u8>> },
    /// Schema v2: each chain as one opaque columnar run (encoded and
    /// decoded by the chain crates' `block_cols` codecs — this crate never
    /// interprets the blobs).
    ColsV2 { eos: Vec<u8>, tezos: Vec<u8>, xrp: Vec<u8> },
}

impl SegmentPayload {
    /// The schema tag this payload serializes under.
    pub fn tag(&self) -> u8 {
        match self {
            SegmentPayload::JsonV1 { .. } => SEGMENT_TAG_V1,
            SegmentPayload::ColsV2 { .. } => SEGMENT_TAG_V2,
        }
    }
}

impl Default for SegmentPayload {
    fn default() -> Self {
        SegmentPayload::JsonV1 { eos: Vec::new(), tezos: Vec::new(), xrp: Vec::new() }
    }
}

/// One segment's decoded content: the blocks whose position falls in
/// `[start, end)`, per chain, in either schema. Chains shorter than the
/// range contribute fewer (possibly zero) blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentBlocks {
    pub start: u64,
    pub end: u64,
    pub payload: SegmentPayload,
}

impl SegmentBlocks {
    /// An empty v1 (wire-JSON) segment covering `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        SegmentBlocks { start, end, payload: SegmentPayload::default() }
    }

    /// A v2 (columnar) segment from per-chain column blobs.
    pub fn cols_v2(start: u64, end: u64, eos: Vec<u8>, tezos: Vec<u8>, xrp: Vec<u8>) -> Self {
        SegmentBlocks { start, end, payload: SegmentPayload::ColsV2 { eos, tezos, xrp } }
    }
}

/// Encode a segment payload (the pre-compression bytes).
fn encode_segment(seg: &SegmentBlocks) -> Vec<u8> {
    let cap = 64
        + match &seg.payload {
            SegmentPayload::JsonV1 { eos, tezos, xrp } => [eos, tezos, xrp]
                .iter()
                .flat_map(|c| c.iter())
                .map(|b| b.len() + 4)
                .sum::<usize>(),
            SegmentPayload::ColsV2 { eos, tezos, xrp } => eos.len() + tezos.len() + xrp.len(),
        };
    let mut w = ColWriter::with_capacity(cap);
    w.byte(seg.payload.tag());
    w.u64(seg.start);
    w.u64(seg.end - seg.start);
    match &seg.payload {
        SegmentPayload::JsonV1 { eos, tezos, xrp } => {
            for chain in [eos, tezos, xrp] {
                w.u64(chain.len() as u64);
                for block in chain {
                    w.bytes(block);
                }
            }
        }
        SegmentPayload::ColsV2 { eos, tezos, xrp } => {
            for blob in [eos, tezos, xrp] {
                w.bytes(blob);
            }
        }
    }
    w.into_bytes()
}

/// Decode a decompressed segment payload, validating it against its index
/// entry. Errors carry the in-payload offset.
fn decode_segment(meta: &SegmentMeta, idx: usize, bytes: &[u8]) -> Result<SegmentBlocks, ArchiveError> {
    let corrupt = |at: usize, what: String| ArchiveError::SegCorrupt {
        segment: idx,
        offset: meta.offset,
        at,
        what,
    };
    let col = |e: ColError| corrupt(e.offset(), e.to_string());
    let mut r = ColReader::new(bytes);
    let tag = r.byte().map_err(col)?;
    if tag != SEGMENT_TAG_V1 && tag != SEGMENT_TAG_V2 {
        return Err(corrupt(
            0,
            format!("bad segment tag {tag} (want {SEGMENT_TAG_V1} or {SEGMENT_TAG_V2})"),
        ));
    }
    let start = r.u64().map_err(col)?;
    let span = r.u64().map_err(col)?;
    let end = start.checked_add(span).ok_or_else(|| r.invalid("range overflow")).map_err(col)?;
    if (start, end) != (meta.start, meta.end) {
        return Err(corrupt(
            1,
            format!(
                "segment declares range [{start}, {end}) but the index records \
                 [{}, {})",
                meta.start, meta.end
            ),
        ));
    }
    let payload = if tag == SEGMENT_TAG_V1 {
        let mut chains: [Vec<Vec<u8>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for chain in &mut chains {
            let count = r.len(1).map_err(col)?;
            if count as u64 > span {
                let off = r.offset();
                return Err(corrupt(off, format!("{count} blocks exceed the range span {span}")));
            }
            chain.reserve(count);
            for _ in 0..count {
                chain.push(r.bytes().map_err(col)?.to_vec());
            }
        }
        let [eos, tezos, xrp] = chains;
        SegmentPayload::JsonV1 { eos, tezos, xrp }
    } else {
        let eos = r.bytes().map_err(col)?.to_vec();
        let tezos = r.bytes().map_err(col)?.to_vec();
        let xrp = r.bytes().map_err(col)?.to_vec();
        SegmentPayload::ColsV2 { eos, tezos, xrp }
    };
    r.finish().map_err(col)?;
    Ok(SegmentBlocks { start, end, payload })
}

// ---- index -----------------------------------------------------------------

fn encode_index(manifest: &str, sidecar: &[u8], segments: &[SegmentMeta]) -> Vec<u8> {
    let mut w = ColWriter::with_capacity(64 + sidecar.len() + manifest.len() + segments.len() * 24);
    for b in ARCHIVE_MAGIC {
        w.byte(b);
    }
    w.u32(ARCHIVE_VERSION);
    w.str(manifest);
    w.bytes(sidecar);
    w.u64(segments.len() as u64);
    for s in segments {
        w.u64(s.start);
        w.u64(s.end);
        w.u64(s.offset);
        w.u64(s.comp_len);
        w.u64(s.raw_len);
        w.u64(s.hash);
    }
    let mut bytes = w.into_bytes();
    let hash = fnv1a64(&bytes);
    bytes.extend_from_slice(&hash.to_le_bytes());
    bytes
}

fn decode_index(
    path: &Path,
    bytes: &[u8],
) -> Result<(String, Vec<u8>, Vec<SegmentMeta>), ArchiveError> {
    if bytes.len() < ARCHIVE_MAGIC.len() + 8 {
        return Err(ArchiveError::IndexTooShort { len: bytes.len() });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let recorded = u64::from_le_bytes(trailer.try_into().expect("8 trailer bytes"));
    let actual = fnv1a64(body);
    if recorded != actual {
        return Err(ArchiveError::IndexHashMismatch { expected: recorded, found: actual });
    }
    let mut r = ColReader::new(body);
    for want in ARCHIVE_MAGIC {
        if r.byte()? != want {
            return Err(ArchiveError::BadMagic { path: path.to_owned() });
        }
    }
    let version = r.u32()?;
    if !(ARCHIVE_MIN_VERSION..=ARCHIVE_VERSION).contains(&version) {
        return Err(ArchiveError::UnsupportedVersion { found: version, expected: ARCHIVE_VERSION });
    }
    let manifest = r.str()?.to_owned();
    let sidecar = r.bytes()?.to_vec();
    let count = r.len(6)?;
    let mut segments = Vec::with_capacity(count);
    let mut next_pos = 0u64;
    let mut next_off = 0u64;
    for i in 0..count {
        let s = SegmentMeta {
            start: r.u64()?,
            end: r.u64()?,
            offset: r.u64()?,
            comp_len: r.u64()?,
            raw_len: r.u64()?,
            hash: r.u64()?,
        };
        if s.start >= s.end {
            return Err(ArchiveError::BadRange { segment: i, start: s.start, end: s.end });
        }
        if s.start != next_pos {
            return Err(ArchiveError::NonContiguous { segment: i, prev_end: next_pos, start: s.start });
        }
        if s.offset != next_off {
            return Err(ArchiveError::BadOffset { segment: i, expected: next_off, found: s.offset });
        }
        next_pos = s.end;
        next_off = s.offset.checked_add(s.comp_len).ok_or(ArchiveError::BadOffset {
            segment: i,
            expected: s.offset,
            found: u64::MAX,
        })?;
        segments.push(s);
    }
    r.finish()?;
    Ok((manifest, sidecar, segments))
}

// ---- reading ---------------------------------------------------------------

/// A verified, opened archive. Compressed segment bytes stay mapped in
/// memory; decoding (decompress + column decode) happens per segment on
/// demand, so a shard worker cold-starting from disk pays replay cost only
/// for the ranges it is actually assigned.
#[derive(Debug, Clone)]
pub struct Archive {
    dir: PathBuf,
    manifest: String,
    sidecar: Vec<u8>,
    segments: Vec<SegmentMeta>,
    seg_bytes: Vec<u8>,
}

impl Archive {
    /// Open and fully verify the archive at `dir`: index hash, range and
    /// offset arithmetic, segment-file length, and every segment's content
    /// hash. Nothing is decompressed yet.
    pub fn open(dir: &Path) -> Result<Archive, ArchiveError> {
        let _span = Span::enter("archive_open", &dir.display().to_string());
        let idx_path = dir.join(IDX_FILE);
        let idx_bytes = match fs::read(&idx_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ArchiveError::Missing { path: dir.to_owned() })
            }
            Err(e) => return Err(io_err(&idx_path, "read")(e)),
        };
        let (manifest, sidecar, segments) = decode_index(&idx_path, &idx_bytes)?;
        let seg_path = dir.join(SEG_FILE);
        let seg_bytes = if segments.is_empty() {
            fs::read(&seg_path).unwrap_or_default()
        } else {
            fs::read(&seg_path).map_err(io_err(&seg_path, "read"))?
        };
        let archive = Archive { dir: dir.to_owned(), manifest, sidecar, segments, seg_bytes };
        archive.verify()?;
        Ok(archive)
    }

    /// Re-check every segment's bounds and content hash against the
    /// in-memory segment bytes.
    fn verify(&self) -> Result<(), ArchiveError> {
        let _span = Span::enter("archive_verify", "");
        let file_len = self.seg_bytes.len() as u64;
        let mut accounted = 0u64;
        for (i, s) in self.segments.iter().enumerate() {
            let need = s.offset + s.comp_len;
            if need > file_len {
                return Err(ArchiveError::SegTruncated {
                    segment: i,
                    offset: s.offset,
                    need,
                    have: file_len,
                });
            }
            let bytes = &self.seg_bytes[s.offset as usize..need as usize];
            let found = fnv1a64(bytes);
            if found != s.hash {
                return Err(ArchiveError::SegHashMismatch {
                    segment: i,
                    offset: s.offset,
                    expected: s.hash,
                    found,
                });
            }
            accounted = need;
        }
        if accounted != file_len {
            return Err(ArchiveError::SegTrailingBytes { expected: accounted, found: file_len });
        }
        Ok(())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The opaque manifest string recorded at creation (the reports layer
    /// stores the scenario fingerprint here).
    pub fn manifest(&self) -> &str {
        &self.manifest
    }

    /// The opaque sidecar bytes (non-block dataset state).
    pub fn sidecar(&self) -> &[u8] {
        &self.sidecar
    }

    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// One past the highest archived block position.
    pub fn total_positions(&self) -> u64 {
        self.segments.last().map_or(0, |s| s.end)
    }

    /// Index of the trailing runt segment: the newest sealed segment, if
    /// it spans fewer than `seg_blocks` positions. The follow path's
    /// sealer replays it and re-appends its blocks merged with the next
    /// batch (after [`ArchiveWriter::truncate_from`] at its start) instead
    /// of letting one tiny segment pile up per batch.
    pub fn tail_runt(&self, seg_blocks: u64) -> Option<usize> {
        let last = self.segments.len().checked_sub(1)?;
        let s = &self.segments[last];
        (s.end - s.start < seg_blocks).then_some(last)
    }

    /// Indices `[lo, hi)` of the segments overlapping positions
    /// `[start, end)`.
    pub fn covering(&self, start: u64, end: u64) -> (usize, usize) {
        let lo = self.segments.partition_point(|s| s.end <= start);
        let hi = self.segments.partition_point(|s| s.start < end);
        (lo, hi.max(lo))
    }

    /// Decompress and decode one segment (counted in
    /// `txstat_archive_segments_replayed_total`).
    pub fn decode_segment(&self, i: usize) -> Result<SegmentBlocks, ArchiveError> {
        let _span = Span::enter("archive_replay", "segment");
        let meta = self.segments[i];
        let bytes = &self.seg_bytes[meta.offset as usize..(meta.offset + meta.comp_len) as usize];
        let raw = lzss::decompress(bytes).map_err(|e| ArchiveError::SegCorrupt {
            segment: i,
            offset: meta.offset,
            at: 0,
            what: e.to_string(),
        })?;
        if raw.len() as u64 != meta.raw_len {
            return Err(ArchiveError::SegCorrupt {
                segment: i,
                offset: meta.offset,
                at: raw.len(),
                what: format!("decompressed to {} bytes, index records {}", raw.len(), meta.raw_len),
            });
        }
        let seg = decode_segment(&meta, i, &raw)?;
        m_replayed().inc();
        Ok(seg)
    }

    /// Decode exactly the segments overlapping `[start, end)`, in position
    /// order — the cold-start fast path for range assignments. Segments
    /// decompress and decode on a rayon fan (they are independent LZSS
    /// streams); results merge back in segment order.
    pub fn replay_range(&self, start: u64, end: u64) -> Result<Vec<SegmentBlocks>, ArchiveError> {
        let (lo, hi) = self.covering(start, end);
        let indices: Vec<usize> = (lo..hi).collect();
        indices
            .par_iter()
            .map(|&i| self.decode_segment(i))
            .collect_vec()
            .into_iter()
            .collect()
    }

    /// Decode every segment in order.
    pub fn replay_all(&self) -> Result<Vec<SegmentBlocks>, ArchiveError> {
        self.replay_range(0, u64::MAX)
    }

    /// Turn this verified archive into a writer that appends after the
    /// last sealed segment (the follow path's live tail).
    pub fn into_writer(self) -> Result<ArchiveWriter, ArchiveError> {
        let seg_path = self.dir.join(SEG_FILE);
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)
            .map_err(io_err(&seg_path, "open"))?;
        Ok(ArchiveWriter {
            dir: self.dir,
            manifest: self.manifest,
            sidecar: self.sidecar,
            segments: self.segments,
            seg_file: file,
            seg_len: self.seg_bytes.len() as u64,
        })
    }
}

// ---- writing ---------------------------------------------------------------

/// Appends segments to an archive directory. Segment bytes go to
/// `archive.seg` immediately; the index is rewritten atomically
/// (tmp + rename) on every [`ArchiveWriter::seal`], so readers opening
/// concurrently always see a consistent prefix.
#[derive(Debug)]
pub struct ArchiveWriter {
    dir: PathBuf,
    manifest: String,
    sidecar: Vec<u8>,
    segments: Vec<SegmentMeta>,
    seg_file: fs::File,
    seg_len: u64,
}

impl ArchiveWriter {
    /// Create (or truncate) the archive at `dir` with the given opaque
    /// manifest and sidecar. The directory is created if missing.
    pub fn create(dir: &Path, manifest: &str, sidecar: &[u8]) -> Result<ArchiveWriter, ArchiveError> {
        fs::create_dir_all(dir).map_err(io_err(dir, "create"))?;
        let seg_path = dir.join(SEG_FILE);
        let file = fs::File::create(&seg_path).map_err(io_err(&seg_path, "create"))?;
        let w = ArchiveWriter {
            dir: dir.to_owned(),
            manifest: manifest.to_owned(),
            sidecar: sidecar.to_vec(),
            segments: Vec::new(),
            seg_file: file,
            seg_len: 0,
        };
        w.seal()?;
        Ok(w)
    }

    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// One past the highest archived block position.
    pub fn total_positions(&self) -> u64 {
        self.segments.last().map_or(0, |s| s.end)
    }

    /// Compress and append one segment. Its range must continue exactly
    /// where the previous segment ended.
    pub fn append(&mut self, seg: &SegmentBlocks) -> Result<SegmentMeta, ArchiveError> {
        let _span = Span::enter("archive_seal", "segment");
        let next = self.total_positions();
        if seg.start != next || seg.end <= seg.start {
            return Err(ArchiveError::NonContiguous {
                segment: self.segments.len(),
                prev_end: next,
                start: seg.start,
            });
        }
        let raw = encode_segment(seg);
        let comp = lzss::compress(&raw);
        let seg_path = self.dir.join(SEG_FILE);
        self.seg_file.write_all(&comp).map_err(io_err(&seg_path, "append"))?;
        let meta = SegmentMeta {
            start: seg.start,
            end: seg.end,
            offset: self.seg_len,
            comp_len: comp.len() as u64,
            raw_len: raw.len() as u64,
            hash: fnv1a64(&comp),
        };
        self.seg_len += meta.comp_len;
        self.segments.push(meta);
        m_written().inc();
        m_raw_bytes().add(meta.raw_len);
        m_comp_bytes().add(meta.comp_len);
        Ok(meta)
    }

    /// Drop every segment whose range reaches past `position` (a reorg
    /// invalidating the suffix): the segment file is cut back to the first
    /// dropped segment's offset. Returns how many segments were dropped.
    /// The caller re-appends the rebuilt history afterwards and seals.
    pub fn truncate_from(&mut self, position: u64) -> Result<usize, ArchiveError> {
        let keep = self.segments.partition_point(|s| s.end <= position);
        let dropped = self.segments.len() - keep;
        if dropped == 0 {
            return Ok(0);
        }
        self.seg_len = self.segments[keep].offset;
        self.segments.truncate(keep);
        let seg_path = self.dir.join(SEG_FILE);
        self.seg_file.flush().map_err(io_err(&seg_path, "flush"))?;
        self.seg_file.set_len(self.seg_len).map_err(io_err(&seg_path, "truncate"))?;
        // `set_len` leaves the write cursor where it was (past the new
        // end); the next append must land exactly at the cut. (No-op for
        // the O_APPEND handles `into_writer` hands out.)
        self.seg_file
            .seek(SeekFrom::Start(self.seg_len))
            .map_err(io_err(&seg_path, "seek"))?;
        Ok(dropped)
    }

    /// Write the index (atomically: tmp file + rename) so the segments
    /// appended so far become visible to readers.
    pub fn seal(&self) -> Result<(), ArchiveError> {
        let bytes = encode_index(&self.manifest, &self.sidecar, &self.segments);
        let tmp = self.dir.join(format!("{IDX_FILE}.tmp"));
        fs::write(&tmp, &bytes).map_err(io_err(&tmp, "write"))?;
        let idx = self.dir.join(IDX_FILE);
        fs::rename(&tmp, &idx).map_err(io_err(&idx, "rename"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(tag: &str, range: std::ops::Range<u64>) -> Vec<Vec<u8>> {
        range.map(|i| format!("{{\"{tag}\":{i}}}").into_bytes()).collect()
    }

    fn seg(start: u64, end: u64) -> SegmentBlocks {
        SegmentBlocks {
            start,
            end,
            payload: SegmentPayload::JsonV1 {
                eos: blocks("eos", start..end),
                tezos: blocks("tz", start..end.min(start + (end - start) / 2 + 1)),
                xrp: blocks("xrp", start..end),
            },
        }
    }

    fn seg_v2(start: u64, end: u64) -> SegmentBlocks {
        SegmentBlocks::cols_v2(
            start,
            end,
            format!("eos-cols-{start}").into_bytes(),
            format!("tz-cols-{start}").into_bytes(),
            format!("xrp-cols-{start}").into_bytes(),
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("txstat-archive-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_range_replay() {
        let dir = tmpdir("roundtrip");
        let mut w = ArchiveWriter::create(&dir, "{\"m\":1}", b"side").unwrap();
        let segs: Vec<_> = [(0, 10), (10, 20), (20, 25)]
            .iter()
            .map(|&(a, b)| seg(a, b))
            .collect();
        for s in &segs {
            w.append(s).unwrap();
        }
        w.seal().unwrap();

        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.manifest(), "{\"m\":1}");
        assert_eq!(a.sidecar(), b"side");
        assert_eq!(a.total_positions(), 25);
        assert_eq!(a.replay_all().unwrap(), segs);
        // Range replay touches only the overlapping segments.
        let mid = a.replay_range(12, 15).unwrap();
        assert_eq!(mid.len(), 1);
        assert_eq!((mid[0].start, mid[0].end), (10, 20));
        assert_eq!(a.covering(0, 25), (0, 3));
        assert_eq!(a.covering(10, 11), (1, 2));
        assert_eq!(a.covering(30, 40), (3, 3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_schema_segments_roundtrip() {
        // v1 and v2 segments coexist in one archive: each payload
        // self-describes by tag and replays to exactly what was appended.
        let dir = tmpdir("mixed");
        let mut w = ArchiveWriter::create(&dir, "m", b"s").unwrap();
        let segs = vec![seg(0, 10), seg_v2(10, 20), seg(20, 30), seg_v2(30, 35)];
        for s in &segs {
            w.append(s).unwrap();
        }
        w.seal().unwrap();
        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.replay_all().unwrap(), segs);
        assert_eq!(a.replay_range(12, 13).unwrap(), vec![segs[1].clone()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_runt_detection() {
        let dir = tmpdir("runt");
        let mut w = ArchiveWriter::create(&dir, "m", b"").unwrap();
        w.append(&seg_v2(0, 16)).unwrap();
        w.append(&seg_v2(16, 20)).unwrap();
        w.seal().unwrap();
        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.tail_runt(16), Some(1));
        assert_eq!(a.tail_runt(4), None); // tail exactly at target size
        assert_eq!(a.tail_runt(2), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_contiguous_append_rejected() {
        let dir = tmpdir("gap");
        let mut w = ArchiveWriter::create(&dir, "m", b"").unwrap();
        w.append(&seg(0, 5)).unwrap();
        assert!(matches!(w.append(&seg(7, 9)), Err(ArchiveError::NonContiguous { .. })));
        assert!(matches!(w.append(&seg(5, 5)), Err(ArchiveError::NonContiguous { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_from_drops_suffix() {
        let dir = tmpdir("trunc");
        let mut w = ArchiveWriter::create(&dir, "m", b"").unwrap();
        for &(a, b) in &[(0, 10), (10, 20), (20, 30)] {
            w.append(&seg(a, b)).unwrap();
        }
        // Reorg at position 15: the segment containing 15 and everything
        // after it go; the [0, 10) prefix stays.
        assert_eq!(w.truncate_from(15).unwrap(), 2);
        assert_eq!(w.total_positions(), 10);
        let reorged = seg(10, 30);
        w.append(&reorged).unwrap();
        w.seal().unwrap();
        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.segments().len(), 2);
        assert_eq!(a.replay_range(10, 30).unwrap(), vec![reorged]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_is_typed_not_panicked() {
        let dir = tmpdir("damage");
        let mut w = ArchiveWriter::create(&dir, "m", b"sidecar").unwrap();
        for &(a, b) in &[(0, 8), (8, 16)] {
            w.append(&seg(a, b)).unwrap();
        }
        w.seal().unwrap();

        // Truncate the segment file mid-segment: the open names the
        // segment and the byte it needed.
        let seg_path = dir.join(SEG_FILE);
        let full = fs::read(&seg_path).unwrap();
        fs::write(&seg_path, &full[..full.len() - 3]).unwrap();
        match Archive::open(&dir) {
            Err(ArchiveError::SegTruncated { segment: 1, need, have, .. }) => {
                assert_eq!(need as usize, full.len());
                assert_eq!(have as usize, full.len() - 3);
            }
            other => panic!("expected SegTruncated, got {other:?}"),
        }

        // Flip one bit inside a segment: hash mismatch naming it.
        let mut flipped = full.clone();
        flipped[2] ^= 0x10;
        fs::write(&seg_path, &flipped).unwrap();
        match Archive::open(&dir) {
            Err(ArchiveError::SegHashMismatch { segment: 0, offset: 0, .. }) => {}
            other => panic!("expected SegHashMismatch, got {other:?}"),
        }
        fs::write(&seg_path, &full).unwrap();

        // Flip one bit in the index: trailer hash catches it.
        let idx_path = dir.join(IDX_FILE);
        let idx = fs::read(&idx_path).unwrap();
        let mut bad = idx.clone();
        bad[6] ^= 0x01;
        fs::write(&idx_path, &bad).unwrap();
        assert!(matches!(Archive::open(&dir), Err(ArchiveError::IndexHashMismatch { .. })));

        // Truncate the index below the trailer.
        fs::write(&idx_path, &idx[..4]).unwrap();
        assert!(matches!(Archive::open(&dir), Err(ArchiveError::IndexTooShort { len: 4 })));

        // Missing index entirely.
        fs::remove_file(&idx_path).unwrap();
        assert!(matches!(Archive::open(&dir), Err(ArchiveError::Missing { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_after_reopen() {
        let dir = tmpdir("reopen");
        let mut w = ArchiveWriter::create(&dir, "m", b"s").unwrap();
        w.append(&seg(0, 6)).unwrap();
        w.seal().unwrap();
        let mut w2 = Archive::open(&dir).unwrap().into_writer().unwrap();
        w2.append(&seg(6, 12)).unwrap();
        w2.seal().unwrap();
        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.total_positions(), 12);
        assert_eq!(a.segments().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_archive_opens() {
        let dir = tmpdir("empty");
        let w = ArchiveWriter::create(&dir, "m", b"").unwrap();
        drop(w);
        let a = Archive::open(&dir).unwrap();
        assert_eq!(a.total_positions(), 0);
        assert!(a.replay_all().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
