//! Decoded-segment LRU cache — the shard fleet's warm-restart layer.
//!
//! Decoding a segment (LZSS decompress + column decode + chain parse) is
//! the dominant cold-start cost; a worker that is re-assigned an
//! overlapping range, or several workers sharing one process, pay it once
//! per segment instead of once per assignment by parking the decoded value
//! here, keyed by the segment's *content hash* (so a reorg that rewrites a
//! segment in place can never serve the stale decode — the hash changes
//! with the bytes).
//!
//! The cache is byte-budgeted: each entry carries the caller-declared cost
//! (the segment's decompressed `raw_len` is the conventional estimate) and
//! least-recently-used entries are evicted until the cache fits the
//! budget. The newest entry always stays, so a single oversized segment
//! still caches rather than thrashing.
//!
//! Accounting is exact and per-instance — [`SegmentCache::stats`] returns
//! counters that tests can assert equalities on even though the process
//! also mirrors them into the global `txstat_archive_cache_*` families
//! (which are shared across instances).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use txstat_telemetry::{static_counter, static_gauge};

/// A point-in-time copy of one cache's counters. `hits + misses` equals
/// the number of [`SegmentCache::get`] calls; `bytes` is the summed cost
/// of the currently resident entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes: u64,
    pub entries: u64,
}

struct Entry<T> {
    value: Arc<T>,
    cost: u64,
    /// Monotonic recency tick; smallest = least recently used.
    used: u64,
}

struct Inner<T> {
    entries: HashMap<u64, Entry<T>>,
    bytes: u64,
    tick: u64,
}

/// A byte-budgeted LRU map from segment content hash to decoded value.
pub struct SegmentCache<T> {
    inner: Mutex<Inner<T>>,
    budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<T> SegmentCache<T> {
    /// A cache holding at most `budget_bytes` of caller-declared cost.
    pub fn new(budget_bytes: u64) -> Self {
        SegmentCache {
            inner: Mutex::new(Inner { entries: HashMap::new(), bytes: 0, tick: 0 }),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Look up a decoded segment by content hash, refreshing its recency.
    /// Counts exactly one hit or one miss.
    pub fn get(&self, hash: u64) -> Option<Arc<T>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&hash) {
            Some(e) => {
                e.used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                m_hits().inc();
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                m_misses().inc();
                None
            }
        }
    }

    /// Insert a decoded segment at the given cost, evicting
    /// least-recently-used entries until the budget fits again. The entry
    /// just inserted is never evicted. Re-inserting an existing hash
    /// replaces the value without counting an eviction.
    pub fn insert(&self, hash: u64, value: Arc<T>, cost: u64) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(hash, Entry { value, cost, used: tick }) {
            inner.bytes -= old.cost;
        }
        inner.bytes += cost;
        while inner.bytes > self.budget && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(&k, _)| k != hash)
                .min_by_key(|(_, e)| e.used)
                .map(|(&k, _)| k)
                .expect("len > 1 means a non-newest entry exists");
            let evicted = inner.entries.remove(&victim).expect("victim present");
            inner.bytes -= evicted.cost;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            m_evictions().inc();
        }
        m_bytes().set(inner.bytes);
    }

    /// Look up, or decode-and-insert on miss. Concurrent misses for the
    /// same hash may each run `decode` (the accounting stays exact: every
    /// call is one hit or one miss); the last insert wins.
    pub fn get_or_insert<E>(
        &self,
        hash: u64,
        cost: u64,
        decode: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        if let Some(v) = self.get(hash) {
            return Ok(v);
        }
        let value = Arc::new(decode()?);
        self.insert(hash, Arc::clone(&value), cost);
        Ok(value)
    }

    /// Exact per-instance counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: inner.bytes,
            entries: inner.entries.len() as u64,
        }
    }
}

impl<T> std::fmt::Debug for SegmentCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SegmentCache")
            .field("budget", &self.budget)
            .field("stats", &s)
            .finish()
    }
}

fn m_hits() -> &'static txstat_telemetry::Counter {
    static_counter!(
        C,
        "txstat_archive_cache_hits_total",
        "Decoded-segment cache lookups served from memory"
    )
}

fn m_misses() -> &'static txstat_telemetry::Counter {
    static_counter!(
        C,
        "txstat_archive_cache_misses_total",
        "Decoded-segment cache lookups that had to decode"
    )
}

fn m_evictions() -> &'static txstat_telemetry::Counter {
    static_counter!(
        C,
        "txstat_archive_cache_evictions_total",
        "Decoded-segment cache entries evicted over budget"
    )
}

fn m_bytes() -> &'static txstat_telemetry::Gauge {
    static_gauge!(
        G,
        "txstat_archive_cache_bytes",
        "Decoded-segment cache resident byte estimate"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_eviction_accounting() {
        let cache: SegmentCache<String> = SegmentCache::new(100);
        assert!(cache.get(1).is_none());
        cache.insert(1, Arc::new("a".into()), 60);
        assert_eq!(cache.get(1).as_deref().map(String::as_str), Some("a"));
        cache.insert(2, Arc::new("b".into()), 60); // 120 > 100: evicts 1
        assert!(cache.get(1).is_none());
        assert_eq!(cache.get(2).as_deref().map(String::as_str), Some("b"));
        let s = cache.stats();
        assert_eq!(
            (s.hits, s.misses, s.evictions, s.bytes, s.entries),
            (2, 2, 1, 60, 1)
        );
    }

    #[test]
    fn lru_order_and_touch() {
        let cache: SegmentCache<u32> = SegmentCache::new(30);
        cache.insert(1, Arc::new(10), 10);
        cache.insert(2, Arc::new(20), 10);
        cache.insert(3, Arc::new(30), 10);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(4, Arc::new(40), 10);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
    }

    #[test]
    fn oversized_newest_entry_survives() {
        let cache: SegmentCache<u32> = SegmentCache::new(10);
        cache.insert(1, Arc::new(1), 5);
        cache.insert(2, Arc::new(2), 50); // over budget alone
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (1, 50, 1));
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let cache: SegmentCache<u32> = SegmentCache::new(100);
        cache.insert(7, Arc::new(1), 40);
        cache.insert(7, Arc::new(2), 60);
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (1, 60, 0));
        assert_eq!(cache.get(7).as_deref(), Some(&2));
    }

    #[test]
    fn get_or_insert_decodes_once_per_miss() {
        let cache: SegmentCache<u64> = SegmentCache::new(1000);
        let mut calls = 0;
        let v = cache
            .get_or_insert(9, 10, || -> Result<u64, ()> {
                calls += 1;
                Ok(99)
            })
            .unwrap();
        assert_eq!(*v, 99);
        let v2 = cache
            .get_or_insert(9, 10, || -> Result<u64, ()> {
                calls += 1;
                Ok(0)
            })
            .unwrap();
        assert_eq!(*v2, 99);
        assert_eq!(calls, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn accounting_exact_under_concurrent_assignments() {
        let cache: Arc<SegmentCache<Vec<u8>>> = Arc::new(SegmentCache::new(u64::MAX));
        let threads = 8;
        let per_thread = 200;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = ((t * per_thread + i) % 50) as u64;
                        if cache.get(key).is_none() {
                            cache.insert(key, Arc::new(vec![0u8; 16]), 16);
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        // Every lookup is exactly one hit or one miss.
        assert_eq!(s.hits + s.misses, (threads * per_thread) as u64);
        // Unbounded budget: nothing evicted, bytes = 16 per resident key.
        assert_eq!(s.evictions, 0);
        assert_eq!(s.bytes, s.entries * 16);
        assert_eq!(s.entries, 50);
    }
}
