//! The fleet control protocol: how a reducer asks a socket shard worker
//! for a block range and gets a [`ShardFrame`] bundle back.
//!
//! One TCP connection carries exactly one request/response exchange —
//! connection-per-request keeps per-request deadlines trivial (socket
//! timeouts *are* the deadline) and makes reconnect-after-failure the only
//! recovery path, which is the one this protocol is built to survive.
//!
//! ```text
//! request  (reducer → worker)
//!  offset  size  field
//!  ──────  ────  ───────────────────────────────────────────────
//!       0     4  magic  "TXSQ"
//!       4     4  protocol version (u32 LE)
//!       8     8  content hash (u64 LE, FNV-1a over the body)
//!      16     4  body length (u32 LE, capped MAX_ASSIGNMENT_LEN)
//!      20     …  body: assignment JSON (start, end, shards,
//!                payload format, scenario meta)
//!
//! response (worker → reducer)
//!       0     4  magic  "TXSP"
//!       4     4  protocol version (u32 LE)
//!       8     1  status (0 = frames follow, 1 = UTF-8 error follows)
//!       9     4  body length (u32 LE, capped MAX_BUNDLE_LEN)
//!      13     …  body: concatenated ShardFrames (status 0) or an
//!                error message (status 1)
//! ```
//!
//! Every length prefix is validated against a cap *before* allocation, so
//! a corrupt or hostile peer yields a typed [`ProtocolError`], never an
//! OOM. The request body is hash-protected (a bit-flipped range must not
//! silently reassign the sweep); response frames carry their own content
//! hashes, so the bundle needs no second envelope hash.

use crate::{content_hash, decode_all, encode_all, PayloadFormat, ShardFrame, WireError};
use serde::Value;
use std::io::{Read, Write};

/// Request magic: "TXSQ" (txstat shard reQuest).
pub const REQUEST_MAGIC: [u8; 4] = *b"TXSQ";

/// Response magic: "TXSP" (txstat shard resPonse).
pub const RESPONSE_MAGIC: [u8; 4] = *b"TXSP";

/// Fleet protocol version. Bumped independently of the frame schema.
pub const FLEET_VERSION: u32 = 1;

/// Largest assignment body a worker will allocate for (JSON of a range
/// plus scenario meta — a few hundred bytes in practice).
pub const MAX_ASSIGNMENT_LEN: usize = 1 << 20; // 1 MiB

/// Largest response body a reducer will allocate for (a three-frame
/// bundle; each inner frame is additionally capped by the frame decoder).
pub const MAX_BUNDLE_LEN: usize = 1 << 29; // 512 MiB

/// Typed fleet-protocol failures. From the reducer's point of view every
/// variant is retryable (reconnect, backoff, possibly re-dispatch); none
/// of them can panic or over-allocate.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// Socket-level failure (connect, read, write, timeout), stringified.
    Io(String),
    /// The peer did not speak this protocol's magic.
    BadMagic { expected: [u8; 4], found: [u8; 4] },
    /// The peer speaks a fleet protocol version this side does not.
    UnsupportedVersion { found: u32, supported: u32 },
    /// A length prefix exceeds its allocation cap.
    SectionTooLarge { section: &'static str, len: u64, max: u64 },
    /// The request body hash does not match its bytes (damaged in flight).
    HashMismatch { expected: u64, found: u64 },
    /// The body bytes are not a valid assignment / error message.
    Body(String),
    /// The worker answered with a typed error of its own.
    Remote(String),
    /// The frame bundle failed frame-level decoding.
    Frame(WireError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(m) => write!(f, "fleet i/o: {m}"),
            ProtocolError::BadMagic { expected, found } => {
                write!(f, "bad fleet magic {found:?} (expected {expected:?})")
            }
            ProtocolError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported fleet protocol version {found} (this side speaks {supported})")
            }
            ProtocolError::SectionTooLarge { section, len, max } => {
                write!(f, "fleet {section} claims {len} bytes, cap is {max}")
            }
            ProtocolError::HashMismatch { expected, found } => {
                write!(f, "fleet request hash mismatch: envelope says {expected:#018x}, body hashes to {found:#018x}")
            }
            ProtocolError::Body(m) => write!(f, "bad fleet body: {m}"),
            ProtocolError::Remote(m) => write!(f, "worker error: {m}"),
            ProtocolError::Frame(e) => write!(f, "bad frame in bundle: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Frame(e)
    }
}

/// One range-sweep assignment: everything a worker needs to produce the
/// three chain frames for block positions `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub start: u64,
    pub end: u64,
    pub shards: usize,
    pub payload: PayloadFormat,
    /// Scenario provenance — the worker refuses assignments whose meta
    /// does not describe the scenario it was started with.
    pub meta: Value,
}

impl Assignment {
    fn to_value(&self) -> Value {
        serde_json::json!({
            "start": self.start,
            "end": self.end,
            "shards": self.shards as u64,
            "payload": self.payload.tag(),
            "meta": self.meta.clone(),
        })
    }

    fn from_value(v: &Value) -> Result<Self, ProtocolError> {
        let bad = |m: &str| ProtocolError::Body(m.to_owned());
        let u = |k: &str| v.get(k).and_then(Value::as_u64).ok_or_else(|| bad(&format!("missing {k}")));
        let payload = v
            .get("payload")
            .and_then(Value::as_str)
            .and_then(PayloadFormat::parse)
            .ok_or_else(|| bad("missing or unknown payload format"))?;
        Ok(Assignment {
            start: u("start")?,
            end: u("end")?,
            shards: u("shards")? as usize,
            payload,
            meta: v.get("meta").cloned().unwrap_or(Value::Null),
        })
    }
}

fn io_err(what: &'static str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Io(format!("{what}: {e}"))
}

fn read_exact(r: &mut dyn Read, buf: &mut [u8], what: &'static str) -> Result<(), ProtocolError> {
    r.read_exact(buf).map_err(|e| io_err(what, e))
}

/// Read a capped length prefix and then exactly that many body bytes —
/// the only place fleet bodies are allocated, after the cap check.
fn read_capped_body(
    r: &mut dyn Read,
    section: &'static str,
    max: usize,
) -> Result<Vec<u8>, ProtocolError> {
    let mut len4 = [0u8; 4];
    read_exact(r, &mut len4, section)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > max {
        return Err(ProtocolError::SectionTooLarge {
            section,
            len: len as u64,
            max: max as u64,
        });
    }
    let mut body = vec![0u8; len];
    read_exact(r, &mut body, section)?;
    Ok(body)
}

/// Write one assignment request.
pub fn write_assignment(w: &mut dyn Write, a: &Assignment) -> Result<(), ProtocolError> {
    let body = serde_json::to_vec(&a.to_value()).expect("assignment serializes");
    let hash = content_hash(&body, &[]);
    let mut out = Vec::with_capacity(20 + body.len());
    out.extend_from_slice(&REQUEST_MAGIC);
    out.extend_from_slice(&FLEET_VERSION.to_le_bytes());
    out.extend_from_slice(&hash.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    w.write_all(&out).map_err(|e| io_err("write request", e))?;
    w.flush().map_err(|e| io_err("flush request", e))
}

/// Read one assignment request (the worker side of the exchange).
pub fn read_assignment(r: &mut dyn Read) -> Result<Assignment, ProtocolError> {
    let mut prefix = [0u8; 16];
    read_exact(r, &mut prefix, "request prefix")?;
    let magic: [u8; 4] = prefix[0..4].try_into().expect("4 bytes");
    if magic != REQUEST_MAGIC {
        return Err(ProtocolError::BadMagic { expected: REQUEST_MAGIC, found: magic });
    }
    let version = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes"));
    if version != FLEET_VERSION {
        return Err(ProtocolError::UnsupportedVersion { found: version, supported: FLEET_VERSION });
    }
    let expected = u64::from_le_bytes(prefix[8..16].try_into().expect("8 bytes"));
    let body = read_capped_body(r, "request body", MAX_ASSIGNMENT_LEN)?;
    let found = content_hash(&body, &[]);
    if found != expected {
        return Err(ProtocolError::HashMismatch { expected, found });
    }
    let v: Value =
        serde_json::from_slice(&body).map_err(|e| ProtocolError::Body(e.to_string()))?;
    Assignment::from_value(&v)
}

fn write_response(w: &mut dyn Write, status: u8, body: &[u8]) -> Result<(), ProtocolError> {
    let mut out = Vec::with_capacity(13 + body.len());
    out.extend_from_slice(&RESPONSE_MAGIC);
    out.extend_from_slice(&FLEET_VERSION.to_le_bytes());
    out.push(status);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    w.write_all(&out).map_err(|e| io_err("write response", e))?;
    w.flush().map_err(|e| io_err("flush response", e))
}

/// Write a success response carrying a frame bundle.
pub fn write_frames(w: &mut dyn Write, frames: &[ShardFrame]) -> Result<(), ProtocolError> {
    write_response(w, 0, &encode_all(frames))
}

/// Write an error response carrying a worker-side failure message.
pub fn write_error(w: &mut dyn Write, msg: &str) -> Result<(), ProtocolError> {
    write_response(w, 1, msg.as_bytes())
}

/// Read one response (the reducer side): a decoded frame bundle on
/// success, [`ProtocolError::Remote`] when the worker reported a failure.
pub fn read_response(r: &mut dyn Read) -> Result<Vec<ShardFrame>, ProtocolError> {
    let mut prefix = [0u8; 9];
    read_exact(r, &mut prefix, "response prefix")?;
    let magic: [u8; 4] = prefix[0..4].try_into().expect("4 bytes");
    if magic != RESPONSE_MAGIC {
        return Err(ProtocolError::BadMagic { expected: RESPONSE_MAGIC, found: magic });
    }
    let version = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes"));
    if version != FLEET_VERSION {
        return Err(ProtocolError::UnsupportedVersion { found: version, supported: FLEET_VERSION });
    }
    let status = prefix[8];
    let body = read_capped_body(r, "response body", MAX_BUNDLE_LEN)?;
    match status {
        0 => Ok(decode_all(&body)?),
        1 => Err(ProtocolError::Remote(String::from_utf8_lossy(&body).into_owned())),
        other => Err(ProtocolError::Body(format!("unknown response status {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn assignment() -> Assignment {
        Assignment {
            start: 250,
            end: 400,
            shards: 3,
            payload: PayloadFormat::Bin,
            meta: json!({"mode": "small", "seed": 7}),
        }
    }

    #[test]
    fn request_round_trips() {
        let a = assignment();
        let mut buf = Vec::new();
        write_assignment(&mut buf, &a).expect("writes");
        let back = read_assignment(&mut buf.as_slice()).expect("reads");
        assert_eq!(back, a);
    }

    #[test]
    fn response_round_trips_frames_and_errors() {
        let frames = vec![ShardFrame::from_columns(
            "eos",
            0,
            5,
            5,
            json!({"mode": "small"}),
            vec![1, 2, 3],
        )];
        let mut buf = Vec::new();
        write_frames(&mut buf, &frames).expect("writes");
        assert_eq!(read_response(&mut buf.as_slice()).expect("reads"), frames);

        let mut buf = Vec::new();
        write_error(&mut buf, "meta mismatch").expect("writes");
        assert_eq!(
            read_response(&mut buf.as_slice()),
            Err(ProtocolError::Remote("meta mismatch".to_owned()))
        );
    }

    #[test]
    fn corrupt_request_body_is_a_hash_mismatch() {
        let mut buf = Vec::new();
        write_assignment(&mut buf, &assignment()).expect("writes");
        // Flip a bit inside the JSON body (a range digit, say): the hash
        // check must refuse it — a silently altered range would make the
        // worker sweep the wrong blocks.
        let last = buf.len() - 2;
        buf[last] ^= 0x01;
        assert!(matches!(
            read_assignment(&mut buf.as_slice()),
            Err(ProtocolError::HashMismatch { .. })
        ));
    }

    #[test]
    fn oversized_bodies_are_capped_before_allocation() {
        let mut buf = Vec::new();
        write_assignment(&mut buf, &assignment()).expect("writes");
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_assignment(&mut buf.as_slice()),
            Err(ProtocolError::SectionTooLarge { section: "request body", .. })
        ));

        let mut buf = Vec::new();
        write_frames(&mut buf, &[]).expect("writes");
        buf[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_response(&mut buf.as_slice()),
            Err(ProtocolError::SectionTooLarge { section: "response body", .. })
        ));
    }

    #[test]
    fn truncation_and_wrong_magic_are_typed() {
        let mut buf = Vec::new();
        write_assignment(&mut buf, &assignment()).expect("writes");
        for cut in 0..buf.len() {
            let err = read_assignment(&mut &buf[..cut]).expect_err("truncated");
            assert!(
                matches!(err, ProtocolError::Io(_)),
                "cut at {cut}: got {err:?}"
            );
        }
        let mut wrong = buf.clone();
        wrong[0] = b'X';
        assert!(matches!(
            read_assignment(&mut wrong.as_slice()),
            Err(ProtocolError::BadMagic { .. })
        ));
        // A frame-response magic sent where a request is expected (crossed
        // streams) is a typed magic error too.
        let bundle = vec![ShardFrame::from_columns("eos", 0, 5, 5, json!({}), vec![1, 2, 3])];
        let mut resp = Vec::new();
        write_frames(&mut resp, &bundle).expect("writes");
        assert!(matches!(
            read_assignment(&mut resp.as_slice()),
            Err(ProtocolError::BadMagic { .. })
        ));
    }
}
