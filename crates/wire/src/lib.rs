//! # txstat-wire — the versioned shard-frame codec
//!
//! The shard/merge contract of the measurement pipeline, as bytes. A
//! [`ShardFrame`] carries one shard's accumulator state — the interner key
//! table, the id-indexed counter vectors, and the block-range metadata —
//! from a shard worker process to a central reducer
//! (`txstat_ingest::ReduceSession`). Because every chain sweep is a
//! commutative monoid, reducing decoded frames is a remap-merge; the wire
//! format only has to move state faithfully and refuse anything it cannot
//! vouch for.
//!
//! ## Frame layout (envelope, shared by schema v1 and v2)
//!
//! ```text
//!  offset  size  field
//!  ──────  ────  ─────────────────────────────────────────────────────────
//!       0     4  magic  "TXSF"
//!       4     4  envelope version (u32 LE)            — parse contract
//!       8     8  content hash (u64 LE, FNV-1a over header ∥ payload bytes)
//!      16     4  header length H (u32 LE)
//!      20     H  header section   (JSON: schema_version, chain, range,
//!                                  payload_format …)
//!    20+H     4  payload length P (u32 LE)
//!    24+H     P  payload section  (v1: JSON accumulator state;
//!                                  v2: per header `payload_format` —
//!                                  "bin" binary column sections or
//!                                  "json" canonical JSON)
//! ```
//!
//! The envelope (magic, version, hash, section lengths) is format-agnostic:
//! nothing about parsing it requires the payload to be JSON, which is what
//! let schema v2 swap binary columns in under the same layout. This
//! decoder speaks v1 **and** v2 — a reduction may mix frames from old
//! JSON-emitting workers with new binary ones — and fails cleanly with
//! [`WireError::UnsupportedVersion`] on anything newer. Frames are
//! self-delimiting, so a file or pipe can carry any number of them back to
//! back ([`decode_all`]).

use serde::Value;
use txstat_types::ids::{fnv1a64, fnv1a64_extend};

pub mod fleet;

/// The first frame schema version: canonical-JSON payloads only.
pub const SCHEMA_V1: u32 = 1;

/// The current frame schema version: the header carries a
/// [`PayloadFormat`] tag and payloads default to binary column sections.
/// Decoders accept [`SCHEMA_V1`] frames too; anything newer is rejected.
pub const SCHEMA_VERSION: u32 = 2;

/// The envelope magic: "TXSF" (txstat shard frame).
pub const MAGIC: [u8; 4] = *b"TXSF";

/// Fixed-size envelope prefix: magic + version + hash + header length.
const PREFIX_LEN: usize = 4 + 4 + 8 + 4;

/// Largest header section a decoder will allocate for. Real headers are a
/// few hundred bytes of JSON; anything past this is a corrupt or hostile
/// length prefix, rejected *before* allocation.
pub const MAX_HEADER_LEN: usize = 1 << 20; // 1 MiB

/// Largest payload section a decoder will allocate for. Month-scale
/// columnar shard states are tens of MiB; this bound caps what one frame
/// from an untrusted peer can make the reducer allocate.
pub const MAX_PAYLOAD_LEN: usize = 1 << 29; // 512 MiB

/// Wire failures. Every variant names what the decoder could not vouch
/// for, so a reducer can distinguish "not a frame" from "a frame from the
/// future" from "a frame damaged in flight".
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The bytes do not start with the frame magic.
    BadMagic([u8; 4]),
    /// The buffer ends before the structure it promises.
    Truncated { needed: usize, have: usize },
    /// The envelope version is not one this decoder speaks.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The content hash does not match the header + payload bytes.
    HashMismatch { expected: u64, found: u64 },
    /// The header section is not valid header JSON.
    Header(String),
    /// The payload section could not be interpreted.
    Payload(String),
    /// A section's length prefix exceeds the decoder's allocation cap —
    /// the frame is rejected before any allocation happens, so a hostile
    /// or bit-flipped length can never OOM the reducer.
    SectionTooLarge { section: &'static str, len: u64, max: u64 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported frame version {found} (decoder speaks {supported})")
            }
            WireError::HashMismatch { expected, found } => {
                write!(f, "content hash mismatch: header says {expected:#018x}, bytes hash to {found:#018x}")
            }
            WireError::Header(m) => write!(f, "bad frame header: {m}"),
            WireError::Payload(m) => write!(f, "bad frame payload: {m}"),
            WireError::SectionTooLarge { section, len, max } => {
                write!(f, "{section} section claims {len} bytes, cap is {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// How a frame's payload section is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadFormat {
    /// Canonical JSON accumulator state (the only v1 format).
    Json,
    /// Binary column sections (`txstat_core::columnar::WireState`), the
    /// v2 default.
    #[default]
    Bin,
}

impl PayloadFormat {
    /// The header tag string.
    pub fn tag(self) -> &'static str {
        match self {
            PayloadFormat::Json => "json",
            PayloadFormat::Bin => "bin",
        }
    }

    /// Parse a tag string (CLI flag values, header fields).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(PayloadFormat::Json),
            "bin" => Some(PayloadFormat::Bin),
            _ => None,
        }
    }
}

/// The self-describing frame header: everything a reducer validates
/// *before* it touches the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameHeader {
    /// Schema version of header + payload ([`SCHEMA_V1`] or
    /// [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which chain's accumulator this is ("eos", "tezos", "xrp").
    pub chain: String,
    /// Covered block-position range `[start, end)` in the shard
    /// coordinate space (0-based position in the chain, end-exclusive).
    pub start: u64,
    pub end: u64,
    /// Blocks actually observed into the accumulator (≤ `end - start`;
    /// smaller when the range was clamped to the chain head).
    pub blocks: u64,
    /// Payload section encoding. v1 headers carry no tag (implicitly
    /// JSON — the field is omitted on encode so v1 frames stay
    /// byte-identical to what PR 4 workers emit); v2 headers spell it out.
    pub payload_format: PayloadFormat,
    /// Free-form provenance the reducer requires to be identical across
    /// frames of one session (scenario fingerprint, seed, …).
    pub meta: Value,
}

impl FrameHeader {
    fn to_value(&self) -> Value {
        let mut v = serde_json::json!({
            "schema_version": self.schema_version,
            "chain": self.chain.clone(),
            "start": self.start,
            "end": self.end,
            "blocks": self.blocks,
            "meta": self.meta.clone(),
        });
        if self.schema_version >= SCHEMA_VERSION {
            if let Value::Object(m) = &mut v {
                m.insert(
                    "payload_format".to_owned(),
                    Value::String(self.payload_format.tag().to_owned()),
                );
            }
        }
        v
    }

    fn from_value(v: &Value) -> Result<Self, WireError> {
        let bad = |m: &str| WireError::Header(m.to_owned());
        let u = |k: &str| v.get(k).and_then(Value::as_u64).ok_or_else(|| bad(&format!("missing {k}")));
        let schema_version = u32::try_from(u("schema_version")?)
            .map_err(|_| bad("schema_version out of u32 range"))?;
        let chain = v
            .get("chain")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing chain"))?
            .to_owned();
        let payload_format = match v.get("payload_format") {
            None => PayloadFormat::Json,
            Some(Value::String(s)) => PayloadFormat::parse(s)
                .ok_or_else(|| bad(&format!("unknown payload_format {s:?}")))?,
            Some(_) => return Err(bad("payload_format must be a string")),
        };
        if schema_version == SCHEMA_V1 && payload_format != PayloadFormat::Json {
            return Err(bad("schema v1 frames carry JSON payloads only"));
        }
        Ok(FrameHeader {
            schema_version,
            chain,
            start: u("start")?,
            end: u("end")?,
            blocks: u("blocks")?,
            payload_format,
            meta: v.get("meta").cloned().unwrap_or(Value::Null),
        })
    }
}

/// One shard's serialized accumulator state plus the header describing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFrame {
    pub header: FrameHeader,
    /// The payload section bytes — JSON text or binary column sections,
    /// per `header.payload_format`; the envelope treats them as opaque
    /// bytes either way.
    pub payload: Vec<u8>,
}

impl ShardFrame {
    /// Build a **v1** frame around a JSON accumulator state — the frame
    /// old (PR 4) reducers still decode, kept producible for mixed-fleet
    /// rollouts (`reproduce shard --payload json`).
    pub fn from_state(
        chain: &str,
        start: u64,
        end: u64,
        blocks: u64,
        meta: Value,
        state: &Value,
    ) -> Self {
        ShardFrame {
            header: FrameHeader {
                schema_version: SCHEMA_V1,
                chain: chain.to_owned(),
                start,
                end,
                blocks,
                payload_format: PayloadFormat::Json,
                meta,
            },
            payload: serde_json::to_vec(state).expect("accumulator state serializes"),
        }
    }

    /// Build a **v2** frame around binary column sections
    /// (`WireState::to_wire_bytes` output) — the default shard payload.
    pub fn from_columns(
        chain: &str,
        start: u64,
        end: u64,
        blocks: u64,
        meta: Value,
        payload: Vec<u8>,
    ) -> Self {
        ShardFrame {
            header: FrameHeader {
                schema_version: SCHEMA_VERSION,
                chain: chain.to_owned(),
                start,
                end,
                blocks,
                payload_format: PayloadFormat::Bin,
                meta,
            },
            payload,
        }
    }

    /// Parse a JSON payload section back into the state tree. Binary
    /// payloads have no JSON state — decode them with
    /// `WireState::from_wire_bytes` instead.
    pub fn state(&self) -> Result<Value, WireError> {
        if self.header.payload_format != PayloadFormat::Json {
            return Err(WireError::Payload(
                "binary-column payload has no JSON state".to_owned(),
            ));
        }
        serde_json::from_slice(&self.payload).map_err(|e| WireError::Payload(e.to_string()))
    }

    /// Encode the frame into its framed byte layout (see module docs).
    pub fn encode(&self) -> Vec<u8> {
        let header = serde_json::to_vec(&self.header.to_value()).expect("header serializes");
        let hash = content_hash(&header, &self.payload);
        let mut out = Vec::with_capacity(PREFIX_LEN + header.len() + 4 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.header.schema_version.to_le_bytes());
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decode one frame from the front of `bytes`; returns the frame and
    /// how many bytes it consumed (frames concatenate in files/pipes).
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let need = |needed: usize| -> Result<(), WireError> {
            if bytes.len() < needed {
                Err(WireError::Truncated { needed, have: bytes.len() })
            } else {
                Ok(())
            }
        };
        need(PREFIX_LEN)?;
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SCHEMA_V1 && version != SCHEMA_VERSION {
            return Err(WireError::UnsupportedVersion { found: version, supported: SCHEMA_VERSION });
        }
        let expected = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let hlen = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        // Length prefixes are untrusted input: cap them before committing
        // to read (or, on the streaming path, allocate) that many bytes.
        cap_section("header", hlen, MAX_HEADER_LEN)?;
        need(PREFIX_LEN + hlen + 4)?;
        let header_bytes = &bytes[PREFIX_LEN..PREFIX_LEN + hlen];
        let poff = PREFIX_LEN + hlen;
        let plen =
            u32::from_le_bytes(bytes[poff..poff + 4].try_into().expect("4 bytes")) as usize;
        cap_section("payload", plen, MAX_PAYLOAD_LEN)?;
        let total = poff + 4 + plen;
        need(total)?;
        let payload = &bytes[poff + 4..total];
        let found = content_hash(header_bytes, payload);
        if found != expected {
            return Err(WireError::HashMismatch { expected, found });
        }
        let header_value: Value = serde_json::from_slice(header_bytes)
            .map_err(|e| WireError::Header(e.to_string()))?;
        let header = FrameHeader::from_value(&header_value)?;
        if header.schema_version != version {
            return Err(WireError::Header(format!(
                "header schema_version {} disagrees with envelope version {version}",
                header.schema_version
            )));
        }
        Ok((ShardFrame { header, payload: payload.to_vec() }, total))
    }
}

/// The frame content hash: FNV-1a over the header section bytes, extended
/// over the payload section bytes.
pub fn content_hash(header: &[u8], payload: &[u8]) -> u64 {
    fnv1a64_extend(fnv1a64(header), payload)
}

/// Reject a section length above its cap before anything is allocated.
fn cap_section(section: &'static str, len: usize, max: usize) -> Result<(), WireError> {
    if len > max {
        return Err(WireError::SectionTooLarge {
            section,
            len: len as u64,
            max: max as u64,
        });
    }
    Ok(())
}

/// Decode every concatenated frame in `bytes` (e.g. one `shard` output
/// file carrying the three chain frames). Trailing garbage is an error.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<ShardFrame>, WireError> {
    let mut frames = Vec::new();
    let mut rest = bytes;
    while !rest.is_empty() {
        let (frame, used) = ShardFrame::decode(rest)?;
        frames.push(frame);
        rest = &rest[used..];
    }
    Ok(frames)
}

/// Encode frames back to back — the inverse of [`decode_all`].
pub fn encode_all(frames: &[ShardFrame]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(&f.encode());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn frame(chain: &str, start: u64, end: u64) -> ShardFrame {
        ShardFrame::from_state(
            chain,
            start,
            end,
            end - start,
            json!({"scenario": "test"}),
            &json!({"names": ["a", "b"], "counts": [3, 4]}),
        )
    }

    fn bin_frame(chain: &str, start: u64, end: u64) -> ShardFrame {
        ShardFrame::from_columns(
            chain,
            start,
            end,
            end - start,
            json!({"scenario": "test"}),
            vec![0x02, b'e', 0x01, 0x7f, 0xAB],
        )
    }

    #[test]
    fn round_trips_bytes_and_state() {
        let f = frame("eos", 10, 20);
        assert_eq!(f.header.schema_version, SCHEMA_V1);
        let bytes = f.encode();
        let (back, used) = ShardFrame::decode(&bytes).expect("valid frame");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
        assert_eq!(back.state().expect("payload parses"), f.state().unwrap());
        assert_eq!(back.header.chain, "eos");
        assert_eq!((back.header.start, back.header.end, back.header.blocks), (10, 20, 10));
    }

    #[test]
    fn v2_binary_frames_round_trip() {
        let f = bin_frame("xrp", 3, 9);
        assert_eq!(f.header.schema_version, SCHEMA_VERSION);
        assert_eq!(f.header.payload_format, PayloadFormat::Bin);
        let bytes = f.encode();
        let (back, used) = ShardFrame::decode(&bytes).expect("valid frame");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
        assert_eq!(back.payload, f.payload, "binary payload moves verbatim");
        // A binary payload has no JSON state tree.
        assert!(matches!(back.state(), Err(WireError::Payload(_))));
    }

    #[test]
    fn v1_headers_stay_byte_identical_to_pr4() {
        // New code emitting a v1 frame must not grow header fields old
        // readers never saw: the format tag is implicit for v1.
        let f = frame("eos", 0, 2);
        let header_json = serde_json::to_string(&f.header.to_value()).unwrap();
        assert!(
            !header_json.contains("payload_format"),
            "v1 header grew a field: {header_json}"
        );
        // And a v1 header claiming a binary payload is rejected.
        let v = json!({
            "schema_version": 1, "chain": "eos", "start": 0, "end": 2,
            "blocks": 2, "payload_format": "bin", "meta": null,
        });
        assert!(matches!(FrameHeader::from_value(&v), Err(WireError::Header(_))));
        // As is an unknown format tag.
        let v = json!({
            "schema_version": 2, "chain": "eos", "start": 0, "end": 2,
            "blocks": 2, "payload_format": "msgpack", "meta": null,
        });
        assert!(matches!(FrameHeader::from_value(&v), Err(WireError::Header(_))));
    }

    #[test]
    fn concatenated_mixed_version_frames_round_trip() {
        let frames = vec![frame("eos", 0, 5), bin_frame("tezos", 0, 5), frame("xrp", 5, 9)];
        let bytes = encode_all(&frames);
        let back = decode_all(&bytes).expect("all frames decode");
        assert_eq!(back, frames);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = frame("eos", 0, 1).encode();
        bytes[0] = b'X';
        assert!(matches!(ShardFrame::decode(&bytes), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = frame("eos", 0, 1).encode();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            ShardFrame::decode(&bytes),
            Err(WireError::UnsupportedVersion { found: 99, supported: SCHEMA_VERSION })
        );
    }

    #[test]
    fn rejects_every_truncation_point() {
        for whole in [frame("xrp", 3, 9), bin_frame("xrp", 3, 9)] {
            let bytes = whole.encode();
            for cut in 0..bytes.len() {
                let err =
                    ShardFrame::decode(&bytes[..cut]).expect_err("truncated frame must fail");
                assert!(
                    matches!(err, WireError::Truncated { .. }),
                    "cut at {cut}: got {err:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_payload_corruption() {
        let f = frame("tezos", 0, 4);
        let bytes = f.encode();
        // Flip one bit in the payload section.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(ShardFrame::decode(&corrupt), Err(WireError::HashMismatch { .. })));
        // And one in the header section.
        let mut corrupt = bytes;
        corrupt[PREFIX_LEN] ^= 0x01;
        assert!(matches!(ShardFrame::decode(&corrupt), Err(WireError::HashMismatch { .. })));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut bytes = frame("eos", 0, 1).encode();
        bytes.push(0xAB);
        assert!(decode_all(&bytes).is_err());
    }

    #[test]
    fn oversized_header_length_is_capped_before_allocation() {
        let mut bytes = frame("eos", 0, 1).encode();
        // Forge a header length just past the cap; the truncated buffer
        // must still produce SectionTooLarge, not Truncated, because the
        // cap check fires before the decoder commits to the read.
        bytes[16..20].copy_from_slice(&((MAX_HEADER_LEN as u32) + 1).to_le_bytes());
        assert_eq!(
            ShardFrame::decode(&bytes),
            Err(WireError::SectionTooLarge {
                section: "header",
                len: MAX_HEADER_LEN as u64 + 1,
                max: MAX_HEADER_LEN as u64,
            })
        );
    }

    #[test]
    fn oversized_payload_length_is_capped_before_allocation() {
        let whole = frame("eos", 0, 1);
        let mut bytes = whole.encode();
        let hlen = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let poff = PREFIX_LEN + hlen;
        bytes[poff..poff + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            ShardFrame::decode(&bytes),
            Err(WireError::SectionTooLarge {
                section: "payload",
                len: u32::MAX as u64,
                max: MAX_PAYLOAD_LEN as u64,
            })
        );
    }

    #[test]
    fn in_cap_lengths_on_short_buffers_stay_truncated() {
        // A plausible (sub-cap) length on a short buffer is still the
        // Truncated case — the cap must not misclassify honest short reads.
        let bytes = frame("eos", 0, 1).encode();
        let cut = &bytes[..PREFIX_LEN + 2];
        assert!(matches!(ShardFrame::decode(cut), Err(WireError::Truncated { .. })));
    }
}
