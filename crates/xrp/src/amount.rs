//! XRP ledger amounts: native drops vs issued IOUs.
//!
//! §2.4: any account can issue an IOU with an arbitrary ticker; whether a
//! `BTC` IOU is worth anything depends entirely on its issuer. An amount is
//! therefore either native XRP (integer drops) or a triple of
//! (currency, issuer, value) — the paper's entire value analysis (Figures 7,
//! 11, 12) hinges on this distinction.

use crate::address::AccountId;
use serde::{Deserialize, Serialize};
use std::fmt;
use txstat_types::amount::SymCode;

/// Drops per XRP (1 XRP = 10⁶ drops).
pub const DROPS_PER_XRP: i64 = 1_000_000;

/// IOU values are fixed-point with 6 decimals in this model.
pub const IOU_DECIMALS: u32 = 6;
pub const IOU_UNIT: i128 = 1_000_000;

/// Identity of an issued currency: ticker + issuer. Two `BTC` IOUs from
/// different issuers are entirely different assets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IssuedCurrency {
    pub currency: SymCode,
    pub issuer: AccountId,
}

impl IssuedCurrency {
    pub fn new(currency: &str, issuer: AccountId) -> Self {
        IssuedCurrency { currency: SymCode::new(currency), issuer }
    }
}

impl fmt::Display for IssuedCurrency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.currency, self.issuer)
    }
}

/// An asset: XRP or a specific issued currency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Asset {
    Xrp,
    Iou(IssuedCurrency),
}

impl Asset {
    pub fn iou(currency: &str, issuer: AccountId) -> Self {
        Asset::Iou(IssuedCurrency::new(currency, issuer))
    }

    pub fn is_xrp(&self) -> bool {
        matches!(self, Asset::Xrp)
    }

    pub fn currency_code(&self) -> SymCode {
        match self {
            Asset::Xrp => SymCode::new("XRP"),
            Asset::Iou(ic) => ic.currency,
        }
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asset::Xrp => write!(f, "XRP"),
            Asset::Iou(ic) => write!(f, "{ic}"),
        }
    }
}

/// An amount of some asset. Values are i128 raw units: drops for XRP,
/// `IOU_UNIT`-scaled for IOUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Amount {
    pub asset: Asset,
    pub value: i128,
}

impl Amount {
    pub fn xrp_drops(drops: i64) -> Self {
        Amount { asset: Asset::Xrp, value: drops as i128 }
    }

    pub fn xrp(whole: i64) -> Self {
        Self::xrp_drops(whole * DROPS_PER_XRP)
    }

    pub fn iou(currency: &str, issuer: AccountId, raw: i128) -> Self {
        Amount { asset: Asset::iou(currency, issuer), value: raw }
    }

    pub fn iou_whole(currency: &str, issuer: AccountId, whole: i64) -> Self {
        Self::iou(currency, issuer, whole as i128 * IOU_UNIT)
    }

    pub fn zero(asset: Asset) -> Self {
        Amount { asset, value: 0 }
    }

    pub fn is_positive(&self) -> bool {
        self.value > 0
    }

    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Whole-unit f64 (reporting only).
    pub fn to_f64(&self) -> f64 {
        match self.asset {
            Asset::Xrp => self.value as f64 / DROPS_PER_XRP as f64,
            Asset::Iou(_) => self.value as f64 / IOU_UNIT as f64,
        }
    }

    /// Same-asset checked addition.
    pub fn checked_add(&self, other: &Amount) -> Option<Amount> {
        if self.asset != other.asset {
            return None;
        }
        Some(Amount { asset: self.asset, value: self.value.checked_add(other.value)? })
    }

    /// Same-asset checked subtraction.
    pub fn checked_sub(&self, other: &Amount) -> Option<Amount> {
        if self.asset != other.asset {
            return None;
        }
        Some(Amount { asset: self.asset, value: self.value.checked_sub(other.value)? })
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.asset {
            Asset::Xrp => write!(f, "{} drops", self.value),
            Asset::Iou(ic) => {
                write!(f, "{} {}", txstat_types::fmt_scaled(self.value, IOU_DECIMALS), ic)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_scales() {
        assert_eq!(Amount::xrp(5).value, 5_000_000);
        assert_eq!(Amount::iou_whole("USD", AccountId(9), 3).value, 3_000_000);
        assert_eq!(Amount::xrp(2).to_f64(), 2.0);
    }

    #[test]
    fn issuer_distinguishes_assets() {
        let a = Asset::iou("BTC", AccountId(1));
        let b = Asset::iou("BTC", AccountId(2));
        assert_ne!(a, b, "same ticker, different issuer, different asset");
        assert_eq!(a.currency_code().as_str(), "BTC");
        assert!(!a.is_xrp());
        assert!(Asset::Xrp.is_xrp());
    }

    #[test]
    fn arithmetic_requires_same_asset() {
        let x = Amount::xrp(1);
        let u = Amount::iou_whole("USD", AccountId(1), 1);
        assert!(x.checked_add(&u).is_none());
        assert_eq!(x.checked_add(&Amount::xrp(2)).unwrap(), Amount::xrp(3));
        assert_eq!(Amount::xrp(3).checked_sub(&Amount::xrp(1)).unwrap(), Amount::xrp(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Amount::xrp_drops(42).to_string(), "42 drops");
        let s = Amount::iou_whole("USD", AccountId(7), 1).to_string();
        assert!(s.starts_with("1.000000 USD."), "{s}");
    }
}
