//! Trust lines — the IOU accounting fabric of the XRP ledger.
//!
//! §2.4: paying 10 BTC on the ledger means sending an IOU; the issuer owes
//! the holder. A trust line records how much of an issued currency a holder
//! is willing to hold (`limit`, set by `TrustSet`) and how much it currently
//! holds (`balance`). The invariant the paper's value analysis relies on:
//! an issuer's total obligation in a currency equals the sum of all holder
//! balances.

use crate::address::AccountId;
use crate::amount::IssuedCurrency;
use std::collections::HashMap;

/// One holder-side trust line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Maximum the holder is willing to hold (raw IOU units).
    pub limit: i128,
    /// Current holding (raw IOU units, ≥ 0 in this model).
    pub balance: i128,
}

/// Trust-line errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlError {
    /// Receiver has no trust line for the currency (tecNO_LINE / PATH_DRY).
    NoLine { holder: AccountId, currency: IssuedCurrency },
    /// Credit would exceed the receiver's limit.
    LimitExceeded { holder: AccountId, currency: IssuedCurrency },
    /// Holder lacks the IOU balance to send.
    InsufficientFunds { holder: AccountId, currency: IssuedCurrency, have: i128, need: i128 },
    NonPositiveAmount,
    /// The issuer cannot hold a line in its own currency.
    IssuerSelfLine(AccountId),
}

impl std::fmt::Display for TlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlError::NoLine { holder, currency } => write!(f, "{holder} has no line for {currency}"),
            TlError::LimitExceeded { holder, currency } => {
                write!(f, "credit exceeds {holder}'s limit for {currency}")
            }
            TlError::InsufficientFunds { holder, currency, have, need } => {
                write!(f, "{holder} holds {have} of {currency}, needs {need}")
            }
            TlError::NonPositiveAmount => write!(f, "amount must be positive"),
            TlError::IssuerSelfLine(a) => write!(f, "{a} cannot trust its own issuance"),
        }
    }
}

impl std::error::Error for TlError {}

/// All trust lines plus per-currency issuer obligations.
#[derive(Debug, Clone, Default)]
pub struct TrustLines {
    lines: HashMap<(AccountId, IssuedCurrency), Line>,
    obligations: HashMap<IssuedCurrency, i128>,
}

impl TrustLines {
    pub fn new() -> Self {
        Self::default()
    }

    /// `TrustSet`: create or update a line's limit. Lowering a limit below
    /// the current balance is allowed (as on mainnet); it only blocks new
    /// limit-respecting credits.
    pub fn set_limit(
        &mut self,
        holder: AccountId,
        currency: IssuedCurrency,
        limit: i128,
    ) -> Result<(), TlError> {
        if holder == currency.issuer {
            return Err(TlError::IssuerSelfLine(holder));
        }
        if limit < 0 {
            return Err(TlError::NonPositiveAmount);
        }
        self.lines
            .entry((holder, currency))
            .and_modify(|l| l.limit = limit)
            .or_insert(Line { limit, balance: 0 });
        Ok(())
    }

    pub fn line(&self, holder: AccountId, currency: IssuedCurrency) -> Option<Line> {
        self.lines.get(&(holder, currency)).copied()
    }

    pub fn has_line(&self, holder: AccountId, currency: IssuedCurrency) -> bool {
        self.lines.contains_key(&(holder, currency))
    }

    pub fn balance(&self, holder: AccountId, currency: IssuedCurrency) -> i128 {
        self.lines.get(&(holder, currency)).map(|l| l.balance).unwrap_or(0)
    }

    /// Issuer's total outstanding obligation in a currency.
    pub fn obligations(&self, currency: IssuedCurrency) -> i128 {
        self.obligations.get(&currency).copied().unwrap_or(0)
    }

    /// Credit a holder. `respect_limit` distinguishes payments (limited)
    /// from DEX purchases (implicit line creation, no limit enforcement —
    /// acquiring an asset on the DEX implies consent).
    pub fn credit(
        &mut self,
        holder: AccountId,
        currency: IssuedCurrency,
        amount: i128,
        respect_limit: bool,
    ) -> Result<(), TlError> {
        if amount <= 0 {
            return Err(TlError::NonPositiveAmount);
        }
        if holder == currency.issuer {
            return Err(TlError::IssuerSelfLine(holder));
        }
        match self.lines.get_mut(&(holder, currency)) {
            Some(line) => {
                if respect_limit && line.balance + amount > line.limit {
                    return Err(TlError::LimitExceeded { holder, currency });
                }
                line.balance += amount;
            }
            None => {
                if respect_limit {
                    return Err(TlError::NoLine { holder, currency });
                }
                // Implicit line from a DEX acquisition.
                self.lines.insert((holder, currency), Line { limit: 0, balance: amount });
            }
        }
        *self.obligations.entry(currency).or_insert(0) += amount;
        Ok(())
    }

    /// Debit a holder.
    pub fn debit(
        &mut self,
        holder: AccountId,
        currency: IssuedCurrency,
        amount: i128,
    ) -> Result<(), TlError> {
        if amount <= 0 {
            return Err(TlError::NonPositiveAmount);
        }
        let line = self
            .lines
            .get_mut(&(holder, currency))
            .ok_or(TlError::NoLine { holder, currency })?;
        if line.balance < amount {
            return Err(TlError::InsufficientFunds {
                holder,
                currency,
                have: line.balance,
                need: amount,
            });
        }
        line.balance -= amount;
        *self.obligations.entry(currency).or_insert(0) -= amount;
        Ok(())
    }

    /// Move IOU value `from → to`. Issuance (from == issuer) mints
    /// obligation; redemption (to == issuer) burns it; holder→holder moves it.
    pub fn transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        currency: IssuedCurrency,
        amount: i128,
        respect_limit: bool,
    ) -> Result<(), TlError> {
        if amount <= 0 {
            return Err(TlError::NonPositiveAmount);
        }
        if from == currency.issuer {
            return self.credit(to, currency, amount, respect_limit);
        }
        if to == currency.issuer {
            return self.debit(from, currency, amount);
        }
        // Holder → holder: verify debit side first, then credit; roll back
        // on credit failure to stay atomic.
        self.debit(from, currency, amount)?;
        if let Err(e) = self.credit(to, currency, amount, respect_limit) {
            self.credit(from, currency, amount, false).expect("rollback credit");
            return Err(e);
        }
        Ok(())
    }

    /// Holders (with non-zero balance) of a currency.
    pub fn holders(&self, currency: IssuedCurrency) -> Vec<(AccountId, i128)> {
        let mut v: Vec<(AccountId, i128)> = self
            .lines
            .iter()
            .filter(|((_, c), l)| *c == currency && l.balance != 0)
            .map(|((h, _), l)| (*h, l.balance))
            .collect();
        v.sort();
        v
    }

    /// Count of trust lines (for owner-reserve accounting).
    pub fn line_count(&self, holder: AccountId) -> usize {
        self.lines.keys().filter(|(h, _)| *h == holder).count()
    }

    /// Invariant: per currency, Σ holder balances == recorded obligations,
    /// and no balance is negative.
    pub fn check_conservation(&self) -> Result<(), String> {
        let mut sums: HashMap<IssuedCurrency, i128> = HashMap::new();
        for ((h, c), l) in &self.lines {
            if l.balance < 0 {
                return Err(format!("negative balance for {h} in {c}"));
            }
            *sums.entry(*c).or_insert(0) += l.balance;
        }
        for (c, ob) in &self.obligations {
            if sums.get(c).copied().unwrap_or(0) != *ob {
                return Err(format!("obligation mismatch for {c}: {ob}"));
            }
        }
        for (c, s) in &sums {
            if self.obligations.get(c).copied().unwrap_or(0) != *s {
                return Err(format!("untracked obligation for {c}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn usd() -> IssuedCurrency {
        IssuedCurrency::new("USD", AccountId(1))
    }

    #[test]
    fn issue_move_redeem() {
        let mut tl = TrustLines::new();
        let (alice, bob, issuer) = (AccountId(10), AccountId(11), AccountId(1));
        tl.set_limit(alice, usd(), 1_000_000_000).unwrap();
        tl.set_limit(bob, usd(), 1_000_000_000).unwrap();
        // Issuance.
        tl.transfer(issuer, alice, usd(), 500, true).unwrap();
        assert_eq!(tl.balance(alice, usd()), 500);
        assert_eq!(tl.obligations(usd()), 500);
        // Holder to holder.
        tl.transfer(alice, bob, usd(), 200, true).unwrap();
        assert_eq!(tl.balance(alice, usd()), 300);
        assert_eq!(tl.balance(bob, usd()), 200);
        assert_eq!(tl.obligations(usd()), 500);
        // Redemption burns obligation.
        tl.transfer(bob, issuer, usd(), 150, true).unwrap();
        assert_eq!(tl.obligations(usd()), 350);
        tl.check_conservation().unwrap();
    }

    #[test]
    fn no_line_blocks_payment_but_not_dex_credit() {
        let mut tl = TrustLines::new();
        let carol = AccountId(20);
        assert!(matches!(
            tl.credit(carol, usd(), 100, true),
            Err(TlError::NoLine { .. })
        ));
        // DEX-style credit creates an implicit line.
        tl.credit(carol, usd(), 100, false).unwrap();
        assert_eq!(tl.balance(carol, usd()), 100);
        tl.check_conservation().unwrap();
    }

    #[test]
    fn limit_enforced_for_payments() {
        let mut tl = TrustLines::new();
        let a = AccountId(10);
        tl.set_limit(a, usd(), 100).unwrap();
        tl.credit(a, usd(), 100, true).unwrap();
        assert!(matches!(
            tl.credit(a, usd(), 1, true),
            Err(TlError::LimitExceeded { .. })
        ));
        // DEX credit ignores the limit.
        tl.credit(a, usd(), 1, false).unwrap();
        assert_eq!(tl.balance(a, usd()), 101);
    }

    #[test]
    fn holder_transfer_is_atomic() {
        let mut tl = TrustLines::new();
        let (a, b) = (AccountId(10), AccountId(11));
        tl.set_limit(a, usd(), 1000).unwrap();
        tl.credit(a, usd(), 500, true).unwrap();
        // b has no line → transfer fails, a's balance restored.
        assert!(tl.transfer(a, b, usd(), 200, true).is_err());
        assert_eq!(tl.balance(a, usd()), 500);
        tl.check_conservation().unwrap();
    }

    #[test]
    fn issuer_cannot_self_line() {
        let mut tl = TrustLines::new();
        assert!(matches!(
            tl.set_limit(AccountId(1), usd(), 10),
            Err(TlError::IssuerSelfLine(_))
        ));
    }

    #[test]
    fn insufficient_funds_reported() {
        let mut tl = TrustLines::new();
        let a = AccountId(10);
        tl.set_limit(a, usd(), 1000).unwrap();
        tl.credit(a, usd(), 10, true).unwrap();
        assert!(matches!(
            tl.debit(a, usd(), 20),
            Err(TlError::InsufficientFunds { have: 10, need: 20, .. })
        ));
    }

    #[test]
    fn holders_enumeration() {
        let mut tl = TrustLines::new();
        for i in 10..13u64 {
            tl.set_limit(AccountId(i), usd(), 1000).unwrap();
            tl.credit(AccountId(i), usd(), i as i128, true).unwrap();
        }
        let h = tl.holders(usd());
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], (AccountId(10), 10));
    }

    proptest! {
        /// Random op sequences preserve obligations == Σ balances.
        #[test]
        fn prop_conservation(ops in proptest::collection::vec((0u8..3, 0usize..4, 0usize..4, 1i128..500), 0..80)) {
            let accounts = [AccountId(1), AccountId(10), AccountId(11), AccountId(12)];
            let c = usd(); // issuer is accounts[0]
            let mut tl = TrustLines::new();
            for a in &accounts[1..] {
                tl.set_limit(*a, c, 10_000).unwrap();
            }
            for (kind, f, t, amt) in ops {
                let from = accounts[f];
                let to = accounts[t];
                match kind {
                    0 => { let _ = tl.transfer(from, to, c, amt, true); }
                    1 => { if to != c.issuer { let _ = tl.credit(to, c, amt, false); } }
                    _ => { if from != c.issuer { let _ = tl.debit(from, c, amt); } }
                }
                prop_assert!(tl.check_conservation().is_ok());
            }
        }
    }
}
