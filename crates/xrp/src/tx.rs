//! XRP ledger transaction types and result codes.
//!
//! The type list is exactly Figure 1's XRP column; the result codes include
//! the two failure codes the paper calls out (§3.2): `tecPATH_DRY` for
//! payments with no funded path and `tecUNFUNDED_OFFER` for offers promising
//! unheld funds. Crucially, *failed transactions are recorded on-ledger*
//! with their fee burned — which is why ~10% of observed throughput is
//! failures.

use crate::address::AccountId;
use crate::amount::{Amount, IssuedCurrency};
use crate::dex::OfferId;
use serde::{Deserialize, Serialize};
use txstat_types::time::ChainTime;

/// Transaction types (Figure 1, XRP column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TxType {
    Payment,
    EscrowFinish,
    TrustSet,
    AccountSet,
    SignerListSet,
    SetRegularKey,
    OfferCreate,
    OfferCancel,
    EscrowCreate,
    EscrowCancel,
    PaymentChannelClaim,
    PaymentChannelCreate,
    EnableAmendment,
}

impl TxType {
    pub const ALL: [TxType; 13] = [
        TxType::Payment,
        TxType::EscrowFinish,
        TxType::TrustSet,
        TxType::AccountSet,
        TxType::SignerListSet,
        TxType::SetRegularKey,
        TxType::OfferCreate,
        TxType::OfferCancel,
        TxType::EscrowCreate,
        TxType::EscrowCancel,
        TxType::PaymentChannelClaim,
        TxType::PaymentChannelCreate,
        TxType::EnableAmendment,
    ];

    /// Wire name, as in the ledger JSON (`TransactionType`).
    pub const fn wire(self) -> &'static str {
        match self {
            TxType::Payment => "Payment",
            TxType::EscrowFinish => "EscrowFinish",
            TxType::TrustSet => "TrustSet",
            TxType::AccountSet => "AccountSet",
            TxType::SignerListSet => "SignerListSet",
            TxType::SetRegularKey => "SetRegularKey",
            TxType::OfferCreate => "OfferCreate",
            TxType::OfferCancel => "OfferCancel",
            TxType::EscrowCreate => "EscrowCreate",
            TxType::EscrowCancel => "EscrowCancel",
            TxType::PaymentChannelClaim => "PaymentChannelClaim",
            TxType::PaymentChannelCreate => "PaymentChannelCreate",
            TxType::EnableAmendment => "EnableAmendment",
        }
    }

    pub fn from_wire(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|t| t.wire() == s)
    }
}

impl std::fmt::Display for TxType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire())
    }
}

/// Engine result codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxResult {
    Success,
    /// No funded path could deliver the payment.
    PathDry,
    /// Offer creator holds none of the promised currency.
    UnfundedOffer,
    /// XRP payment exceeds spendable balance.
    UnfundedPayment,
    /// Destination account does not exist (and payment can't create it).
    NoDestination,
    /// Receiver has no trust line.
    NoLine,
    /// Condition not met (escrow time locks, ownership).
    NoPermission,
    /// Referenced ledger object missing.
    NoEntry,
    /// Malformed transaction (negative amounts, same-asset offer…).
    Malformed,
}

impl TxResult {
    /// Wire code string, as in transaction metadata.
    pub const fn wire(self) -> &'static str {
        match self {
            TxResult::Success => "tesSUCCESS",
            TxResult::PathDry => "tecPATH_DRY",
            TxResult::UnfundedOffer => "tecUNFUNDED_OFFER",
            TxResult::UnfundedPayment => "tecUNFUNDED_PAYMENT",
            TxResult::NoDestination => "tecNO_DST",
            TxResult::NoLine => "tecNO_LINE",
            TxResult::NoPermission => "tecNO_PERMISSION",
            TxResult::NoEntry => "tecNO_ENTRY",
            TxResult::Malformed => "temMALFORMED",
        }
    }

    pub fn from_wire(s: &str) -> Option<Self> {
        [
            TxResult::Success,
            TxResult::PathDry,
            TxResult::UnfundedOffer,
            TxResult::UnfundedPayment,
            TxResult::NoDestination,
            TxResult::NoLine,
            TxResult::NoPermission,
            TxResult::NoEntry,
            TxResult::Malformed,
        ]
        .into_iter()
        .find(|r| r.wire() == s)
    }

    pub fn is_success(self) -> bool {
        matches!(self, TxResult::Success)
    }
}

/// Transaction payloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxPayload {
    Payment {
        destination: AccountId,
        amount: Amount,
        /// Maximum the sender spends for cross-currency delivery.
        send_max: Option<Amount>,
    },
    OfferCreate {
        /// TakerGets: what the offer owner gives.
        gets: Amount,
        /// TakerPays: what the offer owner wants.
        pays: Amount,
    },
    OfferCancel {
        offer: OfferId,
    },
    TrustSet {
        currency: IssuedCurrency,
        limit: i128,
    },
    AccountSet {
        flags: u32,
    },
    SignerListSet {
        quorum: u8,
        signer_count: u8,
    },
    SetRegularKey,
    EscrowCreate {
        destination: AccountId,
        drops: i64,
        finish_after: ChainTime,
        cancel_after: Option<ChainTime>,
    },
    EscrowFinish {
        escrow_id: u64,
    },
    EscrowCancel {
        escrow_id: u64,
    },
    PaymentChannelCreate {
        destination: AccountId,
        drops: i64,
    },
    PaymentChannelClaim {
        channel_id: u64,
        drops: i64,
    },
    EnableAmendment {
        amendment: String,
    },
}

impl TxPayload {
    pub fn tx_type(&self) -> TxType {
        match self {
            TxPayload::Payment { .. } => TxType::Payment,
            TxPayload::OfferCreate { .. } => TxType::OfferCreate,
            TxPayload::OfferCancel { .. } => TxType::OfferCancel,
            TxPayload::TrustSet { .. } => TxType::TrustSet,
            TxPayload::AccountSet { .. } => TxType::AccountSet,
            TxPayload::SignerListSet { .. } => TxType::SignerListSet,
            TxPayload::SetRegularKey => TxType::SetRegularKey,
            TxPayload::EscrowCreate { .. } => TxType::EscrowCreate,
            TxPayload::EscrowFinish { .. } => TxType::EscrowFinish,
            TxPayload::EscrowCancel { .. } => TxType::EscrowCancel,
            TxPayload::PaymentChannelCreate { .. } => TxType::PaymentChannelCreate,
            TxPayload::PaymentChannelClaim { .. } => TxType::PaymentChannelClaim,
            TxPayload::EnableAmendment { .. } => TxType::EnableAmendment,
        }
    }
}

/// A submitted transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    pub account: AccountId,
    pub payload: TxPayload,
    pub fee_drops: i64,
    /// The beneficiary reference exchanges attach (§3.3: tag 104398).
    pub destination_tag: Option<u32>,
}

impl Transaction {
    pub fn new(account: AccountId, payload: TxPayload, fee_drops: i64) -> Self {
        Transaction { account, payload, fee_drops, destination_tag: None }
    }

    pub fn with_tag(mut self, tag: u32) -> Self {
        self.destination_tag = Some(tag);
        self
    }

    pub fn tx_type(&self) -> TxType {
        self.payload.tx_type()
    }
}

/// A transaction as recorded in a closed ledger: payload + engine result +
/// delivery metadata (what actually moved, for the Figure 12 value flows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedTx {
    pub tx: Transaction,
    pub result: TxResult,
    /// For successful payments: the amount actually delivered.
    pub delivered: Option<Amount>,
    /// For OfferCreate: whether the offer crossed at all at apply time.
    pub crossed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        for t in TxType::ALL {
            assert_eq!(TxType::from_wire(t.wire()), Some(t));
        }
        assert_eq!(TxType::from_wire("Bogus"), None);
        for r in [
            TxResult::Success,
            TxResult::PathDry,
            TxResult::UnfundedOffer,
            TxResult::Malformed,
        ] {
            assert_eq!(TxResult::from_wire(r.wire()), Some(r));
        }
    }

    #[test]
    fn paper_result_codes() {
        assert_eq!(TxResult::PathDry.wire(), "tecPATH_DRY");
        assert_eq!(TxResult::UnfundedOffer.wire(), "tecUNFUNDED_OFFER");
        assert!(TxResult::Success.is_success());
        assert!(!TxResult::PathDry.is_success());
    }

    #[test]
    fn payload_type_mapping() {
        let p = TxPayload::Payment {
            destination: AccountId(2),
            amount: Amount::xrp(1),
            send_max: None,
        };
        assert_eq!(p.tx_type(), TxType::Payment);
        let t = Transaction::new(AccountId(1), p, 10).with_tag(104_398);
        assert_eq!(t.destination_tag, Some(104_398));
        assert_eq!(t.tx_type().wire(), "Payment");
    }
}
