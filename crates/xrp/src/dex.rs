//! The on-ledger decentralized exchange: per-pair order books with
//! price-time priority, partial fills, and unfunded-offer cleanup.
//!
//! OfferCreate is the single most common transaction type in the paper's
//! dataset (50.4% of throughput, Figure 1), yet only ~0.2% of created
//! offers are ever filled (Figure 7). The book bookkeeping here tracks
//! exactly that statistic, and fills feed the exchange-rate oracle behind
//! Figures 11 and 12.

use crate::address::AccountId;
use crate::amount::{Amount, Asset};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a resting offer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct OfferId(pub u64);

/// A resting offer: the owner gives `gets` and wants `pays`
/// (XRPL's TakerGets / TakerPays, seen from the taker's side).
#[derive(Debug, Clone)]
pub struct Offer {
    pub id: OfferId,
    pub owner: AccountId,
    /// Remaining amount the owner still gives.
    pub gets: Amount,
    /// Remaining amount the owner still wants.
    pub pays: Amount,
    /// Original `gets` at creation (for fill-ratio stats).
    pub original_gets: i128,
}

impl Offer {
    /// Price demanded by the owner: pays per gets. Lower = better for taker.
    fn quality(&self) -> f64 {
        self.pays.value as f64 / self.gets.value as f64
    }
}

/// One executed fill: value moved between maker and taker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fill {
    pub maker_offer: OfferId,
    pub maker: AccountId,
    /// maker → taker (the maker's gets-asset).
    pub maker_gives: Amount,
    /// taker → maker (the maker's pays-asset).
    pub maker_receives: Amount,
}

/// DEX errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DexError {
    /// Creator holds none of the asset it promises (tecUNFUNDED_OFFER).
    Unfunded { owner: AccountId, asset: Asset },
    /// Zero/negative amounts or identical assets on both sides.
    BadOffer,
    UnknownOffer(OfferId),
    NotOwner { offer: OfferId, account: AccountId },
}

impl std::fmt::Display for DexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DexError::Unfunded { owner, asset } => write!(f, "tecUNFUNDED_OFFER: {owner} holds no {asset}"),
            DexError::BadOffer => write!(f, "malformed offer"),
            DexError::UnknownOffer(id) => write!(f, "unknown offer {id:?}"),
            DexError::NotOwner { offer, account } => write!(f, "{account} does not own {offer:?}"),
        }
    }
}

impl std::error::Error for DexError {}

/// Lifetime statistics for Figure 7's offer funnel.
#[derive(Debug, Clone, Copy, Default)]
pub struct DexStats {
    pub offers_created: u64,
    pub offers_cancelled: u64,
    /// Offers that were filled at least partially (either side of a cross).
    pub offers_touched: u64,
    pub fills_executed: u64,
}

/// The exchange: books keyed by (gets-asset, pays-asset).
#[derive(Debug, Default)]
pub struct Dex {
    /// Offer ids per book, kept sorted by (quality asc, id asc).
    books: HashMap<(Asset, Asset), Vec<OfferId>>,
    offers: HashMap<OfferId, Offer>,
    next_id: u64,
    pub stats: DexStats,
    touched: std::collections::HashSet<OfferId>,
}

/// Outcome of an OfferCreate.
#[derive(Debug)]
pub struct CreateOutcome {
    pub fills: Vec<Fill>,
    /// Id of the remainder placed in the book, if any.
    pub resting: Option<OfferId>,
    /// True if the taker's demand was fully satisfied by crossing.
    pub fully_crossed: bool,
}

impl Dex {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn offer(&self, id: OfferId) -> Option<&Offer> {
        self.offers.get(&id)
    }

    pub fn book_depth(&self, gets: Asset, pays: Asset) -> usize {
        self.books.get(&(gets, pays)).map(|b| b.len()).unwrap_or(0)
    }

    /// Best (lowest) quality currently resting in a book.
    pub fn best_quality(&self, gets: Asset, pays: Asset) -> Option<f64> {
        let book = self.books.get(&(gets, pays))?;
        book.first().and_then(|id| self.offers.get(id)).map(|o| o.quality())
    }

    fn mark_touched(&mut self, id: OfferId) {
        if self.touched.insert(id) {
            self.stats.offers_touched += 1;
        }
    }

    fn insert_sorted(&mut self, offer: Offer) {
        let key = (offer.gets.asset, offer.pays.asset);
        let q = offer.quality();
        let id = offer.id;
        let book = self.books.entry(key).or_default();
        let pos = book
            .binary_search_by(|other| {
                let oq = self.offers[other].quality();
                oq.partial_cmp(&q)
                    .expect("no NaN qualities")
                    .then(self.offers[other].id.cmp(&id))
            })
            .unwrap_or_else(|p| p);
        book.insert(pos, id);
        self.offers.insert(id, offer);
    }

    /// `OfferCreate`: cross against the opposing book, then rest the
    /// remainder. `available(owner, asset)` reports spendable funds, used
    /// for the taker's funding check and to skip/remove unfunded makers.
    pub fn create_offer<F>(
        &mut self,
        owner: AccountId,
        gets: Amount,
        pays: Amount,
        available: F,
    ) -> Result<CreateOutcome, DexError>
    where
        F: Fn(AccountId, Asset) -> i128,
    {
        if gets.value <= 0 || pays.value <= 0 || gets.asset == pays.asset {
            return Err(DexError::BadOffer);
        }
        if available(owner, gets.asset) <= 0 {
            return Err(DexError::Unfunded { owner, asset: gets.asset });
        }
        self.stats.offers_created += 1;

        let mut taker_gets_rem = gets.value; // stated give, remaining
        let mut taker_pays_rem = pays.value; // stated want, remaining
        let mut fills = Vec::new();
        // Funds consumed by fills within this crossing, per (account, asset).
        let mut consumed: HashMap<(AccountId, Asset), i128> = HashMap::new();
        let avail = |consumed: &HashMap<(AccountId, Asset), i128>,
                     a: AccountId,
                     asset: Asset,
                     f: &F| { f(a, asset) - consumed.get(&(a, asset)).copied().unwrap_or(0) };

        let opposite = (pays.asset, gets.asset);
        let mut removed: Vec<OfferId> = Vec::new();
        if let Some(book) = self.books.get(&opposite).cloned() {
            for maker_id in book {
                if taker_pays_rem <= 0 || taker_gets_rem <= 0 {
                    break;
                }
                let maker = match self.offers.get(&maker_id) {
                    Some(m) => m.clone(),
                    None => continue,
                };
                // Price compatibility at *stated* qualities (funding never
                // changes an offer's price, only how much can execute):
                // cross while maker.pays/maker.gets <= gets/pays.
                let lhs = maker.pays.value as f64 * pays.value as f64;
                let rhs = gets.value as f64 * maker.gets.value as f64;
                if lhs > rhs {
                    break; // book is sorted; nothing further can cross
                }
                // Maker funding: remove stale unfunded offers on contact.
                let maker_funds = avail(&consumed, maker.owner, maker.gets.asset, &available);
                if maker_funds <= 0 {
                    removed.push(maker_id);
                    continue;
                }
                // Taker funding caps execution of its gets-asset.
                let taker_funds = avail(&consumed, owner, gets.asset, &available);
                if taker_funds <= 0 {
                    break;
                }
                // Fill at the maker's rate.
                let mut fill_gives = maker.gets.value.min(taker_pays_rem).min(maker_funds);
                let mut fill_receives =
                    ceil_mul_div(fill_gives, maker.pays.value, maker.gets.value);
                // Cap by what the taker can still give (stated + funded).
                let taker_cap = taker_gets_rem.min(taker_funds);
                if fill_receives > taker_cap {
                    fill_receives = taker_cap;
                    fill_gives = mul_div(fill_receives, maker.gets.value, maker.pays.value);
                }
                if fill_gives <= 0 || fill_receives <= 0 {
                    break;
                }
                *consumed.entry((maker.owner, maker.gets.asset)).or_insert(0) += fill_gives;
                *consumed.entry((owner, maker.pays.asset)).or_insert(0) += fill_receives;
                fills.push(Fill {
                    maker_offer: maker_id,
                    maker: maker.owner,
                    maker_gives: Amount { asset: maker.gets.asset, value: fill_gives },
                    maker_receives: Amount { asset: maker.pays.asset, value: fill_receives },
                });
                self.stats.fills_executed += 1;
                self.mark_touched(maker_id);
                taker_pays_rem -= fill_gives;
                taker_gets_rem -= fill_receives;
                // Shrink or consume the maker offer.
                let m = self.offers.get_mut(&maker_id).expect("maker exists");
                m.gets.value -= fill_gives;
                m.pays.value -= fill_receives.min(m.pays.value);
                if m.gets.value <= 0 || m.pays.value <= 0 {
                    removed.push(maker_id);
                }
            }
        }
        for id in removed {
            self.remove_from_book(id);
        }

        let id = OfferId(self.next_id);
        self.next_id += 1;
        let crossed_any = !fills.is_empty();
        if crossed_any {
            self.mark_touched(id);
        }
        let fully_crossed = taker_pays_rem <= 0 || taker_gets_rem <= 0;
        let resting = if !fully_crossed {
            let offer = Offer {
                id,
                owner,
                gets: Amount { asset: gets.asset, value: taker_gets_rem },
                pays: Amount { asset: pays.asset, value: taker_pays_rem },
                original_gets: gets.value,
            };
            self.insert_sorted(offer);
            Some(id)
        } else {
            None
        };
        Ok(CreateOutcome { fills, resting, fully_crossed })
    }

    /// Plan a market-style cross for a *payment through the order book*:
    /// acquire exactly `want` paying at most `budget`, taking liquidity at
    /// any resting price (payments, unlike offers, have no limit price —
    /// only a spend cap). Read-only: returns `None` when the book cannot
    /// deliver in full (tecPATH_DRY), so failed payments never mutate books.
    pub fn plan_market<F>(
        &self,
        taker: AccountId,
        want: Amount,
        budget: Amount,
        available: F,
    ) -> Option<Vec<Fill>>
    where
        F: Fn(AccountId, Asset) -> i128,
    {
        if want.value <= 0 || budget.value <= 0 || want.asset == budget.asset {
            return None;
        }
        let book = self.books.get(&(want.asset, budget.asset))?;
        let mut need = want.value;
        let mut budget_rem = budget.value.min(available(taker, budget.asset));
        let mut consumed: HashMap<(AccountId, Asset), i128> = HashMap::new();
        let mut fills = Vec::new();
        for maker_id in book {
            if need <= 0 {
                break;
            }
            let maker = self.offers.get(maker_id)?;
            let maker_funds = available(maker.owner, maker.gets.asset)
                - consumed.get(&(maker.owner, maker.gets.asset)).copied().unwrap_or(0);
            if maker_funds <= 0 {
                continue;
            }
            let mut fill_gives = maker.gets.value.min(need).min(maker_funds);
            let mut fill_receives = ceil_mul_div(fill_gives, maker.pays.value, maker.gets.value);
            if fill_receives > budget_rem {
                fill_receives = budget_rem;
                fill_gives = mul_div(fill_receives, maker.gets.value, maker.pays.value);
            }
            if fill_gives <= 0 || fill_receives <= 0 {
                break; // budget exhausted
            }
            *consumed.entry((maker.owner, maker.gets.asset)).or_insert(0) += fill_gives;
            budget_rem -= fill_receives;
            need -= fill_gives;
            fills.push(Fill {
                maker_offer: *maker_id,
                maker: maker.owner,
                maker_gives: Amount { asset: maker.gets.asset, value: fill_gives },
                maker_receives: Amount { asset: maker.pays.asset, value: fill_receives },
            });
        }
        if need > 0 {
            return None; // cannot deliver in full: path is dry
        }
        Some(fills)
    }

    /// Apply a plan produced by [`Dex::plan_market`]: shrink or remove the
    /// maker offers and update fulfillment statistics.
    pub fn execute_plan(&mut self, fills: &[Fill]) {
        let mut removed = Vec::new();
        for f in fills {
            self.stats.fills_executed += 1;
            self.mark_touched(f.maker_offer);
            if let Some(m) = self.offers.get_mut(&f.maker_offer) {
                m.gets.value -= f.maker_gives.value;
                m.pays.value -= f.maker_receives.value.min(m.pays.value);
                if m.gets.value <= 0 || m.pays.value <= 0 {
                    removed.push(f.maker_offer);
                }
            }
        }
        for id in removed {
            self.remove_from_book(id);
        }
    }

    fn remove_from_book(&mut self, id: OfferId) {
        if let Some(offer) = self.offers.remove(&id) {
            if let Some(book) = self.books.get_mut(&(offer.gets.asset, offer.pays.asset)) {
                book.retain(|x| *x != id);
            }
        }
    }

    /// `OfferCancel`.
    pub fn cancel(&mut self, account: AccountId, id: OfferId) -> Result<(), DexError> {
        let offer = self.offers.get(&id).ok_or(DexError::UnknownOffer(id))?;
        if offer.owner != account {
            return Err(DexError::NotOwner { offer: id, account });
        }
        self.remove_from_book(id);
        self.stats.offers_cancelled += 1;
        Ok(())
    }

    /// All resting offers of an account (for reserve accounting/tests).
    pub fn offers_of(&self, account: AccountId) -> Vec<OfferId> {
        let mut v: Vec<OfferId> =
            self.offers.values().filter(|o| o.owner == account).map(|o| o.id).collect();
        v.sort();
        v
    }

    /// Verify book-order invariant: every book sorted by quality ascending.
    pub fn check_books_sorted(&self) -> Result<(), String> {
        for (key, book) in &self.books {
            let mut prev = f64::MIN;
            for id in book {
                let q = self
                    .offers
                    .get(id)
                    .ok_or_else(|| format!("dangling offer {id:?} in {key:?}"))?
                    .quality();
                if q < prev {
                    return Err(format!("book {key:?} out of order"));
                }
                prev = q;
            }
        }
        Ok(())
    }
}

/// floor(a * b / c) with i128 intermediates.
fn mul_div(a: i128, b: i128, c: i128) -> i128 {
    debug_assert!(c > 0);
    a.checked_mul(b).map(|p| p / c).unwrap_or_else(|| {
        // Fall back through f64 for extreme magnitudes (beyond workload range).
        (a as f64 * b as f64 / c as f64) as i128
    })
}

/// ceil(a * b / c).
fn ceil_mul_div(a: i128, b: i128, c: i128) -> i128 {
    debug_assert!(c > 0);
    a.checked_mul(b).map(|p| (p + c - 1) / c).unwrap_or_else(|| {
        (a as f64 * b as f64 / c as f64).ceil() as i128
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::IssuedCurrency;
    use std::collections::HashMap;

    fn usd() -> Asset {
        Asset::Iou(IssuedCurrency::new("USD", AccountId(1)))
    }

    /// A wallet view for tests.
    struct Funds(HashMap<(AccountId, Asset), i128>);
    impl Funds {
        fn new(entries: &[(AccountId, Asset, i128)]) -> Self {
            Funds(entries.iter().map(|(a, s, v)| ((*a, *s), *v)).collect())
        }
        fn view(&self) -> impl Fn(AccountId, Asset) -> i128 + '_ {
            move |a, s| self.0.get(&(a, s)).copied().unwrap_or(0)
        }
    }

    #[test]
    fn resting_offer_then_full_cross() {
        let mut dex = Dex::new();
        let (maker, taker) = (AccountId(10), AccountId(11));
        let funds = Funds::new(&[(maker, usd(), 1_000_000_000), (taker, Asset::Xrp, 1_000_000_000)]);
        // Maker sells 100 USD for 500 XRP (5 XRP per USD).
        let out = dex
            .create_offer(
                maker,
                Amount { asset: usd(), value: 100 },
                Amount { asset: Asset::Xrp, value: 500 },
                funds.view(),
            )
            .unwrap();
        assert!(out.fills.is_empty());
        assert!(out.resting.is_some());
        assert_eq!(dex.book_depth(usd(), Asset::Xrp), 1);

        // Taker buys 100 USD paying up to 500 XRP → fully crossed.
        let out = dex
            .create_offer(
                taker,
                Amount { asset: Asset::Xrp, value: 500 },
                Amount { asset: usd(), value: 100 },
                funds.view(),
            )
            .unwrap();
        assert_eq!(out.fills.len(), 1);
        assert!(out.fully_crossed);
        assert!(out.resting.is_none());
        let f = &out.fills[0];
        assert_eq!(f.maker_gives.value, 100);
        assert_eq!(f.maker_receives.value, 500);
        assert_eq!(dex.book_depth(usd(), Asset::Xrp), 0);
        assert_eq!(dex.stats.offers_created, 2);
        assert_eq!(dex.stats.offers_touched, 2);
        dex.check_books_sorted().unwrap();
    }

    #[test]
    fn partial_fill_rests_remainder() {
        let mut dex = Dex::new();
        let (maker, taker) = (AccountId(10), AccountId(11));
        let funds = Funds::new(&[(maker, usd(), 10_000), (taker, Asset::Xrp, 10_000)]);
        dex.create_offer(
            maker,
            Amount { asset: usd(), value: 50 },
            Amount { asset: Asset::Xrp, value: 250 },
            funds.view(),
        )
        .unwrap();
        // Taker wants 100 USD but book only has 50.
        let out = dex
            .create_offer(
                taker,
                Amount { asset: Asset::Xrp, value: 500 },
                Amount { asset: usd(), value: 100 },
                funds.view(),
            )
            .unwrap();
        assert_eq!(out.fills.len(), 1);
        assert!(!out.fully_crossed);
        let rest = dex.offer(out.resting.unwrap()).unwrap();
        assert_eq!(rest.pays.value, 50, "still wants 50 USD");
        assert_eq!(rest.gets.value, 250, "still gives 250 XRP");
    }

    #[test]
    fn price_time_priority() {
        let mut dex = Dex::new();
        let funds = Funds::new(&[
            (AccountId(10), usd(), 1000),
            (AccountId(11), usd(), 1000),
            (AccountId(12), Asset::Xrp, 100_000),
        ]);
        // Two makers: 10 sells at 6 XRP/USD, 11 at 5 XRP/USD (better).
        dex.create_offer(
            AccountId(10),
            Amount { asset: usd(), value: 100 },
            Amount { asset: Asset::Xrp, value: 600 },
            funds.view(),
        )
        .unwrap();
        dex.create_offer(
            AccountId(11),
            Amount { asset: usd(), value: 100 },
            Amount { asset: Asset::Xrp, value: 500 },
            funds.view(),
        )
        .unwrap();
        // Taker buys 100 USD at up to 6 XRP/USD → should hit the 5 first.
        let out = dex
            .create_offer(
                AccountId(12),
                Amount { asset: Asset::Xrp, value: 600 },
                Amount { asset: usd(), value: 100 },
                funds.view(),
            )
            .unwrap();
        assert_eq!(out.fills.len(), 1);
        assert_eq!(out.fills[0].maker, AccountId(11), "best price first");
        assert_eq!(out.fills[0].maker_receives.value, 500);
    }

    #[test]
    fn unfunded_creator_rejected_and_unfunded_maker_removed() {
        let mut dex = Dex::new();
        let funds = Funds::new(&[(AccountId(10), usd(), 100), (AccountId(12), Asset::Xrp, 10_000)]);
        // Creator with zero funds → tecUNFUNDED_OFFER.
        assert!(matches!(
            dex.create_offer(
                AccountId(99),
                Amount { asset: usd(), value: 10 },
                Amount { asset: Asset::Xrp, value: 50 },
                funds.view(),
            ),
            Err(DexError::Unfunded { .. })
        ));
        // Maker rests, then loses funding; taker contact removes it.
        dex.create_offer(
            AccountId(10),
            Amount { asset: usd(), value: 10 },
            Amount { asset: Asset::Xrp, value: 50 },
            funds.view(),
        )
        .unwrap();
        let empty = Funds::new(&[(AccountId(12), Asset::Xrp, 10_000)]);
        let out = dex
            .create_offer(
                AccountId(12),
                Amount { asset: Asset::Xrp, value: 50 },
                Amount { asset: usd(), value: 10 },
                empty.view(),
            )
            .unwrap();
        assert!(out.fills.is_empty());
        assert_eq!(dex.book_depth(usd(), Asset::Xrp), 0, "stale offer removed");
    }

    #[test]
    fn incompatible_prices_do_not_cross() {
        let mut dex = Dex::new();
        let funds = Funds::new(&[(AccountId(10), usd(), 1000), (AccountId(12), Asset::Xrp, 100_000)]);
        // Maker demands 10 XRP/USD.
        dex.create_offer(
            AccountId(10),
            Amount { asset: usd(), value: 100 },
            Amount { asset: Asset::Xrp, value: 1000 },
            funds.view(),
        )
        .unwrap();
        // Taker only willing to pay 5 XRP/USD.
        let out = dex
            .create_offer(
                AccountId(12),
                Amount { asset: Asset::Xrp, value: 500 },
                Amount { asset: usd(), value: 100 },
                funds.view(),
            )
            .unwrap();
        assert!(out.fills.is_empty());
        assert_eq!(dex.book_depth(usd(), Asset::Xrp), 1);
        assert_eq!(dex.book_depth(Asset::Xrp, usd()), 1);
    }

    #[test]
    fn cancel_rules() {
        let mut dex = Dex::new();
        let funds = Funds::new(&[(AccountId(10), usd(), 1000)]);
        let out = dex
            .create_offer(
                AccountId(10),
                Amount { asset: usd(), value: 10 },
                Amount { asset: Asset::Xrp, value: 50 },
                funds.view(),
            )
            .unwrap();
        let id = out.resting.unwrap();
        assert!(matches!(
            dex.cancel(AccountId(11), id),
            Err(DexError::NotOwner { .. })
        ));
        dex.cancel(AccountId(10), id).unwrap();
        assert!(matches!(dex.cancel(AccountId(10), id), Err(DexError::UnknownOffer(_))));
        assert_eq!(dex.stats.offers_cancelled, 1);
    }

    #[test]
    fn bad_offers_rejected() {
        let mut dex = Dex::new();
        let funds = Funds::new(&[(AccountId(10), usd(), 1000)]);
        assert_eq!(
            dex.create_offer(
                AccountId(10),
                Amount { asset: usd(), value: 0 },
                Amount { asset: Asset::Xrp, value: 50 },
                funds.view(),
            )
            .unwrap_err(),
            DexError::BadOffer
        );
        assert_eq!(
            dex.create_offer(
                AccountId(10),
                Amount { asset: usd(), value: 5 },
                Amount { asset: usd(), value: 5 },
                funds.view(),
            )
            .unwrap_err(),
            DexError::BadOffer
        );
    }

    #[test]
    fn plan_market_full_or_nothing() {
        let mut dex = Dex::new();
        let funds = Funds::new(&[
            (AccountId(10), usd(), 1000),
            (AccountId(50), Asset::Xrp, 1_000_000),
        ]);
        dex.create_offer(
            AccountId(10),
            Amount { asset: usd(), value: 40 },
            Amount { asset: Asset::Xrp, value: 200 },
            funds.view(),
        )
        .unwrap();
        // Wanting 50 USD when only 40 rest → dry, and nothing mutates.
        assert!(dex
            .plan_market(
                AccountId(50),
                Amount { asset: usd(), value: 50 },
                Amount { asset: Asset::Xrp, value: 10_000 },
                funds.view(),
            )
            .is_none());
        assert_eq!(dex.offer(OfferId(0)).unwrap().gets.value, 40, "book untouched");
        // Wanting 30 USD succeeds; executing shrinks the maker.
        let plan = dex
            .plan_market(
                AccountId(50),
                Amount { asset: usd(), value: 30 },
                Amount { asset: Asset::Xrp, value: 10_000 },
                funds.view(),
            )
            .unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].maker_gives.value, 30);
        assert_eq!(plan[0].maker_receives.value, 150);
        dex.execute_plan(&plan);
        assert_eq!(dex.offer(OfferId(0)).unwrap().gets.value, 10);
        dex.check_books_sorted().unwrap();
    }

    #[test]
    fn plan_market_respects_budget() {
        let mut dex = Dex::new();
        let funds = Funds::new(&[
            (AccountId(10), usd(), 1000),
            (AccountId(50), Asset::Xrp, 1_000_000),
        ]);
        // 10 USD at 10 XRP each.
        dex.create_offer(
            AccountId(10),
            Amount { asset: usd(), value: 10 },
            Amount { asset: Asset::Xrp, value: 100 },
            funds.view(),
        )
        .unwrap();
        // Budget of 50 XRP can't buy 10 USD.
        assert!(dex
            .plan_market(
                AccountId(50),
                Amount { asset: usd(), value: 10 },
                Amount { asset: Asset::Xrp, value: 50 },
                funds.view(),
            )
            .is_none());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// DESIGN.md §5: the taker never pays worse than its quoted
            /// price — every fill executes at the maker's rate, which is at
            /// least as good as the taker's stated gets/pays ratio (up to
            /// one unit of integer rounding per fill).
            #[test]
            fn taker_never_pays_worse_than_quoted(
                makers in proptest::collection::vec((1i128..500, 1i128..500), 1..20),
                taker_gets in 1i128..100_000,
                taker_pays in 1i128..100_000,
            ) {
                let usd = Asset::Iou(IssuedCurrency::new("USD", AccountId(1)));
                let funds = |_a: AccountId, _s: Asset| 10_000_000i128;
                let mut dex = Dex::new();
                for (i, (g, p)) in makers.iter().enumerate() {
                    dex.create_offer(
                        AccountId(100 + i as u64),
                        Amount { asset: usd, value: *g },
                        Amount { asset: Asset::Xrp, value: *p },
                        funds,
                    ).expect("maker placed");
                }
                let out = dex.create_offer(
                    AccountId(5),
                    Amount { asset: Asset::Xrp, value: taker_gets },
                    Amount { asset: usd, value: taker_pays },
                    funds,
                ).expect("taker processed");
                for fill in &out.fills {
                    // Taker pays fill.maker_receives XRP for fill.maker_gives
                    // USD; its stated worst price is taker_gets/taker_pays
                    // XRP per USD. Cross-multiplied with rounding slack:
                    prop_assert!(
                        fill.maker_receives.value * taker_pays
                            <= taker_gets * fill.maker_gives.value + taker_gets,
                        "fill {:?} worse than quote {}/{}",
                        fill, taker_gets, taker_pays
                    );
                    prop_assert!(fill.maker_gives.value > 0 && fill.maker_receives.value > 0);
                }
                dex.check_books_sorted().map_err(TestCaseError::fail)?;
            }

            /// Book stays sorted and stats stay consistent under random
            /// offer/cancel streams.
            #[test]
            fn books_stay_sorted_under_churn(
                ops in proptest::collection::vec((0u64..6, 1i128..300, 1i128..300, any::<bool>()), 1..60)
            ) {
                let usd = Asset::Iou(IssuedCurrency::new("USD", AccountId(1)));
                let funds = |_a: AccountId, _s: Asset| 1_000_000i128;
                let mut dex = Dex::new();
                for (owner, a, b, cancel) in ops {
                    let acct = AccountId(10 + owner);
                    if cancel {
                        if let Some(id) = dex.offers_of(acct).first().copied() {
                            dex.cancel(acct, id).expect("own offer");
                        }
                    } else {
                        let (gets, pays) = if owner % 2 == 0 {
                            (Amount { asset: usd, value: a }, Amount { asset: Asset::Xrp, value: b })
                        } else {
                            (Amount { asset: Asset::Xrp, value: a }, Amount { asset: usd, value: b })
                        };
                        dex.create_offer(acct, gets, pays, funds).expect("offer ok");
                    }
                    dex.check_books_sorted().map_err(TestCaseError::fail)?;
                }
                prop_assert!(dex.stats.offers_touched <= dex.stats.offers_created);
            }
        }
    }

    #[test]
    fn multi_maker_sweep() {
        let mut dex = Dex::new();
        let mut entries = vec![(AccountId(50), Asset::Xrp, 1_000_000)];
        for i in 0..5u64 {
            entries.push((AccountId(10 + i), usd(), 1_000));
        }
        let funds = Funds::new(&entries);
        // Five makers each sell 10 USD at increasing prices 5,6,7,8,9.
        for i in 0..5u64 {
            dex.create_offer(
                AccountId(10 + i),
                Amount { asset: usd(), value: 10 },
                Amount { asset: Asset::Xrp, value: (50 + 10 * i) as i128 },
                funds.view(),
            )
            .unwrap();
        }
        // Taker sweeps 35 USD paying up to 9 XRP/USD average budget.
        let out = dex
            .create_offer(
                AccountId(50),
                Amount { asset: Asset::Xrp, value: 315 },
                Amount { asset: usd(), value: 35 },
                funds.view(),
            )
            .unwrap();
        // Crosses 10@5, 10@6, 10@7 fully and 5@8 partially.
        assert_eq!(out.fills.len(), 4);
        let total_usd: i128 = out.fills.iter().map(|f| f.maker_gives.value).sum();
        assert_eq!(total_usd, 35);
        assert!(out.fully_crossed);
        dex.check_books_sorted().unwrap();
    }
}
