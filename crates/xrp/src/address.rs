//! XRP ledger account addresses (`r…`).
//!
//! §2.3.3: accounts are identified by addresses derived from key pairs, plus
//! a handful of "special addresses" not derived from any key (funds sent
//! there are permanently lost). We keep a 64-bit id and render it
//! base58check-style with the `r` prefix using the *Ripple* base58 alphabet
//! (which differs from Bitcoin's — it starts `rpshnaf…`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use txstat_types::ids::fnv1a64;

/// Ripple's base58 alphabet.
const RIPPLE_B58: &[u8; 58] = b"rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz";

/// A ledger account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(into = "String", try_from = "String")]
pub struct AccountId(pub u64);

impl AccountId {
    /// ACCOUNT_ZERO — the canonical special address (base of `rrrrr…`);
    /// funds sent here are unrecoverable.
    pub const ACCOUNT_ZERO: AccountId = AccountId(0);

    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Special addresses have no key pair; we reserve ids < 16.
    pub fn is_special(self) -> bool {
        self.0 < 16
    }

    fn payload(self) -> [u8; 10] {
        let idb = self.0.to_be_bytes();
        let ck = (fnv1a64(&idb) & 0xffff) as u16;
        let mut p = [0u8; 10];
        p[..8].copy_from_slice(&idb);
        p[8..].copy_from_slice(&ck.to_be_bytes());
        p
    }
}

fn b58_encode(payload: &[u8]) -> String {
    let mut n: u128 = 0;
    for &b in payload {
        n = (n << 8) | b as u128;
    }
    let mut digits = Vec::new();
    loop {
        digits.push(RIPPLE_B58[(n % 58) as usize]);
        n /= 58;
        if n == 0 {
            break;
        }
    }
    for &b in payload {
        if b == 0 {
            digits.push(RIPPLE_B58[0]);
        } else {
            break;
        }
    }
    digits.reverse();
    String::from_utf8(digits).expect("alphabet is ASCII")
}

fn b58_decode(s: &str) -> Option<Vec<u8>> {
    let mut n: u128 = 0;
    let mut leading = 0usize;
    let mut seen_nonzero = false;
    for c in s.bytes() {
        let v = RIPPLE_B58.iter().position(|&b| b == c)? as u128;
        if !seen_nonzero {
            if v == 0 {
                leading += 1;
                continue;
            }
            seen_nonzero = true;
        }
        n = n.checked_mul(58)?.checked_add(v)?;
    }
    let mut bytes = Vec::new();
    while n > 0 {
        bytes.push((n & 0xff) as u8);
        n >>= 8;
    }
    bytes.extend(std::iter::repeat_n(0, leading));
    bytes.reverse();
    Some(bytes)
}

/// Address parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressError {
    BadPrefix,
    BadEncoding,
    BadChecksum,
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressError::BadPrefix => write!(f, "address must start with r"),
            AddressError::BadEncoding => write!(f, "invalid base58 payload"),
            AddressError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for AddressError {}

impl txstat_types::colcodec::ColKey for AccountId {
    /// Wire column form: the raw 64-bit id.
    fn encode_key(&self, w: &mut txstat_types::colcodec::ColWriter) {
        w.u64(self.0);
    }

    fn decode_key(
        r: &mut txstat_types::colcodec::ColReader<'_>,
    ) -> Result<Self, txstat_types::colcodec::ColError> {
        Ok(AccountId(r.u64()?))
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", b58_encode(&self.payload()))
    }
}

impl FromStr for AccountId {
    type Err = AddressError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s.strip_prefix('r').ok_or(AddressError::BadPrefix)?;
        let bytes = b58_decode(rest).ok_or(AddressError::BadEncoding)?;
        if bytes.len() != 10 {
            return Err(AddressError::BadEncoding);
        }
        let mut idb = [0u8; 8];
        idb.copy_from_slice(&bytes[..8]);
        let id = u64::from_be_bytes(idb);
        let want = (fnv1a64(&idb) & 0xffff) as u16;
        let got = u16::from_be_bytes([bytes[8], bytes[9]]);
        if want != got {
            return Err(AddressError::BadChecksum);
        }
        Ok(AccountId(id))
    }
}

impl From<AccountId> for String {
    fn from(a: AccountId) -> String {
        a.to_string()
    }
}

impl TryFrom<String> for AccountId {
    type Error = AddressError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn renders_with_r_prefix() {
        let a = AccountId(424242);
        let s = a.to_string();
        assert!(s.starts_with('r'), "{s}");
        assert_eq!(s.parse::<AccountId>().unwrap(), a);
    }

    #[test]
    fn account_zero_is_special() {
        assert!(AccountId::ACCOUNT_ZERO.is_special());
        assert!(!AccountId(1000).is_special());
        let s = AccountId::ACCOUNT_ZERO.to_string();
        // Payload is 8 zero bytes + checksum of zeros → leading 'r's preserved.
        assert!(s.starts_with("rrrr"), "{s}");
        assert_eq!(s.parse::<AccountId>().unwrap(), AccountId::ACCOUNT_ZERO);
    }

    #[test]
    fn rejects_corruption() {
        let s = AccountId(987654321).to_string();
        let mut chars: Vec<char> = s.chars().collect();
        let last = chars.len() - 1;
        chars[last] = if chars[last] == 'z' { 'y' } else { 'z' };
        let corrupted: String = chars.into_iter().collect();
        assert!(corrupted.parse::<AccountId>().is_err());
        assert_eq!("xnotanaddr".parse::<AccountId>(), Err(AddressError::BadPrefix));
        // '0', 'O', 'I', 'l' are not in the ripple alphabet.
        assert_eq!("r0O".parse::<AccountId>(), Err(AddressError::BadEncoding));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(id in any::<u64>()) {
            let a = AccountId(id);
            prop_assert_eq!(a.to_string().parse::<AccountId>().unwrap(), a);
        }
    }
}
